//! The typed request/response codec and the hello exchange.
//!
//! Payload encodings build on `siren_store::codec` (length-prefixed
//! strings, little-endian integers, tag bytes); consolidated records
//! nest their own [`ProcessRecord`] codec behind a byte-length prefix.
//! Every decoder rejects structural inconsistency with a typed
//! [`QueryError`] and never panics.

use crate::{PROTOCOL_VERSION, PROTOCOL_VERSION_MIN};
use siren_analysis::LibraryUsageRow;
use siren_consolidate::ProcessRecord;
use siren_store::codec::{get_bytes, get_str, put_bytes, put_str, take};

/// First bytes of the hello and hello-ack payloads.
pub const HELLO_MAGIC: [u8; 4] = *b"SRNQ";

// Request payload tags.
const REQ_STATUS: u8 = 0;
const REQ_BY_JOB: u8 = 1;
const REQ_LIBRARY_USAGE: u8 = 2;
const REQ_NEIGHBORS: u8 = 3;

// Response payload tags. `b'S'` (0x53) is reserved so a hello-ack can
// never be mistaken for a response payload.
const RESP_STATUS: u8 = 0;
const RESP_ROWS: u8 = 1;
const RESP_LIBRARY_USAGE: u8 = 2;
const RESP_NEIGHBORS: u8 = 3;
const RESP_ERROR: u8 = 0xFF;

// QueryError codes.
const ERR_MALFORMED: u8 = 0;
const ERR_UNSUPPORTED_VERSION: u8 = 1;
const ERR_UNKNOWN_REQUEST: u8 = 2;
const ERR_FRAME_TOO_LARGE: u8 = 3;
const ERR_DEADLINE: u8 = 4;
const ERR_INTERNAL: u8 = 5;

/// A reusable record filter: all present conditions are ANDed. The one
/// filter type shared by the wire protocol and the in-process snapshot
/// API, publicly constructible via its builder methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Selection {
    epoch: Option<u64>,
    host: Option<String>,
    time_range: Option<(u64, u64)>,
}

impl Selection {
    /// The empty filter (matches every record).
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict to one epoch.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Restrict to one host.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Restrict to `start ..= end` collection timestamps.
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.time_range = Some((start, end));
        self
    }

    /// The epoch restriction, if any.
    pub fn epoch_filter(&self) -> Option<u64> {
        self.epoch
    }

    /// The host restriction, if any.
    pub fn host_filter(&self) -> Option<&str> {
        self.host.as_deref()
    }

    /// The inclusive time-range restriction, if any.
    pub fn time_range(&self) -> Option<(u64, u64)> {
        self.time_range
    }

    /// Does a record committed under `epoch` pass this filter?
    pub fn matches(&self, epoch: u64, record: &ProcessRecord) -> bool {
        if let Some(e) = self.epoch {
            if epoch != e {
                return false;
            }
        }
        if let Some(h) = &self.host {
            if &record.key.host != h {
                return false;
            }
        }
        if let Some((lo, hi)) = self.time_range {
            if record.key.time < lo || record.key.time > hi {
                return false;
            }
        }
        true
    }

    fn put(&self, out: &mut Vec<u8>) {
        match self.epoch {
            None => out.push(0),
            Some(e) => {
                out.push(1);
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        match &self.host {
            None => out.push(0),
            Some(h) => {
                out.push(1);
                put_str(out, h);
            }
        }
        match self.time_range {
            None => out.push(0),
            Some((lo, hi)) => {
                out.push(1);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
    }

    fn get(data: &[u8], pos: &mut usize) -> Option<Self> {
        let epoch = match take(data, pos, 1)?[0] {
            0 => None,
            1 => Some(get_u64(data, pos)?),
            _ => return None,
        };
        let host = match take(data, pos, 1)?[0] {
            0 => None,
            1 => Some(get_str(data, pos)?),
            _ => return None,
        };
        let time_range = match take(data, pos, 1)?[0] {
            0 => None,
            1 => Some((get_u64(data, pos)?, get_u64(data, pos)?)),
            _ => return None,
        };
        Some(Self {
            epoch,
            host,
            time_range,
        })
    }
}

fn get_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    Some(u64::from_le_bytes(take(data, pos, 8)?.try_into().ok()?))
}

fn get_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    Some(u32::from_le_bytes(take(data, pos, 4)?.try_into().ok()?))
}

fn get_u16(data: &[u8], pos: &mut usize) -> Option<u16> {
    Some(u16::from_le_bytes(take(data, pos, 2)?.try_into().ok()?))
}

/// Count prefix with a sanity bound: `n` elements of at least
/// `min_elem_bytes` wire bytes each must fit in the remaining payload,
/// so a hostile count is refused before any per-element work.
fn get_count(data: &[u8], pos: &mut usize, min_elem_bytes: usize) -> Option<usize> {
    let n = get_u32(data, pos)? as usize;
    if n > data.len().saturating_sub(*pos) / min_elem_bytes.max(1) {
        return None;
    }
    Some(n)
}

/// Initial capacity for a decoded element vector. The count bound above
/// limits `n` by *wire* bytes, but decoded elements (a `ProcessRecord`
/// holds a map, vectors, and strings) are far larger in memory than
/// their minimum wire encoding — so a corrupt-but-count-plausible frame
/// must not turn `n` straight into one huge pre-allocation before the
/// first element fails to decode. Real answers beyond the cap just
/// regrow amortized.
fn decode_capacity(n: usize) -> usize {
    n.min(1024)
}

/// One query, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRequest {
    /// Daemon liveness + store shape + ingest-health counters.
    Status,
    /// Every committed record of one job, across epochs.
    ByJob {
        /// Slurm job id.
        job_id: u64,
    },
    /// Library-usage aggregation over a [`Selection`].
    LibraryUsage {
        /// Record filter (host, time range, epoch).
        selection: Selection,
    },
    /// Fuzzy-hash nearest neighbors over the records' `FILE_H` column.
    Neighbors {
        /// SSDeep-style `block:sig1:sig2` probe hash.
        hash: String,
        /// Maximum hits returned.
        k: u32,
        /// Minimum similarity score (0–100).
        min_score: u32,
    },
}

impl QueryRequest {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            QueryRequest::Status => out.push(REQ_STATUS),
            QueryRequest::ByJob { job_id } => {
                out.push(REQ_BY_JOB);
                out.extend_from_slice(&job_id.to_le_bytes());
            }
            QueryRequest::LibraryUsage { selection } => {
                out.push(REQ_LIBRARY_USAGE);
                selection.put(&mut out);
            }
            QueryRequest::Neighbors { hash, k, min_score } => {
                out.push(REQ_NEIGHBORS);
                put_str(&mut out, hash);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&min_score.to_le_bytes());
            }
        }
        out
    }

    /// Decode a frame payload. Unknown tags and malformed bodies come
    /// back as the [`QueryError`] the server should answer with.
    pub fn decode(data: &[u8]) -> Result<Self, QueryError> {
        let malformed = || QueryError::Malformed("truncated or inconsistent request".into());
        let (&tag, body) = data.split_first().ok_or_else(malformed)?;
        let mut pos = 0usize;
        let req = match tag {
            REQ_STATUS => QueryRequest::Status,
            REQ_BY_JOB => QueryRequest::ByJob {
                job_id: get_u64(body, &mut pos).ok_or_else(malformed)?,
            },
            REQ_LIBRARY_USAGE => QueryRequest::LibraryUsage {
                selection: Selection::get(body, &mut pos).ok_or_else(malformed)?,
            },
            REQ_NEIGHBORS => QueryRequest::Neighbors {
                hash: get_str(body, &mut pos).ok_or_else(malformed)?,
                k: get_u32(body, &mut pos).ok_or_else(malformed)?,
                min_score: get_u32(body, &mut pos).ok_or_else(malformed)?,
            },
            other => return Err(QueryError::UnknownRequest(other)),
        };
        if pos != body.len() {
            return Err(QueryError::Malformed("trailing bytes after request".into()));
        }
        Ok(req)
    }
}

/// Daemon status, as served to clients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// Protocol version the server is speaking on this connection.
    pub protocol_version: u16,
    /// Epochs committed to the consolidated store, ascending.
    pub committed_epochs: Vec<u64>,
    /// Committed records across all epochs.
    pub records: u64,
    /// The epoch currently ingesting, if any.
    pub open_epoch: Option<u64>,
    /// Sentinels whose epoch tag disagreed with the open epoch
    /// (stragglers from reordered campaigns), since daemon start.
    pub epoch_tag_mismatches: u64,
    /// Epochs closed by the quiet-period fallback instead of a sentinel
    /// quorum (every `TYPE=END` copy lost), since daemon start.
    pub quiet_period_fallbacks: u64,
}

/// One epoch-tagged committed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordRow {
    /// Epoch the record was committed under.
    pub epoch: u64,
    /// The consolidated record.
    pub record: ProcessRecord,
}

/// One nearest-neighbor hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborRow {
    /// Similarity score, 0–100.
    pub score: u32,
    /// Epoch the matching record was committed under.
    pub epoch: u64,
    /// The matching record.
    pub record: ProcessRecord,
}

/// One answer, server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Status`].
    Status(StatusInfo),
    /// Answer to [`QueryRequest::ByJob`].
    Rows(Vec<RecordRow>),
    /// Answer to [`QueryRequest::LibraryUsage`].
    LibraryUsage(Vec<LibraryUsageRow>),
    /// Answer to [`QueryRequest::Neighbors`].
    Neighbors(Vec<NeighborRow>),
    /// The request could not be answered.
    Error(QueryError),
}

impl QueryResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            QueryResponse::Status(status) => {
                out.push(RESP_STATUS);
                out.extend_from_slice(&status.protocol_version.to_le_bytes());
                out.extend_from_slice(&(status.committed_epochs.len() as u32).to_le_bytes());
                for epoch in &status.committed_epochs {
                    out.extend_from_slice(&epoch.to_le_bytes());
                }
                out.extend_from_slice(&status.records.to_le_bytes());
                match status.open_epoch {
                    None => out.push(0),
                    Some(e) => {
                        out.push(1);
                        out.extend_from_slice(&e.to_le_bytes());
                    }
                }
                out.extend_from_slice(&status.epoch_tag_mismatches.to_le_bytes());
                out.extend_from_slice(&status.quiet_period_fallbacks.to_le_bytes());
            }
            QueryResponse::Rows(rows) => {
                out.push(RESP_ROWS);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.epoch.to_le_bytes());
                    put_bytes(&mut out, &row.record.encode());
                }
            }
            QueryResponse::LibraryUsage(rows) => {
                out.push(RESP_LIBRARY_USAGE);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    put_str(&mut out, &row.library);
                    out.extend_from_slice(&row.processes.to_le_bytes());
                    out.extend_from_slice(&row.hosts.to_le_bytes());
                }
            }
            QueryResponse::Neighbors(rows) => {
                out.push(RESP_NEIGHBORS);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.score.to_le_bytes());
                    out.extend_from_slice(&row.epoch.to_le_bytes());
                    put_bytes(&mut out, &row.record.encode());
                }
            }
            QueryResponse::Error(err) => {
                out.push(RESP_ERROR);
                err.put(&mut out);
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(data: &[u8]) -> Result<Self, QueryError> {
        let malformed = || QueryError::Malformed("truncated or inconsistent response".into());
        let (&tag, body) = data.split_first().ok_or_else(malformed)?;
        let mut pos = 0usize;
        let resp = match tag {
            RESP_STATUS => {
                let protocol_version = get_u16(body, &mut pos).ok_or_else(malformed)?;
                // Minimum wire sizes per element: epoch u64 = 8.
                let n = get_count(body, &mut pos, 8).ok_or_else(malformed)?;
                let mut committed_epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    committed_epochs.push(get_u64(body, &mut pos).ok_or_else(malformed)?);
                }
                let records = get_u64(body, &mut pos).ok_or_else(malformed)?;
                let open_epoch = match take(body, &mut pos, 1).ok_or_else(malformed)?[0] {
                    0 => None,
                    1 => Some(get_u64(body, &mut pos).ok_or_else(malformed)?),
                    _ => return Err(malformed()),
                };
                QueryResponse::Status(StatusInfo {
                    protocol_version,
                    committed_epochs,
                    records,
                    open_epoch,
                    epoch_tag_mismatches: get_u64(body, &mut pos).ok_or_else(malformed)?,
                    quiet_period_fallbacks: get_u64(body, &mut pos).ok_or_else(malformed)?,
                })
            }
            RESP_ROWS => {
                // epoch u64 (8) + record byte-length prefix (4).
                let n = get_count(body, &mut pos, 12).ok_or_else(malformed)?;
                let mut rows = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    let epoch = get_u64(body, &mut pos).ok_or_else(malformed)?;
                    let bytes = get_bytes(body, &mut pos).ok_or_else(malformed)?;
                    let record = ProcessRecord::decode(bytes).ok_or_else(malformed)?;
                    rows.push(RecordRow { epoch, record });
                }
                QueryResponse::Rows(rows)
            }
            RESP_LIBRARY_USAGE => {
                // library length prefix (4) + processes u64 + hosts u64.
                let n = get_count(body, &mut pos, 20).ok_or_else(malformed)?;
                let mut rows = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    rows.push(LibraryUsageRow {
                        library: get_str(body, &mut pos).ok_or_else(malformed)?,
                        processes: get_u64(body, &mut pos).ok_or_else(malformed)?,
                        hosts: get_u64(body, &mut pos).ok_or_else(malformed)?,
                    });
                }
                QueryResponse::LibraryUsage(rows)
            }
            RESP_NEIGHBORS => {
                // score u32 + epoch u64 + record byte-length prefix (4).
                let n = get_count(body, &mut pos, 16).ok_or_else(malformed)?;
                let mut rows = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    let score = get_u32(body, &mut pos).ok_or_else(malformed)?;
                    let epoch = get_u64(body, &mut pos).ok_or_else(malformed)?;
                    let bytes = get_bytes(body, &mut pos).ok_or_else(malformed)?;
                    let record = ProcessRecord::decode(bytes).ok_or_else(malformed)?;
                    rows.push(NeighborRow {
                        score,
                        epoch,
                        record,
                    });
                }
                QueryResponse::Neighbors(rows)
            }
            RESP_ERROR => {
                QueryResponse::Error(QueryError::get(body, &mut pos).ok_or_else(malformed)?)
            }
            _ => return Err(malformed()),
        };
        if pos != body.len() {
            return Err(QueryError::Malformed(
                "trailing bytes after response".into(),
            ));
        }
        Ok(resp)
    }
}

/// Why a request could not be answered — the structured error the
/// server returns instead of closing (or right before closing, when the
/// stream itself can no longer be trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The payload did not decode.
    Malformed(String),
    /// No overlap between the client's and the server's version ranges.
    UnsupportedVersion {
        /// Lowest version the server speaks.
        server_min: u16,
        /// Highest version the server speaks.
        server_max: u16,
    },
    /// The request tag is not known to this server version.
    UnknownRequest(u8),
    /// The frame's length prefix exceeded the server's cap.
    FrameTooLarge(u32),
    /// The per-request deadline expired.
    Deadline,
    /// Server-side fault while answering.
    Internal(String),
}

impl QueryError {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            QueryError::Malformed(detail) => {
                out.push(ERR_MALFORMED);
                put_str(out, detail);
            }
            QueryError::UnsupportedVersion {
                server_min,
                server_max,
            } => {
                out.push(ERR_UNSUPPORTED_VERSION);
                out.extend_from_slice(&server_min.to_le_bytes());
                out.extend_from_slice(&server_max.to_le_bytes());
            }
            QueryError::UnknownRequest(tag) => {
                out.push(ERR_UNKNOWN_REQUEST);
                out.push(*tag);
            }
            QueryError::FrameTooLarge(len) => {
                out.push(ERR_FRAME_TOO_LARGE);
                out.extend_from_slice(&len.to_le_bytes());
            }
            QueryError::Deadline => out.push(ERR_DEADLINE),
            QueryError::Internal(detail) => {
                out.push(ERR_INTERNAL);
                put_str(out, detail);
            }
        }
    }

    fn get(data: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match take(data, pos, 1)?[0] {
            ERR_MALFORMED => QueryError::Malformed(get_str(data, pos)?),
            ERR_UNSUPPORTED_VERSION => QueryError::UnsupportedVersion {
                server_min: get_u16(data, pos)?,
                server_max: get_u16(data, pos)?,
            },
            ERR_UNKNOWN_REQUEST => QueryError::UnknownRequest(take(data, pos, 1)?[0]),
            ERR_FRAME_TOO_LARGE => QueryError::FrameTooLarge(get_u32(data, pos)?),
            ERR_DEADLINE => QueryError::Deadline,
            ERR_INTERNAL => QueryError::Internal(get_str(data, pos)?),
            _ => return None,
        })
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
            QueryError::UnsupportedVersion {
                server_min,
                server_max,
            } => write!(
                f,
                "no common protocol version (server speaks {server_min}..={server_max})"
            ),
            QueryError::UnknownRequest(tag) => write!(f, "unknown request tag {tag}"),
            QueryError::FrameTooLarge(len) => write!(f, "frame payload of {len} bytes refused"),
            QueryError::Deadline => write!(f, "request deadline expired"),
            QueryError::Internal(detail) => write!(f, "server fault: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Encode the client hello: magic + supported `[min, max]` range.
pub fn encode_hello(min: u16, max: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&HELLO_MAGIC);
    out.extend_from_slice(&min.to_le_bytes());
    out.extend_from_slice(&max.to_le_bytes());
    out
}

/// Decode a client hello into its `(min, max)` version range.
pub fn decode_hello(payload: &[u8]) -> Option<(u16, u16)> {
    if payload.len() != 8 || payload[..4] != HELLO_MAGIC {
        return None;
    }
    let mut pos = 4usize;
    let min = get_u16(payload, &mut pos)?;
    let max = get_u16(payload, &mut pos)?;
    Some((min, max))
}

/// Encode the server hello-ack carrying the chosen version.
pub fn encode_hello_ack(version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.extend_from_slice(&HELLO_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out
}

/// Decode a server hello-ack into the chosen version.
pub fn decode_hello_ack(payload: &[u8]) -> Option<u16> {
    if payload.len() != 6 || payload[..4] != HELLO_MAGIC {
        return None;
    }
    let mut pos = 4usize;
    get_u16(payload, &mut pos)
}

/// Pick the version a server speaking `[PROTOCOL_VERSION_MIN,
/// PROTOCOL_VERSION]` should use against a client offering
/// `[client_min, client_max]`: the highest version in both ranges.
pub fn negotiate(client_min: u16, client_max: u16) -> Result<u16, QueryError> {
    let chosen = client_max.min(PROTOCOL_VERSION);
    if chosen >= client_min && chosen >= PROTOCOL_VERSION_MIN {
        Ok(chosen)
    } else {
        Err(QueryError::UnsupportedVersion {
            server_min: PROTOCOL_VERSION_MIN,
            server_max: PROTOCOL_VERSION,
        })
    }
}
