//! The multiplexed v3 client: many interleaved cursor streams over
//! one TCP connection.
//!
//! [`MuxClient`] is a cheaply cloneable handle around one v3
//! connection (see [`SirenClient::into_mux`]). Each
//! [`MuxClient::query`] claims a fresh nonzero stream id, sends the
//! plan under it, and returns a [`MuxStream`] that owns that id for
//! its whole life — its `FetchCursor` continuations reuse the same id,
//! so every frame of every page comes back tagged for it. Reply frames
//! arriving for *other* ids while a stream reads are routed to their
//! owners' inboxes, which is the entire multiplexing trick: whichever
//! stream (or thread) happens to be reading drives the shared socket,
//! and everyone else's data is parked for them.
//!
//! Dropping a stream mid-reply drains it to its frame boundary and
//! closes its parked cursor, exactly like [`RowStream`]; if the
//! connection desyncs (an undecodable frame, an unknown stream id) the
//! whole handle is poisoned — every stream and call on it fails fast
//! rather than misparse.
//!
//! [`RowStream`]: crate::client::RowStream
//! [`SirenClient::into_mux`]: crate::client::SirenClient::into_mux

use crate::client::{unexpected, ClientError};
use crate::frame::{read_frame, write_frame};
use crate::message::{QueryRequest, QueryResponse, QueryWarning, StatusInfo};
use crate::plan::{PlanRow, QueryPlan};
use crate::stream::{decode_stream_frame, encode_stream_frame, CONNECTION_STREAM};
use siren_obs::TraceId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, PoisonError};

/// Hard bound on frames drained while resolving one stream's drop or
/// close; a server violating it is already off-protocol.
const DRAIN_FRAME_BUDGET: usize = 100_000;

/// A shareable multiplexed connection to a v3 server.
#[derive(Debug, Clone)]
pub struct MuxClient {
    inner: Arc<Mutex<MuxInner>>,
}

#[derive(Debug)]
struct MuxInner {
    stream: TcpStream,
    next_id: u32,
    accept_compressed: bool,
    /// Reply frames routed to streams not currently reading.
    inboxes: HashMap<u32, VecDeque<QueryResponse>>,
    /// Streams dropped mid-reply: frames are discarded until their
    /// terminator, and any cursor the terminator parks is auto-closed.
    orphans: HashSet<u32>,
    poisoned: bool,
}

impl MuxInner {
    fn check_usable(&self) -> Result<(), ClientError> {
        if self.poisoned {
            return Err(ClientError::Protocol(
                "multiplexed connection desynced; reconnect".into(),
            ));
        }
        Ok(())
    }

    fn alloc_id(&mut self) -> u32 {
        loop {
            self.next_id = self.next_id.wrapping_add(1);
            let id = self.next_id;
            if id != CONNECTION_STREAM
                && !self.inboxes.contains_key(&id)
                && !self.orphans.contains(&id)
            {
                return id;
            }
        }
    }

    fn send(
        &mut self,
        stream_id: u32,
        request: &QueryRequest,
        trace: Option<TraceId>,
    ) -> Result<(), ClientError> {
        self.check_usable()?;
        let body = request.encode_traced(3, trace);
        let envelope = encode_stream_frame(stream_id, &body, self.accept_compressed, None);
        if let Err(e) = write_frame(&mut self.stream, &envelope) {
            self.poisoned = true;
            return Err(e.into());
        }
        Ok(())
    }

    /// Read one frame off the socket. Returns the response if it was
    /// for `me`, `None` if it was routed (or discarded) elsewhere.
    /// Frames for unknown streams, undecodable frames, and
    /// connection-level (`stream 0`) errors poison the connection.
    fn read_one(&mut self, me: u32) -> Result<Option<QueryResponse>, ClientError> {
        self.check_usable()?;
        let payload = match read_frame(&mut self.stream) {
            Ok(p) => p,
            Err(e) => {
                self.poisoned = true;
                return Err(e.into());
            }
        };
        let frame = match decode_stream_frame(&payload) {
            Ok(f) => f,
            Err(err) => {
                self.poisoned = true;
                return Err(ClientError::Protocol(format!("bad stream envelope: {err}")));
            }
        };
        let response = match QueryResponse::decode_versioned(&frame.body, 3) {
            Ok(r) => r,
            Err(err) => {
                self.poisoned = true;
                return Err(ClientError::Protocol(format!(
                    "undecodable response: {err}"
                )));
            }
        };
        if frame.stream_id == me {
            return Ok(Some(response));
        }
        if frame.stream_id == CONNECTION_STREAM {
            // Connection-scoped error (deadline, unreadable envelope):
            // the server closes after this; nothing here is recoverable.
            self.poisoned = true;
            return Err(match response {
                QueryResponse::Error(err) => ClientError::Server(err),
                other => unexpected("connection-level Error", &other),
            });
        }
        if self.orphans.contains(&frame.stream_id) {
            self.resolve_orphan(frame.stream_id, response)?;
            return Ok(None);
        }
        match self.inboxes.get_mut(&frame.stream_id) {
            Some(inbox) => {
                inbox.push_back(response);
                Ok(None)
            }
            None => {
                self.poisoned = true;
                Err(ClientError::Protocol(format!(
                    "reply for unknown stream {}",
                    frame.stream_id
                )))
            }
        }
    }

    /// Advance an orphaned stream: drop its batches, and when its
    /// terminator arrives close any cursor it parked (under a fresh
    /// orphan id, so that close's own ack is discarded the same way).
    fn resolve_orphan(&mut self, id: u32, response: QueryResponse) -> Result<(), ClientError> {
        match response {
            QueryResponse::Batch(_) | QueryResponse::Warning(_) => Ok(()),
            QueryResponse::StreamEnd {
                cursor: Some(cursor),
            } => {
                self.orphans.remove(&id);
                let close_id = self.alloc_id();
                self.orphans.insert(close_id);
                self.send(close_id, &QueryRequest::CloseCursor { cursor }, None)
            }
            QueryResponse::StreamEnd { cursor: None } | QueryResponse::Error(_) => {
                self.orphans.remove(&id);
                Ok(())
            }
            other => {
                self.poisoned = true;
                Err(unexpected("Batch or StreamEnd", &other))
            }
        }
    }

    fn pop_inbox(&mut self, id: u32) -> Option<QueryResponse> {
        self.inboxes.get_mut(&id)?.pop_front()
    }
}

impl MuxClient {
    /// Assemble from an already-negotiated v3 socket (used by
    /// [`SirenClient::into_mux`]).
    ///
    /// [`SirenClient::into_mux`]: crate::client::SirenClient::into_mux
    pub(crate) fn from_parts(
        stream: TcpStream,
        next_id: u32,
        accept_compressed: bool,
    ) -> MuxClient {
        MuxClient {
            inner: Arc::new(Mutex::new(MuxInner {
                stream,
                next_id,
                accept_compressed,
                inboxes: HashMap::new(),
                orphans: HashSet::new(),
                poisoned: false,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MuxInner> {
        // The vendored workspace style: panics while holding the lock
        // don't poison it for other streams.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Advertise (or stop advertising) on subsequent requests that
    /// reply bodies may arrive compressed.
    pub fn set_accept_compressed(&self, accept: bool) {
        self.lock().accept_compressed = accept;
    }

    /// Open `plan` as a multiplexed row stream with its own stream id.
    /// Any number of streams from clones of this handle can be drained
    /// concurrently or interleaved from one thread.
    pub fn query(&self, plan: QueryPlan) -> Result<MuxStream, ClientError> {
        self.query_inner(plan, None)
    }

    /// Like [`MuxClient::query`] with a trace context stamped on the
    /// plan, as [`query_traced`] does for the sequential client.
    ///
    /// [`query_traced`]: crate::client::SirenClient::query_traced
    pub fn query_traced(&self, plan: QueryPlan, trace: TraceId) -> Result<MuxStream, ClientError> {
        self.query_inner(plan, Some(trace))
    }

    fn query_inner(
        &self,
        plan: QueryPlan,
        trace: Option<TraceId>,
    ) -> Result<MuxStream, ClientError> {
        plan.validate().map_err(ClientError::Server)?;
        let mut inner = self.lock();
        inner.check_usable()?;
        let id = inner.alloc_id();
        inner.inboxes.insert(id, VecDeque::new());
        if let Err(e) = inner.send(id, &QueryRequest::Plan(plan), trace) {
            inner.inboxes.remove(&id);
            return Err(e);
        }
        drop(inner);
        Ok(MuxStream {
            client: self.clone(),
            id,
            buffer: VecDeque::new(),
            cursor: None,
            mid_reply: true,
            done: false,
            failed: false,
            warnings: Vec::new(),
        })
    }

    /// Issue a single-frame request/response exchange under its own
    /// stream id, interleaving with any in-flight streams.
    pub fn call(&self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        match request {
            QueryRequest::Plan(_) | QueryRequest::FetchCursor { .. } => {
                return Err(ClientError::Unsupported(
                    "stream-reply requests must go through query()".into(),
                ));
            }
            _ => {}
        }
        let mut inner = self.lock();
        let id = inner.alloc_id();
        inner.inboxes.insert(id, VecDeque::new());
        if let Err(e) = inner.send(id, request, None) {
            inner.inboxes.remove(&id);
            return Err(e);
        }
        let result = loop {
            if let Some(response) = inner.pop_inbox(id) {
                break Ok(response);
            }
            match inner.read_one(id) {
                Ok(Some(response)) => break Ok(response),
                Ok(None) => continue,
                Err(e) => break Err(e),
            }
        };
        inner.inboxes.remove(&id);
        match result? {
            QueryResponse::Error(err) => Err(ClientError::Server(err)),
            response => Ok(response),
        }
    }

    /// Daemon status over the multiplexed connection.
    pub fn status(&self) -> Result<StatusInfo, ClientError> {
        match self.call(&QueryRequest::Status)? {
            QueryResponse::Status(status) => Ok(status),
            other => Err(unexpected("Status", &other)),
        }
    }
}

/// One multiplexed plan stream; see [`MuxClient::query`]. Iterates
/// rows exactly like [`RowStream`], but many of these can be alive on
/// the same connection, advancing in any order.
///
/// [`RowStream`]: crate::client::RowStream
#[derive(Debug)]
pub struct MuxStream {
    client: MuxClient,
    id: u32,
    buffer: VecDeque<PlanRow>,
    cursor: Option<u64>,
    mid_reply: bool,
    done: bool,
    failed: bool,
    /// Degradation notices absorbed from the stream, in arrival order.
    warnings: Vec<QueryWarning>,
}

impl MuxStream {
    /// The stream id tagging this exchange's frames on the wire.
    pub fn stream_id(&self) -> u32 {
        self.id
    }

    fn absorb(&mut self, response: QueryResponse) -> Result<(), ClientError> {
        match response {
            QueryResponse::Batch(batch) => {
                self.buffer.extend(batch.into_rows());
                Ok(())
            }
            QueryResponse::StreamEnd { cursor } => {
                self.mid_reply = false;
                self.cursor = cursor;
                if cursor.is_none() {
                    self.done = true;
                }
                Ok(())
            }
            QueryResponse::Warning(warning) => {
                // Non-fatal degradation notice; the reply continues to
                // its StreamEnd.
                self.warnings.push(warning);
                Ok(())
            }
            QueryResponse::Error(err) => {
                // Terminates this stream's reply at a frame boundary;
                // the shared connection stays healthy.
                self.mid_reply = false;
                self.done = true;
                Err(ClientError::Server(err))
            }
            other => {
                self.failed = true;
                self.done = true;
                Err(unexpected("Batch or StreamEnd", &other))
            }
        }
    }

    /// Read (and route) frames until this stream has rows or ends.
    fn fill(&mut self) -> Result<(), ClientError> {
        while self.buffer.is_empty() && !self.done {
            let mut inner = self.client.lock();
            while let Some(response) = inner.pop_inbox(self.id) {
                drop(inner);
                self.absorb(response)?;
                if !self.buffer.is_empty() || self.done {
                    return Ok(());
                }
                inner = self.client.lock();
            }
            if !self.mid_reply {
                match self.cursor.take() {
                    Some(cursor) => {
                        inner.send(self.id, &QueryRequest::FetchCursor { cursor }, None)?;
                        self.mid_reply = true;
                    }
                    None => {
                        self.done = true;
                        return Ok(());
                    }
                }
            }
            match inner.read_one(self.id) {
                Ok(Some(response)) => {
                    drop(inner);
                    self.absorb(response)?;
                }
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    self.done = true;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Drain the remaining rows into a vector.
    pub fn collect_rows(mut self) -> Result<Vec<PlanRow>, ClientError> {
        let mut rows = Vec::new();
        loop {
            self.fill()?;
            if self.buffer.is_empty() {
                return Ok(rows);
            }
            rows.extend(self.buffer.drain(..));
        }
    }

    /// Drain the remaining rows, also returning any degradation
    /// warnings the stream carried. An empty warning list means the
    /// rows are the complete answer.
    pub fn collect_rows_warned(mut self) -> Result<(Vec<PlanRow>, Vec<QueryWarning>), ClientError> {
        let mut rows = Vec::new();
        loop {
            self.fill()?;
            if self.buffer.is_empty() {
                return Ok((rows, std::mem::take(&mut self.warnings)));
            }
            rows.extend(self.buffer.drain(..));
        }
    }

    /// Degradation warnings absorbed so far (complete once the stream
    /// is done).
    pub fn warnings(&self) -> &[QueryWarning] {
        &self.warnings
    }

    /// True once every row has been yielded.
    pub fn is_done(&self) -> bool {
        self.done && self.buffer.is_empty()
    }
}

impl Iterator for MuxStream {
    type Item = Result<PlanRow, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(row) = self.buffer.pop_front() {
            return Some(Ok(row));
        }
        if let Err(err) = self.fill() {
            return Some(Err(err));
        }
        self.buffer.pop_front().map(Ok)
    }
}

impl Drop for MuxStream {
    fn drop(&mut self) {
        let mut inner = self.client.lock();
        if inner.poisoned {
            inner.inboxes.remove(&self.id);
            return;
        }
        // Drain the in-flight reply to its boundary (absorbing already-
        // routed frames first), then close any parked cursor — same
        // hygiene as RowStream, but under the shared lock.
        let mut budget = DRAIN_FRAME_BUDGET;
        while self.mid_reply && !self.failed && budget > 0 {
            budget -= 1;
            let response = match inner.pop_inbox(self.id) {
                Some(r) => Some(r),
                None => match inner.read_one(self.id) {
                    Ok(r) => r,
                    Err(_) => break,
                },
            };
            match response {
                Some(QueryResponse::Batch(_) | QueryResponse::Warning(_)) | None => {}
                Some(QueryResponse::StreamEnd { cursor }) => {
                    self.mid_reply = false;
                    self.cursor = cursor;
                }
                Some(QueryResponse::Error(_)) => {
                    self.mid_reply = false;
                    self.cursor = None;
                }
                Some(_) => {
                    self.failed = true;
                }
            }
        }
        inner.inboxes.remove(&self.id);
        if self.failed || inner.poisoned {
            inner.poisoned = true;
            return;
        }
        if self.mid_reply {
            // Could not reach the boundary in budget: hand the tail to
            // the orphan router instead of stalling the caller.
            inner.orphans.insert(self.id);
            return;
        }
        if let Some(cursor) = self.cursor.take() {
            if inner
                .send(self.id, &QueryRequest::CloseCursor { cursor }, None)
                .is_err()
            {
                return;
            }
            let mut budget = DRAIN_FRAME_BUDGET;
            loop {
                if budget == 0 {
                    inner.poisoned = true;
                    break;
                }
                budget -= 1;
                match inner.read_one(self.id) {
                    Ok(Some(
                        QueryResponse::StreamEnd { cursor: None } | QueryResponse::Error(_),
                    )) => break,
                    Ok(Some(_)) => {
                        inner.poisoned = true;
                        break;
                    }
                    Ok(None) => continue,
                    Err(_) => break,
                }
            }
        }
    }
}
