//! Protocol v2: the composable [`QueryPlan`] and the streamed answer
//! shapes ([`RowBatch`] frames terminated by an end-or-cursor frame).
//!
//! v1 asked one of a closed set of questions and buffered the whole
//! answer into a single frame. v2 instead ships a *plan* — a source
//! (committed records, the per-user usage table, or fuzzy neighbors),
//! one shared [`Selection`] filter (now with epoch-slice support),
//! a projection, an ordering, and a limit — and the server answers
//! with a stream of bounded [`RowBatch`] frames. Each reply ends with
//! a [`QueryResponse::StreamEnd`](crate::QueryResponse::StreamEnd)
//! frame carrying either *end of rows* or a resumable cursor id; the
//! cursor pins the `Arc` snapshot the plan started on, so pagination
//! stays consistent across epoch commits landing mid-stream.
//!
//! Every future question becomes a new [`PlanSource`]/field combination
//! instead of a wire break: decoders here are additive under version
//! negotiation, and a v1 peer never sees any of these tags.

use crate::message::{get_u32, get_u64, take, QueryError, Selection};
use crate::message::{NeighborRow, RecordRow};
use siren_analysis::UsageRow;
use siren_consolidate::ProcessRecord;
use siren_store::codec::{get_bytes, get_str, put_bytes, put_str};

// Plan-source tags.
const SRC_RECORDS: u8 = 0;
const SRC_USAGE_TABLE: u8 = 1;
const SRC_NEIGHBORS: u8 = 2;

// Row-kind tags inside a batch frame.
const ROWS_RECORDS: u8 = 0;
const ROWS_USAGE: u8 = 1;
const ROWS_NEIGHBORS: u8 = 2;

/// Default rows per batch frame when the plan does not say.
pub const DEFAULT_BATCH_ROWS: u32 = 256;
/// Default rows per reply (page) before the server hands out a cursor.
pub const DEFAULT_PAGE_ROWS: u32 = 2048;
/// Hard per-batch row cap the server clamps to (frames stay bounded).
pub const MAX_BATCH_ROWS: u32 = 4096;
/// Hard per-page row cap the server clamps to.
pub const MAX_PAGE_ROWS: u32 = 65_536;

/// What a [`QueryPlan`] reads from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSource {
    /// Epoch-tagged committed records ([`RecordRow`] stream).
    Records,
    /// The paper's per-user usage aggregation ([`UsageRow`] stream),
    /// computed over the selection.
    UsageTable,
    /// Fuzzy-hash nearest neighbors of `hash` over the selection's
    /// `FILE_H` column ([`NeighborRow`] stream, best score first).
    Neighbors {
        /// SSDeep-style `block:sig1:sig2` probe hash.
        hash: String,
        /// Minimum similarity score (0–100).
        min_score: u32,
    },
}

/// Which columns of a record a row stream carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Projection {
    /// The whole consolidated record.
    #[default]
    Full,
    /// Identity only: the process key survives; metadata, object
    /// lists, and content hashes are stripped. Shrinks row frames by
    /// an order of magnitude for workloads that only pivot on
    /// job/host/time/exe.
    Keys,
}

impl Projection {
    /// Apply the projection to one record (in place).
    pub fn apply(&self, record: &mut ProcessRecord) {
        match self {
            Projection::Full => {}
            Projection::Keys => {
                record.meta.clear();
                record.objects = None;
                record.modules = None;
                record.compilers = None;
                record.maps = None;
                record.objects_hash = None;
                record.modules_hash = None;
                record.compilers_hash = None;
                record.maps_hash = None;
                record.file_hash = None;
                record.strings_hash = None;
                record.symbols_hash = None;
                record.script = None;
            }
        }
    }
}

/// Row ordering of a [`PlanSource::Records`] stream. Aggregations keep
/// their natural order (usage rows: the paper's sort; neighbors: score
/// descending) and reject any other request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Order {
    /// Commit order (the v1 `ByJob` order) — streamed lazily.
    #[default]
    Commit,
    /// Collection timestamp ascending (ties: commit order).
    TimeAsc,
    /// Collection timestamp descending (ties: commit order).
    TimeDesc,
}

/// A composable query: source, filter, projection, order, limit, and
/// the batching geometry of the reply stream.
///
/// Built with the fluent constructors ([`QueryPlan::records`],
/// [`QueryPlan::usage_table`], [`QueryPlan::neighbors`]) and builder
/// methods; validated by [`QueryPlan::validate`] on both ends before
/// any row is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// What to read.
    pub source: PlanSource,
    /// The shared record filter (epoch, epoch slice, host, job, time).
    pub selection: Selection,
    /// Which columns each row carries.
    pub projection: Projection,
    /// Row ordering (records only).
    pub order: Order,
    /// Stop after this many rows (for [`PlanSource::Neighbors`] this is
    /// the `k` of the search). `None` = all matching rows.
    pub limit: Option<u64>,
    /// Rows per batch frame (server clamps to [`MAX_BATCH_ROWS`]).
    pub batch_rows: u32,
    /// Rows per reply before a cursor is handed out (server clamps to
    /// [`MAX_PAGE_ROWS`]).
    pub page_rows: u32,
}

impl QueryPlan {
    fn new(source: PlanSource) -> Self {
        Self {
            source,
            selection: Selection::all(),
            projection: Projection::Full,
            order: Order::Commit,
            limit: None,
            batch_rows: DEFAULT_BATCH_ROWS,
            page_rows: DEFAULT_PAGE_ROWS,
        }
    }

    /// A record stream over the whole store (narrow it with
    /// [`filter`](Self::filter)).
    pub fn records() -> Self {
        Self::new(PlanSource::Records)
    }

    /// The per-user usage table over the selection.
    pub fn usage_table() -> Self {
        Self::new(PlanSource::UsageTable)
    }

    /// Fuzzy nearest neighbors of `hash` scoring at least `min_score`.
    pub fn neighbors(hash: impl Into<String>, min_score: u32) -> Self {
        Self::new(PlanSource::Neighbors {
            hash: hash.into(),
            min_score,
        })
    }

    /// Restrict the plan to records passing `selection`.
    pub fn filter(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Choose the row projection.
    pub fn project(mut self, projection: Projection) -> Self {
        self.projection = projection;
        self
    }

    /// Choose the record ordering.
    pub fn order_by(mut self, order: Order) -> Self {
        self.order = order;
        self
    }

    /// Stop after `limit` rows (the `k` of a neighbor search).
    pub fn limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Rows per batch frame.
    pub fn batch_rows(mut self, rows: u32) -> Self {
        self.batch_rows = rows;
        self
    }

    /// Rows per reply before the server hands out a cursor.
    pub fn page_rows(mut self, rows: u32) -> Self {
        self.page_rows = rows;
        self
    }

    /// Reject structurally invalid plans with a typed error — run on
    /// both ends before any row work (the server also re-validates, so
    /// a hand-rolled client cannot smuggle one through).
    pub fn validate(&self) -> Result<(), QueryError> {
        self.selection.validate()?;
        if self.batch_rows == 0 || self.page_rows == 0 {
            return Err(QueryError::InvalidPlan(
                "batch_rows and page_rows must be at least 1".into(),
            ));
        }
        if self.order != Order::Commit && self.source != PlanSource::Records {
            return Err(QueryError::InvalidPlan(
                "only record streams are orderable; aggregations keep their natural order".into(),
            ));
        }
        if let PlanSource::Neighbors { hash, .. } = &self.source {
            if hash.is_empty() {
                return Err(QueryError::InvalidPlan("empty probe hash".into()));
            }
        }
        Ok(())
    }

    /// Stable 64-bit fingerprint of the encoded plan — the identity the
    /// slow-query log groups by, so "the same plan ran slow again" is
    /// one line, not many.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::with_capacity(64);
        self.put(&mut buf);
        siren_hash::fnv1a64(&buf)
    }

    /// Compact structural description (`source/order sel=<shape>`) —
    /// what the slow-query log records instead of full predicate
    /// values, which may carry untrusted ingest strings.
    pub fn shape(&self) -> String {
        let source = match &self.source {
            PlanSource::Records => "records",
            PlanSource::UsageTable => "usage",
            PlanSource::Neighbors { .. } => "neighbors",
        };
        let order = match self.order {
            Order::Commit => "commit",
            Order::TimeAsc => "time_asc",
            Order::TimeDesc => "time_desc",
        };
        format!("{source}/{order} sel={}", self.selection.shape())
    }

    pub(crate) fn put(&self, out: &mut Vec<u8>) {
        match &self.source {
            PlanSource::Records => out.push(SRC_RECORDS),
            PlanSource::UsageTable => out.push(SRC_USAGE_TABLE),
            PlanSource::Neighbors { hash, min_score } => {
                out.push(SRC_NEIGHBORS);
                put_str(out, hash);
                out.extend_from_slice(&min_score.to_le_bytes());
            }
        }
        self.selection.put(out, 2);
        out.push(match self.projection {
            Projection::Full => 0,
            Projection::Keys => 1,
        });
        out.push(match self.order {
            Order::Commit => 0,
            Order::TimeAsc => 1,
            Order::TimeDesc => 2,
        });
        match self.limit {
            None => out.push(0),
            Some(n) => {
                out.push(1);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.batch_rows.to_le_bytes());
        out.extend_from_slice(&self.page_rows.to_le_bytes());
    }

    pub(crate) fn get(data: &[u8], pos: &mut usize) -> Option<Self> {
        let source = match take(data, pos, 1)?[0] {
            SRC_RECORDS => PlanSource::Records,
            SRC_USAGE_TABLE => PlanSource::UsageTable,
            SRC_NEIGHBORS => PlanSource::Neighbors {
                hash: get_str(data, pos)?,
                min_score: get_u32(data, pos)?,
            },
            _ => return None,
        };
        let selection = Selection::get(data, pos, 2)?;
        let projection = match take(data, pos, 1)?[0] {
            0 => Projection::Full,
            1 => Projection::Keys,
            _ => return None,
        };
        let order = match take(data, pos, 1)?[0] {
            0 => Order::Commit,
            1 => Order::TimeAsc,
            2 => Order::TimeDesc,
            _ => return None,
        };
        let limit = match take(data, pos, 1)?[0] {
            0 => None,
            1 => Some(get_u64(data, pos)?),
            _ => return None,
        };
        Some(Self {
            source,
            selection,
            projection,
            order,
            limit,
            batch_rows: get_u32(data, pos)?,
            page_rows: get_u32(data, pos)?,
        })
    }
}

/// One bounded frame of rows, all of the plan's source kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowBatch {
    /// Rows of a [`PlanSource::Records`] stream.
    Records(Vec<RecordRow>),
    /// Rows of a [`PlanSource::UsageTable`] stream.
    Usage(Vec<UsageRow>),
    /// Rows of a [`PlanSource::Neighbors`] stream.
    Neighbors(Vec<NeighborRow>),
}

impl RowBatch {
    /// Rows in this batch.
    pub fn len(&self) -> usize {
        match self {
            RowBatch::Records(rows) => rows.len(),
            RowBatch::Usage(rows) => rows.len(),
            RowBatch::Neighbors(rows) => rows.len(),
        }
    }

    /// True when the batch carries no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flatten into per-row items (what [`RowStream`](crate::RowStream)
    /// yields).
    pub fn into_rows(self) -> Vec<PlanRow> {
        match self {
            RowBatch::Records(rows) => rows.into_iter().map(PlanRow::Record).collect(),
            RowBatch::Usage(rows) => rows.into_iter().map(PlanRow::Usage).collect(),
            RowBatch::Neighbors(rows) => rows.into_iter().map(PlanRow::Neighbor).collect(),
        }
    }

    pub(crate) fn put(&self, out: &mut Vec<u8>) {
        match self {
            RowBatch::Records(rows) => {
                out.push(ROWS_RECORDS);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.epoch.to_le_bytes());
                    put_bytes(out, &row.record.encode());
                }
            }
            RowBatch::Usage(rows) => {
                out.push(ROWS_USAGE);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    put_str(out, &row.user);
                    out.extend_from_slice(&row.jobs.to_le_bytes());
                    out.extend_from_slice(&row.system_procs.to_le_bytes());
                    out.extend_from_slice(&row.user_procs.to_le_bytes());
                    out.extend_from_slice(&row.python_procs.to_le_bytes());
                }
            }
            RowBatch::Neighbors(rows) => {
                out.push(ROWS_NEIGHBORS);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.score.to_le_bytes());
                    out.extend_from_slice(&row.epoch.to_le_bytes());
                    put_bytes(out, &row.record.encode());
                }
            }
        }
    }

    pub(crate) fn get(data: &[u8], pos: &mut usize) -> Option<Self> {
        let kind = take(data, pos, 1)?[0];
        let remaining = data.len().saturating_sub(*pos);
        let n = get_u32(data, pos)? as usize;
        // Minimum wire bytes per row kind (see `get_count` in message.rs
        // for the rationale: a hostile count must not pre-allocate).
        let min_elem = match kind {
            ROWS_RECORDS => 12,
            ROWS_USAGE => 36,
            ROWS_NEIGHBORS => 16,
            _ => return None,
        };
        if n > remaining / min_elem {
            return None;
        }
        let cap = n.min(1024);
        Some(match kind {
            ROWS_RECORDS => {
                let mut rows = Vec::with_capacity(cap);
                for _ in 0..n {
                    let epoch = get_u64(data, pos)?;
                    let record = ProcessRecord::decode(get_bytes(data, pos)?)?;
                    rows.push(RecordRow { epoch, record });
                }
                RowBatch::Records(rows)
            }
            ROWS_USAGE => {
                let mut rows = Vec::with_capacity(cap);
                for _ in 0..n {
                    rows.push(UsageRow {
                        user: get_str(data, pos)?,
                        jobs: get_u64(data, pos)?,
                        system_procs: get_u64(data, pos)?,
                        user_procs: get_u64(data, pos)?,
                        python_procs: get_u64(data, pos)?,
                    });
                }
                RowBatch::Usage(rows)
            }
            ROWS_NEIGHBORS => {
                let mut rows = Vec::with_capacity(cap);
                for _ in 0..n {
                    let score = get_u32(data, pos)?;
                    let epoch = get_u64(data, pos)?;
                    let record = ProcessRecord::decode(get_bytes(data, pos)?)?;
                    rows.push(NeighborRow {
                        score,
                        epoch,
                        record,
                    });
                }
                RowBatch::Neighbors(rows)
            }
            _ => return None,
        })
    }
}

/// One row of a plan's answer stream, whatever the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanRow {
    /// From [`PlanSource::Records`].
    Record(RecordRow),
    /// From [`PlanSource::UsageTable`].
    Usage(UsageRow),
    /// From [`PlanSource::Neighbors`].
    Neighbor(NeighborRow),
}

impl PlanRow {
    /// The record row, if this came from a record stream.
    pub fn into_record(self) -> Option<RecordRow> {
        match self {
            PlanRow::Record(row) => Some(row),
            _ => None,
        }
    }

    /// The usage row, if this came from a usage-table stream.
    pub fn into_usage(self) -> Option<UsageRow> {
        match self {
            PlanRow::Usage(row) => Some(row),
            _ => None,
        }
    }

    /// The neighbor row, if this came from a neighbor stream.
    pub fn into_neighbor(self) -> Option<NeighborRow> {
        match self {
            PlanRow::Neighbor(row) => Some(row),
            _ => None,
        }
    }
}
