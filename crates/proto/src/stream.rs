//! Protocol v3: the stream envelope.
//!
//! On a connection that negotiated version 3, every post-handshake
//! frame payload is an **envelope** wrapping the v2-layout request or
//! response encoding:
//!
//! ```text
//! [stream id: u32 LE][flags: u8][body …]
//! ```
//!
//! * **stream id** — chosen by the client per logical exchange; the
//!   server echoes it on every frame of the matching reply, so several
//!   cursor streams (and interleaved one-shot requests) multiplex over
//!   one connection. Id `0` is reserved for connection-level server
//!   errors that could not be attributed to a request (unreadable
//!   envelope, idle deadline).
//! * **flags** — bit 0 ([`STREAM_FLAG_COMPRESSED`]): the body is
//!   LZ-compressed (`vendor/lz4_flex`, size-prepended) and the declared
//!   raw length is bounds-checked against [`MAX_FRAME_PAYLOAD`] before
//!   decompression allocates. Bit 1
//!   ([`STREAM_FLAG_ACCEPT_COMPRESSED`]), meaningful on requests:
//!   the sender is willing to receive compressed reply bodies — this is
//!   how compression is negotiated per connection without touching the
//!   fixed-layout hello. All other bits are reserved and draw
//!   [`QueryError::Malformed`].
//!
//! The body bytes are exactly the v2 encoding (`encode_traced(2, …)` /
//! `encode_versioned(2)`), so the v1/v2 codec — and every byte-layout
//! pin on it — is reused untouched; v3 is strictly an envelope around
//! it.

use crate::message::QueryError;
use crate::MAX_FRAME_PAYLOAD;

/// Envelope flag: the body is LZ-compressed (size-prepended).
pub const STREAM_FLAG_COMPRESSED: u8 = 0b0000_0001;
/// Envelope flag on requests: reply bodies may be compressed.
pub const STREAM_FLAG_ACCEPT_COMPRESSED: u8 = 0b0000_0010;
const KNOWN_FLAGS: u8 = STREAM_FLAG_COMPRESSED | STREAM_FLAG_ACCEPT_COMPRESSED;

/// Stream id for connection-level frames not attributable to a
/// request.
pub const CONNECTION_STREAM: u32 = 0;

/// Bytes of envelope header preceding the body.
pub const STREAM_HEADER_LEN: usize = 5;

/// Bodies at least this large are considered for compression by
/// default; smaller ones never shrink enough to beat the added copy.
pub const DEFAULT_COMPRESS_MIN_BYTES: usize = 4096;

/// A decoded v3 envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFrame {
    /// The exchange this frame belongs to.
    pub stream_id: u32,
    /// The sender set [`STREAM_FLAG_ACCEPT_COMPRESSED`].
    pub accept_compressed: bool,
    /// The body arrived compressed (already inflated in `body`).
    pub was_compressed: bool,
    /// The inner v2-layout request/response encoding.
    pub body: Vec<u8>,
}

/// Wrap `body` in a v3 envelope. When `compress_min` is `Some(n)` and
/// the body is at least `n` bytes, the body is compressed — but only
/// kept if compression actually shrank it (incompressible bodies ship
/// raw, flag clear, so the reader never pays inflation for nothing).
pub fn encode_stream_frame(
    stream_id: u32,
    body: &[u8],
    accept_compressed: bool,
    compress_min: Option<usize>,
) -> Vec<u8> {
    let mut flags = 0u8;
    if accept_compressed {
        flags |= STREAM_FLAG_ACCEPT_COMPRESSED;
    }
    let mut out = Vec::with_capacity(STREAM_HEADER_LEN + body.len());
    out.extend_from_slice(&stream_id.to_le_bytes());
    if let Some(min) = compress_min {
        if body.len() >= min {
            let packed = lz4_flex::compress_prepend_size(body);
            if packed.len() < body.len() {
                out.push(flags | STREAM_FLAG_COMPRESSED);
                out.extend_from_slice(&packed);
                return out;
            }
        }
    }
    out.push(flags);
    out.extend_from_slice(body);
    out
}

/// Decode a v3 envelope, inflating a compressed body. Every malformed
/// shape — short header, reserved flag bits, a declared raw length
/// over [`MAX_FRAME_PAYLOAD`], torn compressed bytes — draws a typed
/// error before any oversized allocation can happen.
pub fn decode_stream_frame(payload: &[u8]) -> Result<StreamFrame, QueryError> {
    if payload.len() < STREAM_HEADER_LEN {
        return Err(QueryError::Malformed(
            "v3 frame shorter than its stream envelope header".into(),
        ));
    }
    let stream_id = u32::from_le_bytes(payload[..4].try_into().unwrap());
    let flags = payload[4];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(QueryError::Malformed(format!(
            "reserved stream envelope flag bits set: {flags:#04x}"
        )));
    }
    let raw = &payload[STREAM_HEADER_LEN..];
    let was_compressed = flags & STREAM_FLAG_COMPRESSED != 0;
    let body = if was_compressed {
        let declared = lz4_flex::declared_len(raw)
            .map_err(|e| QueryError::Malformed(format!("compressed stream body: {e}")))?;
        if declared > MAX_FRAME_PAYLOAD {
            return Err(QueryError::FrameTooLarge(declared));
        }
        lz4_flex::decompress_size_prepended(raw)
            .map_err(|e| QueryError::Malformed(format!("compressed stream body: {e}")))?
    } else {
        raw.to_vec()
    };
    Ok(StreamFrame {
        stream_id,
        accept_compressed: flags & STREAM_FLAG_ACCEPT_COMPRESSED != 0,
        was_compressed,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_raw_and_compressed() {
        let body = b"tiny".to_vec();
        let wire = encode_stream_frame(9, &body, true, Some(DEFAULT_COMPRESS_MIN_BYTES));
        let frame = decode_stream_frame(&wire).unwrap();
        assert_eq!(frame.stream_id, 9);
        assert!(frame.accept_compressed);
        assert!(!frame.was_compressed, "under the threshold ships raw");
        assert_eq!(frame.body, body);

        let big = b"row row row your batch ".repeat(600);
        let wire = encode_stream_frame(u32::MAX, &big, false, Some(DEFAULT_COMPRESS_MIN_BYTES));
        assert!(wire.len() < big.len() / 2, "repetitive body must shrink");
        let frame = decode_stream_frame(&wire).unwrap();
        assert!(frame.was_compressed);
        assert!(!frame.accept_compressed);
        assert_eq!(frame.stream_id, u32::MAX);
        assert_eq!(frame.body, big);
    }

    #[test]
    fn incompressible_bodies_ship_raw_even_past_the_threshold() {
        let mut noise = Vec::with_capacity(8192);
        let mut seed = 0x2545F4914F6CDD1Du64;
        while noise.len() < 8192 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            noise.extend_from_slice(&seed.to_le_bytes());
        }
        let wire = encode_stream_frame(1, &noise, false, Some(0));
        let frame = decode_stream_frame(&wire).unwrap();
        assert!(!frame.was_compressed);
        assert_eq!(frame.body, noise);
    }

    #[test]
    fn reserved_flags_and_short_headers_are_typed() {
        assert!(matches!(
            decode_stream_frame(&[1, 0, 0]),
            Err(QueryError::Malformed(_))
        ));
        let mut wire = encode_stream_frame(3, b"ok", false, None);
        wire[4] |= 0b1000_0000;
        assert!(matches!(
            decode_stream_frame(&wire),
            Err(QueryError::Malformed(_))
        ));
    }

    #[test]
    fn inflated_declared_length_is_capped_before_allocation() {
        let mut wire = vec![0, 0, 0, 0, STREAM_FLAG_COMPRESSED];
        wire.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decode_stream_frame(&wire),
            Err(QueryError::FrameTooLarge(n)) if n == MAX_FRAME_PAYLOAD + 1
        ));
    }

    #[test]
    fn torn_compressed_bodies_are_typed() {
        let big = b"abcdabcdabcd".repeat(1000);
        let wire = encode_stream_frame(5, &big, false, Some(0));
        let frame = decode_stream_frame(&wire).unwrap();
        assert!(frame.was_compressed);
        for cut in STREAM_HEADER_LEN..wire.len() {
            assert!(
                matches!(
                    decode_stream_frame(&wire[..cut]),
                    Err(QueryError::Malformed(_) | QueryError::FrameTooLarge(_))
                ),
                "cut at {cut} must be typed"
            );
        }
    }
}
