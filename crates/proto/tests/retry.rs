//! Connect-retry behavior: [`SirenClient::connect_with_retry`] replays
//! only the idempotent connect + hello exchange, under the policy's
//! capped backoff — transport tears are retried, typed refusals are
//! not, and exhaustion surfaces the last transport error.

use siren_proto::{
    decode_hello, encode_hello_ack, negotiate, read_frame, write_frame, ClientError, QueryError,
    QueryResponse, RetryPolicy, SirenClient, PROTOCOL_VERSION,
};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fast policy so the suite never sleeps long: 5 ms base, 20 ms cap.
fn quick_policy(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(20),
        jitter: true,
    }
}

#[test]
fn transport_tears_are_retried_until_the_handshake_lands() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Tear the first two connections before the hello completes; speak
    // a well-behaved handshake on the third.
    let server = std::thread::spawn(move || {
        let mut accepted = 0u32;
        loop {
            let (mut sock, _) = listener.accept().unwrap();
            accepted += 1;
            if accepted < 3 {
                drop(sock);
                continue;
            }
            let hello = read_frame(&mut sock).unwrap();
            let (min, max) = decode_hello(&hello).unwrap();
            let version = negotiate(min, max).unwrap();
            write_frame(&mut sock, &encode_hello_ack(version)).unwrap();
            return (accepted, sock);
        }
    });

    let client = SirenClient::connect_with_retry(addr, &quick_policy(5))
        .expect("the third attempt must land");
    assert_eq!(client.negotiated_version(), PROTOCOL_VERSION);
    let (accepted, _sock) = server.join().unwrap();
    assert_eq!(accepted, 3, "exactly two tears before the good handshake");
}

#[test]
fn typed_refusals_fail_immediately_without_retry() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accepted = Arc::new(AtomicU32::new(0));
    let count = Arc::clone(&accepted);
    // Answer every hello with a structured version refusal. The thread
    // parks in accept() after the first connection and dies with the
    // test process.
    std::thread::spawn(move || {
        while let Ok((mut sock, _)) = listener.accept() {
            count.fetch_add(1, Ordering::SeqCst);
            let _ = read_frame(&mut sock);
            let refusal = QueryResponse::Error(QueryError::UnsupportedVersion {
                server_min: 9,
                server_max: 9,
            });
            let _ = write_frame(&mut sock, &refusal.encode_versioned(1));
        }
    });

    match SirenClient::connect_with_retry(addr, &quick_policy(5)) {
        Err(ClientError::Server(QueryError::UnsupportedVersion { .. })) => {}
        other => panic!("expected the server's refusal verbatim, got {other:?}"),
    }
    // Retrying a deterministic refusal would only repeat it: one dial.
    assert_eq!(accepted.load(Ordering::SeqCst), 1);
}

#[test]
fn exhausted_retries_surface_the_transport_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accepted = Arc::new(AtomicU32::new(0));
    let count = Arc::clone(&accepted);
    // Tear every connection; the client must give up after the policy's
    // budget: the first attempt plus max_retries replays.
    std::thread::spawn(move || {
        while let Ok((sock, _)) = listener.accept() {
            count.fetch_add(1, Ordering::SeqCst);
            drop(sock);
        }
    });

    match SirenClient::connect_with_retry(addr, &quick_policy(2)) {
        Err(ClientError::Frame(_)) => {}
        other => panic!("expected a transport error after exhaustion, got {other:?}"),
    }
    assert_eq!(accepted.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
}
