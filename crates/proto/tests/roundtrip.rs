//! Protocol round-trip property tests: every request/response variant
//! must survive encode → decode exactly, and mutated/truncated payloads
//! must come back as typed errors — never a panic, never unbounded
//! allocation.
//!
//! The quick suite runs with the workspace tests; `--ignored` runs the
//! larger fuzz smoke the CI protocol gate invokes explicitly.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::{rng_for, TestRng};
use siren_analysis::LibraryUsageRow;
use siren_consolidate::{ProcessRecord, ScriptRecord};
use siren_db::Record;
use siren_proto::{
    decode_hello, decode_hello_ack, encode_hello, encode_hello_ack, negotiate, read_frame,
    write_frame, FrameError, NeighborRow, QueryError, QueryRequest, QueryResponse, RecordRow,
    Selection, StatusInfo, PROTOCOL_VERSION, PROTOCOL_VERSION_MIN,
};
use siren_wire::{Layer, MessageType};

// ---------------------------------------------------- generators --

fn arb_selection(rng: &mut TestRng) -> Selection {
    let mut sel = Selection::all();
    if rng.below(2) == 1 {
        sel = sel.epoch(rng.next_u64());
    }
    if rng.below(2) == 1 {
        sel = sel.host(format!("nid{:06}", rng.below(100_000)));
    }
    if rng.below(2) == 1 {
        let lo = rng.next_u64() >> 1;
        sel = sel.between(lo, lo + rng.below(1 << 20));
    }
    sel
}

fn arb_string(rng: &mut TestRng, max: usize) -> String {
    let strat = "\\PC{0,8}";
    let mut s = String::new();
    for _ in 0..rng.below(max.max(1) as u64) {
        s.push_str(&Strategy::generate(&strat, rng));
        if s.len() >= max {
            break;
        }
    }
    s.chars().take(max).collect()
}

fn arb_record(rng: &mut TestRng) -> ProcessRecord {
    let row = Record {
        job_id: rng.next_u64(),
        step_id: rng.next_u64() as u32,
        pid: rng.next_u64() as u32,
        exe_hash: format!("{:016x}", rng.next_u64()),
        host: format!("nid{:06}", rng.below(1000)),
        time: rng.next_u64(),
        layer: if rng.below(2) == 0 {
            Layer::SelfExe
        } else {
            Layer::Script
        },
        mtype: MessageType::Meta,
        content: String::new(),
    };
    let mut rec = ProcessRecord::new(&row);
    if rng.below(2) == 1 {
        rec.meta
            .insert("path".into(), format!("/usr/bin/{}", arb_string(rng, 12)));
    }
    if rng.below(2) == 1 {
        rec.objects = Some(
            (0..rng.below(4))
                .map(|i| format!("/lib64/lib{i}-{}.so", arb_string(rng, 6)))
                .collect(),
        );
    }
    if rng.below(2) == 1 {
        rec.file_hash = Some(format!("3:{}:{}", arb_string(rng, 8), arb_string(rng, 8)));
    }
    if rng.below(3) == 0 {
        rec.script = Some(ScriptRecord {
            path: Some(format!("/u/{}.py", arb_string(rng, 6))),
            meta: std::collections::HashMap::new(),
            script_hash: None,
        });
    }
    rec
}

fn arb_request(rng: &mut TestRng) -> QueryRequest {
    match rng.below(4) {
        0 => QueryRequest::Status,
        1 => QueryRequest::ByJob {
            job_id: rng.next_u64(),
        },
        2 => QueryRequest::LibraryUsage {
            selection: arb_selection(rng),
        },
        _ => QueryRequest::Neighbors {
            hash: format!("6:{}:{}", arb_string(rng, 16), arb_string(rng, 16)),
            k: rng.next_u64() as u32,
            min_score: rng.below(101) as u32,
        },
    }
}

fn arb_error(rng: &mut TestRng) -> QueryError {
    match rng.below(6) {
        0 => QueryError::Malformed(arb_string(rng, 24)),
        1 => QueryError::UnsupportedVersion {
            server_min: rng.next_u64() as u16,
            server_max: rng.next_u64() as u16,
        },
        2 => QueryError::UnknownRequest(rng.next_u64() as u8),
        3 => QueryError::FrameTooLarge(rng.next_u64() as u32),
        4 => QueryError::Deadline,
        _ => QueryError::Internal(arb_string(rng, 24)),
    }
}

fn arb_response(rng: &mut TestRng) -> QueryResponse {
    match rng.below(5) {
        0 => QueryResponse::Status(StatusInfo {
            protocol_version: rng.next_u64() as u16,
            committed_epochs: (0..rng.below(6)).collect(),
            records: rng.next_u64(),
            open_epoch: (rng.below(2) == 1).then(|| rng.next_u64()),
            epoch_tag_mismatches: rng.next_u64(),
            quiet_period_fallbacks: rng.next_u64(),
        }),
        1 => QueryResponse::Rows(
            (0..rng.below(4))
                .map(|_| RecordRow {
                    epoch: rng.next_u64(),
                    record: arb_record(rng),
                })
                .collect(),
        ),
        2 => QueryResponse::LibraryUsage(
            (0..rng.below(5))
                .map(|_| LibraryUsageRow {
                    library: format!("/lib64/{}.so", arb_string(rng, 10)),
                    processes: rng.next_u64(),
                    hosts: rng.next_u64(),
                })
                .collect(),
        ),
        3 => QueryResponse::Neighbors(
            (0..rng.below(4))
                .map(|_| NeighborRow {
                    score: rng.below(101) as u32,
                    epoch: rng.next_u64(),
                    record: arb_record(rng),
                })
                .collect(),
        ),
        _ => QueryResponse::Error(arb_error(rng)),
    }
}

// ------------------------------------------------------- helpers --

fn assert_request_round_trip(req: &QueryRequest) {
    let encoded = req.encode();
    assert_eq!(QueryRequest::decode(&encoded).as_ref(), Ok(req));
    // Truncations must fail typed, and trailing junk must be rejected.
    for cut in 0..encoded.len() {
        assert!(QueryRequest::decode(&encoded[..cut]).is_err(), "cut {cut}");
    }
    let mut extra = encoded.clone();
    extra.push(0);
    assert!(QueryRequest::decode(&extra).is_err());
}

fn assert_response_round_trip(resp: &QueryResponse) {
    let encoded = resp.encode();
    assert_eq!(QueryResponse::decode(&encoded).as_ref(), Ok(resp));
    for cut in 0..encoded.len() {
        let _ = QueryResponse::decode(&encoded[..cut]); // must not panic
    }
    let mut extra = encoded.clone();
    extra.push(0);
    // Trailing junk: either rejected, or (for the empty-tail case of a
    // string-final variant) decodes to something ≠ the original is not
    // acceptable — so require rejection unless equality held.
    if let Ok(decoded) = QueryResponse::decode(&extra) {
        assert_eq!(&decoded, resp, "trailing junk changed the decode");
    }
}

fn run_cases(cases: u32, name: &str) {
    let mut rng = rng_for(name);
    for _ in 0..cases {
        assert_request_round_trip(&arb_request(&mut rng));
        assert_response_round_trip(&arb_response(&mut rng));
        // Framed transport round-trip (in-memory "socket").
        let resp = arb_response(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp.encode()).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(QueryResponse::decode(&payload), Ok(resp));
        // Random single-byte corruption never panics and never yields a
        // frame that silently decodes to a *different* valid payload of
        // the same length (checksum catches it).
        if !wire.is_empty() {
            let mut mutated = wire.clone();
            let at = rng.below(mutated.len() as u64) as usize;
            let bit = 1u8 << rng.below(8);
            mutated[at] ^= bit;
            if let Ok(payload2) = read_frame(&mut mutated.as_slice()) {
                // A flip that somehow leaves the frame readable must not
                // have changed the payload the checksum vouches for.
                assert_eq!(payload2, payload);
            }
        }
    }
}

// --------------------------------------------------------- tests --

#[test]
fn request_and_response_round_trip_quick() {
    run_cases(64, "request_and_response_round_trip_quick");
}

/// The CI protocol fuzz smoke: `cargo test -p siren-proto -- --ignored`.
#[test]
#[ignore = "larger fuzz smoke, run explicitly by the CI protocol gate"]
fn request_and_response_round_trip_fuzz_smoke() {
    run_cases(2000, "request_and_response_round_trip_fuzz_smoke");
}

#[test]
fn hello_negotiation_round_trips_and_rejects() {
    let hello = encode_hello(PROTOCOL_VERSION_MIN, PROTOCOL_VERSION);
    assert_eq!(
        decode_hello(&hello),
        Some((PROTOCOL_VERSION_MIN, PROTOCOL_VERSION))
    );
    let ack = encode_hello_ack(PROTOCOL_VERSION);
    assert_eq!(decode_hello_ack(&ack), Some(PROTOCOL_VERSION));

    // Corrupt magic / lengths are rejected.
    assert_eq!(decode_hello(b"XXXX\x01\x00\x01\x00"), None);
    assert_eq!(decode_hello(&hello[..7]), None);
    assert_eq!(decode_hello_ack(&ack[..5]), None);

    // Overlapping ranges negotiate to the shared maximum…
    assert_eq!(negotiate(1, u16::MAX), Ok(PROTOCOL_VERSION));
    assert_eq!(
        negotiate(PROTOCOL_VERSION, PROTOCOL_VERSION),
        Ok(PROTOCOL_VERSION)
    );
    // …a future-only client is refused with the server's range.
    assert_eq!(
        negotiate(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 5),
        Err(QueryError::UnsupportedVersion {
            server_min: PROTOCOL_VERSION_MIN,
            server_max: PROTOCOL_VERSION,
        })
    );
}

proptest! {
    /// Selections round-trip through a LibraryUsage request unchanged.
    #[test]
    fn selection_round_trips(epoch in any::<u64>(), host in "[a-z0-9]{1,12}", lo in any::<u64>(), span in 0u64..1_000_000) {
        let lo = lo >> 1;
        let selection = Selection::all().epoch(epoch).host(host.as_str()).between(lo, lo + span);
        prop_assert_eq!(selection.epoch_filter(), Some(epoch));
        prop_assert_eq!(selection.host_filter(), Some(host.as_str()));
        prop_assert_eq!(selection.time_range(), Some((lo, lo + span)));
        let req = QueryRequest::LibraryUsage { selection: selection.clone() };
        prop_assert_eq!(QueryRequest::decode(&req.encode()), Ok(req));
    }
}

#[test]
fn oversized_frame_is_refused_without_allocation() {
    // A length prefix of 2^31 must be refused before any buffer of that
    // size exists; this test would OOM-kill the suite otherwise.
    let mut wire = vec![0xD8u8];
    wire.extend_from_slice(&(1u32 << 31).to_le_bytes());
    wire.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        read_frame(&mut wire.as_slice()),
        Err(FrameError::TooLarge(_))
    ));
}
