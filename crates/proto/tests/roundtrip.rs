//! Protocol round-trip property tests: every request/response variant
//! must survive encode → decode exactly under **both** negotiated
//! versions, and mutated/truncated payloads must come back as typed
//! errors — never a panic, never unbounded allocation. The v2 stream
//! shapes (plan requests, batch frames, end-or-cursor frames) are
//! fuzzed alongside the v1 set, including truncation at every byte of
//! a multi-frame reply.
//!
//! The quick suite runs with the workspace tests; `--ignored` runs the
//! larger fuzz smoke the CI protocol gate invokes explicitly.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::{rng_for, TestRng};
use siren_analysis::{LibraryUsageRow, UsageRow};
use siren_consolidate::{ProcessRecord, ScriptRecord};
use siren_db::Record;
use siren_proto::{
    decode_hello, decode_hello_ack, decode_stream_frame, encode_hello, encode_hello_ack,
    encode_stream_frame, fold_epoch_checksum, negotiate, read_frame, write_frame, EpochBatch,
    FrameError, NeighborRow, Order, PlanSource, Projection, QueryError, QueryPlan, QueryRequest,
    QueryResponse, QueryWarning, RecordRow, RowBatch, Selection, SpanId, SpanRecord, StatusInfo,
    TraceFilter, TraceId, TraceTree, DEFAULT_COMPRESS_MIN_BYTES, PROTOCOL_VERSION,
    PROTOCOL_VERSION_MIN, STREAM_HEADER_LEN,
};
use siren_wire::{Layer, MessageType};

// ---------------------------------------------------- generators --

fn arb_selection(rng: &mut TestRng, version: u16) -> Selection {
    let mut sel = Selection::all();
    if rng.below(2) == 1 {
        sel = sel.epoch(rng.next_u64());
    }
    if rng.below(2) == 1 {
        sel = sel.host(format!("nid{:06}", rng.below(100_000)));
    }
    if rng.below(2) == 1 {
        let lo = rng.next_u64() >> 1;
        sel = sel.between(lo, lo + rng.below(1 << 20));
    }
    if version >= 2 {
        if rng.below(2) == 1 {
            sel = sel.job(rng.next_u64());
        }
        if rng.below(2) == 1 {
            let lo = rng.below(1 << 20);
            sel = sel.epochs(lo, lo + rng.below(64));
        }
    }
    sel
}

fn arb_plan(rng: &mut TestRng) -> QueryPlan {
    let mut plan = match rng.below(3) {
        0 => QueryPlan::records(),
        1 => QueryPlan::usage_table(),
        _ => QueryPlan::neighbors(
            format!("6:{}:{}", arb_string(rng, 12), arb_string(rng, 12)),
            rng.below(101) as u32,
        ),
    };
    plan = plan.filter(arb_selection(rng, 2));
    if rng.below(2) == 1 {
        plan = plan.project(Projection::Keys);
    }
    if plan.source == PlanSource::Records {
        plan = plan.order_by(match rng.below(3) {
            0 => Order::Commit,
            1 => Order::TimeAsc,
            _ => Order::TimeDesc,
        });
    }
    if rng.below(2) == 1 {
        plan = plan.limit(rng.below(1 << 20));
    }
    plan.batch_rows(rng.next_u64() as u32)
        .page_rows(rng.next_u64() as u32)
}

fn arb_batch(rng: &mut TestRng) -> RowBatch {
    match rng.below(3) {
        0 => RowBatch::Records(
            (0..rng.below(4))
                .map(|_| RecordRow {
                    epoch: rng.next_u64(),
                    record: arb_record(rng),
                })
                .collect(),
        ),
        1 => RowBatch::Usage(
            (0..rng.below(5))
                .map(|_| UsageRow {
                    user: format!("user_{}", rng.below(1000)),
                    jobs: rng.next_u64(),
                    system_procs: rng.next_u64(),
                    user_procs: rng.next_u64(),
                    python_procs: rng.next_u64(),
                })
                .collect(),
        ),
        _ => RowBatch::Neighbors(
            (0..rng.below(4))
                .map(|_| NeighborRow {
                    score: rng.below(101) as u32,
                    epoch: rng.next_u64(),
                    record: arb_record(rng),
                })
                .collect(),
        ),
    }
}

fn arb_string(rng: &mut TestRng, max: usize) -> String {
    let strat = "\\PC{0,8}";
    let mut s = String::new();
    for _ in 0..rng.below(max.max(1) as u64) {
        s.push_str(&Strategy::generate(&strat, rng));
        if s.len() >= max {
            break;
        }
    }
    s.chars().take(max).collect()
}

fn arb_record(rng: &mut TestRng) -> ProcessRecord {
    let row = Record {
        job_id: rng.next_u64(),
        step_id: rng.next_u64() as u32,
        pid: rng.next_u64() as u32,
        exe_hash: format!("{:016x}", rng.next_u64()),
        host: format!("nid{:06}", rng.below(1000)),
        time: rng.next_u64(),
        layer: if rng.below(2) == 0 {
            Layer::SelfExe
        } else {
            Layer::Script
        },
        mtype: MessageType::Meta,
        content: String::new(),
    };
    let mut rec = ProcessRecord::new(&row);
    if rng.below(2) == 1 {
        rec.meta
            .insert("path".into(), format!("/usr/bin/{}", arb_string(rng, 12)));
    }
    if rng.below(2) == 1 {
        rec.objects = Some(
            (0..rng.below(4))
                .map(|i| format!("/lib64/lib{i}-{}.so", arb_string(rng, 6)))
                .collect(),
        );
    }
    if rng.below(2) == 1 {
        rec.file_hash = Some(format!("3:{}:{}", arb_string(rng, 8), arb_string(rng, 8)));
    }
    if rng.below(3) == 0 {
        rec.script = Some(ScriptRecord {
            path: Some(format!("/u/{}.py", arb_string(rng, 6))),
            meta: std::collections::HashMap::new(),
            script_hash: None,
        });
    }
    rec
}

fn arb_request(rng: &mut TestRng, version: u16) -> QueryRequest {
    let kinds = match version {
        v if v >= 3 => 10,
        2 => 9,
        _ => 4,
    };
    match rng.below(kinds) {
        0 => QueryRequest::Status,
        1 => QueryRequest::ByJob {
            job_id: rng.next_u64(),
        },
        2 => QueryRequest::LibraryUsage {
            selection: arb_selection(rng, version),
        },
        3 => QueryRequest::Neighbors {
            hash: format!("6:{}:{}", arb_string(rng, 16), arb_string(rng, 16)),
            k: rng.next_u64() as u32,
            min_score: rng.below(101) as u32,
        },
        4 => QueryRequest::Plan(arb_plan(rng)),
        5 => QueryRequest::FetchCursor {
            cursor: rng.next_u64(),
        },
        6 => QueryRequest::CloseCursor {
            cursor: rng.next_u64(),
        },
        7 => QueryRequest::Metrics,
        8 => QueryRequest::Traces(arb_trace_filter(rng)),
        _ => QueryRequest::SubscribeEpochs {
            from_epoch: rng.next_u64(),
            batch_rows: rng.next_u64() as u32,
        },
    }
}

/// Ids on the wire are never zero (zero encodes "absent").
fn arb_trace_id(rng: &mut TestRng) -> TraceId {
    TraceId(rng.next_u64() | 1)
}

fn arb_trace_filter(rng: &mut TestRng) -> TraceFilter {
    TraceFilter {
        trace: (rng.below(2) == 1).then(|| arb_trace_id(rng)),
        fingerprint: (rng.below(2) == 1).then(|| rng.next_u64()),
        min_duration_ns: (rng.below(2) == 1).then(|| rng.next_u64()),
        stage: (rng.below(2) == 1).then(|| arb_string(rng, 16)),
        limit: rng.next_u64() as u32,
    }
}

fn arb_traces(rng: &mut TestRng) -> Vec<TraceTree> {
    (0..rng.below(3))
        .map(|_| {
            let trace = arb_trace_id(rng);
            let spans = (0..rng.below(4))
                .map(|_| SpanRecord {
                    trace,
                    id: SpanId(rng.next_u64() | 1),
                    parent: (rng.below(2) == 1).then(|| SpanId(rng.next_u64() | 1)),
                    stage: arb_string(rng, 16),
                    start_ns: rng.next_u64(),
                    duration_ns: rng.next_u64(),
                    annotations: (0..rng.below(3))
                        .map(|_| (arb_string(rng, 8), arb_string(rng, 16)))
                        .collect(),
                })
                .collect();
            TraceTree { trace, spans }
        })
        .collect()
}

/// A well-formed random metrics snapshot, built through a real
/// [`Registry`](siren_obs::Registry) so the invariants the decoder
/// relies on (sorted names, sparse ascending histogram buckets)
/// always hold — exactly as a server would produce it.
fn arb_metrics(rng: &mut TestRng) -> siren_obs::MetricsSnapshot {
    let registry = siren_obs::Registry::new();
    for _ in 0..rng.below(5) {
        registry
            .counter(&format!("fuzz.counter_{}", rng.below(8)))
            .add(rng.next_u64() >> 1);
    }
    for _ in 0..rng.below(3) {
        let g = registry.gauge(&format!("fuzz.gauge_{}", rng.below(4)));
        g.set(rng.next_u64() as i64 >> 8);
        g.add(-((rng.below(1 << 16)) as i64));
    }
    for _ in 0..rng.below(3) {
        let h = registry.histogram(&format!("fuzz.hist_{}", rng.below(4)));
        for _ in 0..rng.below(40) {
            h.record(rng.next_u64() >> rng.below(60));
        }
    }
    for _ in 0..rng.below(4) {
        registry.slow_queries().push(siren_obs::SlowQueryEntry {
            fingerprint: rng.next_u64(),
            shape: arb_string(rng, 24),
            rows: rng.next_u64(),
            total_ns: rng.next_u64(),
            trace_id: rng.next_u64(),
        });
    }
    registry.snapshot()
}

fn arb_error(rng: &mut TestRng, version: u16) -> QueryError {
    let kinds = if version >= 2 { 8 } else { 6 };
    match rng.below(kinds) {
        0 => QueryError::Malformed(arb_string(rng, 24)),
        1 => QueryError::UnsupportedVersion {
            server_min: rng.next_u64() as u16,
            server_max: rng.next_u64() as u16,
        },
        2 => QueryError::UnknownRequest(rng.next_u64() as u8),
        3 => QueryError::FrameTooLarge(rng.next_u64() as u32),
        4 => QueryError::Deadline,
        5 => QueryError::Internal(arb_string(rng, 24)),
        6 => QueryError::InvalidPlan(arb_string(rng, 24)),
        _ => QueryError::UnknownCursor(rng.next_u64()),
    }
}

fn arb_status(rng: &mut TestRng, version: u16) -> StatusInfo {
    let mut status = StatusInfo {
        protocol_version: rng.next_u64() as u16,
        committed_epochs: (0..rng.below(6)).collect(),
        records: rng.next_u64(),
        open_epoch: (rng.below(2) == 1).then(|| rng.next_u64()),
        epoch_tag_mismatches: rng.next_u64(),
        quiet_period_fallbacks: rng.next_u64(),
        ..StatusInfo::default()
    };
    // The v2 counters never travel on a v1 connection, so a v1
    // round-trip can only be exact when they are at their defaults.
    if version >= 2 {
        status.queries_refused = rng.next_u64();
        status.open_cursors = rng.next_u64();
        status.version_connections = (1..=rng.below(3) as u16)
            .map(|v| (v, rng.next_u64()))
            .collect();
    }
    // The v3 replication fields travel only on v3 connections.
    if version >= 3 {
        status.repl_high_water = rng.next_u64();
        status.repl_lag_epochs = rng.next_u64();
        status.repl_lag_bytes = rng.next_u64();
        status.repl_reconnects = rng.next_u64();
    }
    status
}

fn arb_epoch_batch(rng: &mut TestRng) -> EpochBatch {
    EpochBatch {
        epoch: rng.next_u64(),
        records: (0..rng.below(4)).map(|_| arb_record(rng)).collect(),
    }
}

fn arb_response(rng: &mut TestRng, version: u16) -> QueryResponse {
    let kinds = match version {
        v if v >= 3 => 13,
        2 => 10,
        _ => 5,
    };
    match rng.below(kinds) {
        0 => QueryResponse::Status(arb_status(rng, version)),
        1 => QueryResponse::Rows(
            (0..rng.below(4))
                .map(|_| RecordRow {
                    epoch: rng.next_u64(),
                    record: arb_record(rng),
                })
                .collect(),
        ),
        2 => QueryResponse::LibraryUsage(
            (0..rng.below(5))
                .map(|_| LibraryUsageRow {
                    library: format!("/lib64/{}.so", arb_string(rng, 10)),
                    processes: rng.next_u64(),
                    hosts: rng.next_u64(),
                })
                .collect(),
        ),
        3 => QueryResponse::Neighbors(
            (0..rng.below(4))
                .map(|_| NeighborRow {
                    score: rng.below(101) as u32,
                    epoch: rng.next_u64(),
                    record: arb_record(rng),
                })
                .collect(),
        ),
        4 => QueryResponse::Error(arb_error(rng, version)),
        5 => QueryResponse::Batch(arb_batch(rng)),
        6 => QueryResponse::StreamEnd {
            cursor: (rng.below(2) == 1).then(|| rng.next_u64()),
        },
        7 => QueryResponse::Metrics(arb_metrics(rng)),
        8 => QueryResponse::Traces(arb_traces(rng)),
        9 => QueryResponse::Warning(QueryWarning {
            missing: (0..rng.below(4)).map(|_| arb_string(rng, 12)).collect(),
            detail: arb_string(rng, 24),
        }),
        10 => QueryResponse::EpochBatch(arb_epoch_batch(rng)),
        11 => QueryResponse::EpochCommit {
            epoch: rng.next_u64(),
            records: rng.next_u64(),
            checksum: rng.next_u64(),
        },
        _ => QueryResponse::SubscribeEnd {
            next_from: rng.next_u64(),
            leader_bytes: rng.next_u64(),
        },
    }
}

// ------------------------------------------------------- helpers --

fn assert_request_round_trip(req: &QueryRequest, version: u16) {
    let encoded = req.encode_versioned(version);
    assert_eq!(
        QueryRequest::decode_versioned(&encoded, version).as_ref(),
        Ok(req)
    );
    // Truncations must fail typed, and trailing junk must be rejected.
    for cut in 0..encoded.len() {
        assert!(
            QueryRequest::decode_versioned(&encoded[..cut], version).is_err(),
            "cut {cut}"
        );
    }
    let mut extra = encoded.clone();
    extra.push(0);
    assert!(QueryRequest::decode_versioned(&extra, version).is_err());
}

/// v2+ request frames carry a trailing trace-context id (0 = absent):
/// the pair must round-trip exactly, truncation at every byte must be a
/// typed error, and trailing junk must be rejected.
fn assert_traced_round_trip(req: &QueryRequest, trace: Option<TraceId>, version: u16) {
    let encoded = req.encode_traced(version, trace);
    match QueryRequest::decode_traced(&encoded, version) {
        Ok((decoded, decoded_trace)) => {
            assert_eq!(&decoded, req);
            assert_eq!(decoded_trace, trace);
        }
        Err(err) => panic!("traced frame failed to decode: {err}"),
    }
    for cut in 0..encoded.len() {
        assert!(
            QueryRequest::decode_traced(&encoded[..cut], version).is_err(),
            "cut {cut}"
        );
    }
    let mut extra = encoded.clone();
    extra.push(0);
    assert!(QueryRequest::decode_traced(&extra, version).is_err());
}

fn assert_response_round_trip(resp: &QueryResponse, version: u16) {
    let encoded = resp.encode_versioned(version);
    assert_eq!(
        QueryResponse::decode_versioned(&encoded, version).as_ref(),
        Ok(resp)
    );
    for cut in 0..encoded.len() {
        // Must not panic at any negotiated version.
        for probe in [1u16, 2, 3] {
            let _ = QueryResponse::decode_versioned(&encoded[..cut], probe);
        }
    }
    let mut extra = encoded.clone();
    extra.push(0);
    // Trailing junk: either rejected, or (for the empty-tail case of a
    // string-final variant) decodes to something ≠ the original is not
    // acceptable — so require rejection unless equality held.
    if let Ok(decoded) = QueryResponse::decode_versioned(&extra, version) {
        assert_eq!(&decoded, resp, "trailing junk changed the decode");
    }
}

fn run_cases(cases: u32, name: &str) {
    let mut rng = rng_for(name);
    for case in 0..cases {
        // Rotate negotiated versions so all three codecs stay fuzzed.
        let version = 1 + (case % 3) as u16;
        let request = arb_request(&mut rng, version);
        assert_request_round_trip(&request, version);
        if version >= 2 {
            // The same request with and without a propagated trace id.
            let trace = (rng.below(2) == 1).then(|| arb_trace_id(&mut rng));
            assert_traced_round_trip(&request, trace, version);
        }
        assert_response_round_trip(&arb_response(&mut rng, version), version);
        // Framed transport round-trip (in-memory "socket").
        let resp = arb_response(&mut rng, version);
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp.encode_versioned(version)).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(QueryResponse::decode_versioned(&payload, version), Ok(resp));
        // Random single-byte corruption never panics and never yields a
        // frame that silently decodes to a *different* valid payload of
        // the same length (checksum catches it).
        if !wire.is_empty() {
            let mut mutated = wire.clone();
            let at = rng.below(mutated.len() as u64) as usize;
            let bit = 1u8 << rng.below(8);
            mutated[at] ^= bit;
            if let Ok(payload2) = read_frame(&mut mutated.as_slice()) {
                // A flip that somehow leaves the frame readable must not
                // have changed the payload the checksum vouches for.
                assert_eq!(payload2, payload);
            }
        }
        // The v3 stream envelope wraps the v2 encoding verbatim: any
        // stream id and flag combination must round-trip the body
        // exactly, compressed or raw, and the raw envelope tail must
        // BE the v2 bytes (v3 is strictly additive).
        {
            let resp = arb_response(&mut rng, 2);
            let body = resp.encode_versioned(2);
            let id = rng.next_u64() as u32;
            let accept = rng.below(2) == 1;
            let compress = match rng.below(3) {
                0 => None,
                1 => Some(0),
                _ => Some(DEFAULT_COMPRESS_MIN_BYTES),
            };
            let wire = encode_stream_frame(id, &body, accept, compress);
            if compress.is_none() {
                assert_eq!(&wire[STREAM_HEADER_LEN..], &body[..]);
            }
            let frame = decode_stream_frame(&wire).expect("envelope must decode");
            assert_eq!(frame.stream_id, id);
            assert_eq!(frame.accept_compressed, accept);
            assert_eq!(frame.body, body);
            assert_eq!(
                QueryResponse::decode_versioned(&frame.body, 2).as_ref(),
                Ok(&resp)
            );
            // Truncation at every byte: under the header it is a typed
            // envelope error; past it, either a typed error (torn
            // compressed body) or a short raw body handed to the inner
            // decoder, which must not panic (the frame checksum is
            // what rules out torn payloads on a real wire).
            for cut in 0..wire.len() {
                match decode_stream_frame(&wire[..cut]) {
                    Err(QueryError::Malformed(_) | QueryError::FrameTooLarge(_)) => {}
                    Err(other) => panic!("cut {cut}: unexpected error {other}"),
                    Ok(short) => {
                        assert!(cut >= STREAM_HEADER_LEN, "header cut {cut} must not decode");
                        let _ = QueryResponse::decode_versioned(&short.body, 2);
                    }
                }
            }
        }
        // A v2 reply stream (batch, batch, end-with-cursor) truncated
        // at any byte must surface a typed frame error at the cut,
        // never a panic, and the frames before the cut must decode
        // exactly.
        if case % 8 == 0 {
            let frames = [
                QueryResponse::Batch(arb_batch(&mut rng)),
                QueryResponse::Batch(arb_batch(&mut rng)),
                QueryResponse::StreamEnd {
                    cursor: Some(rng.next_u64()),
                },
            ];
            let mut wire = Vec::new();
            for frame in &frames {
                write_frame(&mut wire, &frame.encode_versioned(2)).unwrap();
            }
            let cut = rng.below(wire.len() as u64 + 1) as usize;
            let mut r = &wire[..cut];
            let mut decoded = 0usize;
            loop {
                match read_frame(&mut r) {
                    Ok(payload) => {
                        assert_eq!(
                            QueryResponse::decode_versioned(&payload, 2).as_ref(),
                            Ok(&frames[decoded]),
                            "frame {decoded} before the cut must decode exactly"
                        );
                        decoded += 1;
                    }
                    Err(FrameError::Closed) => break, // cut at a boundary
                    Err(FrameError::Truncated) => break, // cut mid-frame
                    Err(other) => panic!("unexpected frame error at cut {cut}: {other}"),
                }
            }
            assert!(decoded <= frames.len());
        }
    }
}

// --------------------------------------------------------- tests --

#[test]
fn request_and_response_round_trip_quick() {
    run_cases(64, "request_and_response_round_trip_quick");
}

/// The CI protocol fuzz smoke: `cargo test -p siren-proto -- --ignored`.
#[test]
#[ignore = "larger fuzz smoke, run explicitly by the CI protocol gate"]
fn request_and_response_round_trip_fuzz_smoke() {
    run_cases(2000, "request_and_response_round_trip_fuzz_smoke");
}

#[test]
fn hello_negotiation_round_trips_and_rejects() {
    let hello = encode_hello(PROTOCOL_VERSION_MIN, PROTOCOL_VERSION);
    assert_eq!(
        decode_hello(&hello),
        Some((PROTOCOL_VERSION_MIN, PROTOCOL_VERSION))
    );
    let ack = encode_hello_ack(PROTOCOL_VERSION);
    assert_eq!(decode_hello_ack(&ack), Some(PROTOCOL_VERSION));

    // Corrupt magic / lengths are rejected.
    assert_eq!(decode_hello(b"XXXX\x01\x00\x01\x00"), None);
    assert_eq!(decode_hello(&hello[..7]), None);
    assert_eq!(decode_hello_ack(&ack[..5]), None);

    // Overlapping ranges negotiate to the shared maximum…
    assert_eq!(negotiate(1, u16::MAX), Ok(PROTOCOL_VERSION));
    assert_eq!(
        negotiate(PROTOCOL_VERSION, PROTOCOL_VERSION),
        Ok(PROTOCOL_VERSION)
    );
    // …a future-only client is refused with the server's range.
    assert_eq!(
        negotiate(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 5),
        Err(QueryError::UnsupportedVersion {
            server_min: PROTOCOL_VERSION_MIN,
            server_max: PROTOCOL_VERSION,
        })
    );
}

proptest! {
    /// Selections round-trip through a LibraryUsage request unchanged.
    #[test]
    fn selection_round_trips(epoch in any::<u64>(), host in "[a-z0-9]{1,12}", lo in any::<u64>(), span in 0u64..1_000_000) {
        let lo = lo >> 1;
        let selection = Selection::all().epoch(epoch).host(host.as_str()).between(lo, lo + span);
        prop_assert_eq!(selection.epoch_filter(), Some(epoch));
        prop_assert_eq!(selection.host_filter(), Some(host.as_str()));
        prop_assert_eq!(selection.time_range(), Some((lo, lo + span)));
        let req = QueryRequest::LibraryUsage { selection: selection.clone() };
        prop_assert_eq!(QueryRequest::decode(&req.encode()), Ok(req));
    }
}

#[test]
fn between_bounds_are_inclusive_and_inverted_ranges_are_typed_errors() {
    let mut rng = rng_for("between_bounds_are_inclusive");
    let rec = arb_record(&mut rng);
    let t = rec.key.time;

    // Inclusive on both ends: the exact bounds match…
    assert!(Selection::all().between(t, t).matches(0, &rec));
    if t > 0 {
        assert!(Selection::all().between(t - 1, t).matches(0, &rec));
        // …and one past the end does not.
        assert!(!Selection::all().between(0, t - 1).matches(0, &rec));
    }
    if t < u64::MAX {
        assert!(Selection::all().between(t, t + 1).matches(0, &rec));
        assert!(!Selection::all().between(t + 1, u64::MAX).matches(0, &rec));
    }

    // Valid ranges (and the empty selection) validate.
    assert_eq!(Selection::all().validate(), Ok(()));
    assert_eq!(Selection::all().between(3, 3).validate(), Ok(()));
    assert_eq!(Selection::all().epochs(0, 5).validate(), Ok(()));

    // Inverted ranges draw the typed error instead of silently
    // matching nothing.
    assert!(matches!(
        Selection::all().between(5, 3).validate(),
        Err(QueryError::InvalidPlan(_))
    ));
    assert!(matches!(
        Selection::all().epochs(9, 2).validate(),
        Err(QueryError::InvalidPlan(_))
    ));
    // Plan validation folds the selection check in.
    assert!(matches!(
        QueryPlan::records()
            .filter(Selection::all().between(5, 3))
            .validate(),
        Err(QueryError::InvalidPlan(_))
    ));
    // Ordering an aggregation is refused up front.
    assert!(matches!(
        QueryPlan::usage_table().order_by(Order::TimeAsc).validate(),
        Err(QueryError::InvalidPlan(_))
    ));
    // Epoch-slice selections match on the epoch, not the record.
    let sel = Selection::all().epochs(2, 4);
    assert!(sel.matches(3, &rec) && sel.matches(2, &rec) && sel.matches(4, &rec));
    assert!(!sel.matches(1, &rec) && !sel.matches(5, &rec));
}

#[test]
fn v1_encoding_is_byte_stable_and_v2_tags_are_unknown_to_v1() {
    // The v1 encoding of a v1-expressible request must not change: a
    // pinned byte layout is what "a v1 client still works unchanged"
    // means on the wire.
    let req = QueryRequest::LibraryUsage {
        selection: Selection::all().epoch(7).host("nid000001").between(10, 20),
    };
    let v1 = req.encode_versioned(1);
    let expected: Vec<u8> = {
        let mut out = vec![2u8]; // REQ_LIBRARY_USAGE
        out.push(1);
        out.extend_from_slice(&7u64.to_le_bytes());
        out.push(1);
        out.extend_from_slice(&9u32.to_le_bytes());
        out.extend_from_slice(b"nid000001");
        out.push(1);
        out.extend_from_slice(&10u64.to_le_bytes());
        out.extend_from_slice(&20u64.to_le_bytes());
        out
    };
    assert_eq!(v1, expected, "v1 LibraryUsage byte layout drifted");
    assert_eq!(QueryRequest::decode_versioned(&v1, 1), Ok(req));

    // v2-only request tags on a v1 connection: UnknownRequest, exactly
    // as a v1-only server build would answer (connection survives).
    let plan = QueryRequest::Plan(QueryPlan::records()).encode_versioned(2);
    assert!(matches!(
        QueryRequest::decode_versioned(&plan, 1),
        Err(QueryError::UnknownRequest(4))
    ));

    // And a v2-only *selection* cannot be smuggled into a v1 frame:
    // the v1 decoder rejects the extra bytes.
    let v2_sel = QueryRequest::LibraryUsage {
        selection: Selection::all().job(42),
    }
    .encode_versioned(2);
    assert!(QueryRequest::decode_versioned(&v2_sel, 1).is_err());

    // Status answers carry the v2 counters only on v2 connections.
    let status = StatusInfo {
        protocol_version: 2,
        queries_refused: 3,
        open_cursors: 1,
        version_connections: vec![(1, 4), (2, 9)],
        ..StatusInfo::default()
    };
    let resp = QueryResponse::Status(status.clone());
    let on_v2 = QueryResponse::decode_versioned(&resp.encode_versioned(2), 2).unwrap();
    assert_eq!(on_v2, resp);
    let on_v1 = QueryResponse::decode_versioned(&resp.encode_versioned(1), 1).unwrap();
    match on_v1 {
        QueryResponse::Status(s) => {
            assert_eq!(s.queries_refused, 0);
            assert_eq!(s.open_cursors, 0);
            assert!(s.version_connections.is_empty());
        }
        other => panic!("expected Status, got {other:?}"),
    }
}

/// Three reply streams' frames interleaved on one wire — as a v3
/// server multiplexes them — must reassemble into each stream's exact
/// original sequence when routed by stream id, with compression
/// applied per-frame and transparently undone.
#[test]
fn interleaved_stream_frames_reassemble_exactly() {
    let mut rng = rng_for("interleaved_stream_frames_reassemble_exactly");
    for _ in 0..16 {
        // Per-stream reply sequences: batches then a terminator.
        let ids = [rng.next_u64() as u32 | 1, 7, u32::MAX];
        let sequences: Vec<Vec<QueryResponse>> = ids
            .iter()
            .map(|_| {
                let mut seq: Vec<QueryResponse> = (0..1 + rng.below(4))
                    .map(|_| QueryResponse::Batch(arb_batch(&mut rng)))
                    .collect();
                seq.push(QueryResponse::StreamEnd {
                    cursor: (rng.below(2) == 1).then(|| rng.next_u64()),
                });
                seq
            })
            .collect();

        // Interleave round-robin onto one framed wire, compressing a
        // random subset of frames (threshold 0 = always try).
        let mut wire = Vec::new();
        let mut cursors: Vec<usize> = vec![0; ids.len()];
        let mut remaining: usize = sequences.iter().map(Vec::len).sum();
        while remaining > 0 {
            let s = rng.below(ids.len() as u64) as usize;
            if cursors[s] == sequences[s].len() {
                continue;
            }
            let body = sequences[s][cursors[s]].encode_versioned(2);
            let compress = (rng.below(2) == 1).then_some(0);
            let envelope = encode_stream_frame(ids[s], &body, false, compress);
            write_frame(&mut wire, &envelope).unwrap();
            cursors[s] += 1;
            remaining -= 1;
        }

        // Reassemble by routing frames on their stream id.
        let mut reassembled: Vec<Vec<QueryResponse>> = vec![Vec::new(); ids.len()];
        let mut r = wire.as_slice();
        loop {
            let payload = match read_frame(&mut r) {
                Ok(p) => p,
                Err(FrameError::Closed) => break,
                Err(other) => panic!("interleaved wire broke: {other}"),
            };
            let frame = decode_stream_frame(&payload).unwrap();
            let s = ids.iter().position(|&id| id == frame.stream_id).unwrap();
            reassembled[s].push(QueryResponse::decode_versioned(&frame.body, 2).unwrap());
        }
        assert_eq!(
            reassembled, sequences,
            "a stream's frames were reordered or torn"
        );
    }
}

/// The v3 bump must leave the v1 and v2 codecs byte-identical: the
/// envelope wraps the v2 encoding, it never alters it. Pin one frame
/// of each and the wrap relation itself.
#[test]
fn v1_and_v2_layouts_are_pinned_unchanged_under_v3() {
    // v1 pin (same layout the dedicated v1 stability test checks).
    let v1_req = QueryRequest::ByJob {
        job_id: 0x0102_0304,
    };
    assert_eq!(
        v1_req.encode_versioned(1),
        [&[1u8][..], &0x0102_0304u64.to_le_bytes()[..]].concat(),
        "v1 ByJob byte layout drifted"
    );

    // v2 pin: a FetchCursor frame is tag + u64 cursor + the trailing
    // trace-context id (zero = absent), nothing more.
    let v2_req = QueryRequest::FetchCursor {
        cursor: 0xDEAD_BEEF,
    };
    let v2_bytes = v2_req.encode_versioned(2);
    assert_eq!(
        v2_bytes,
        [
            &[5u8][..],
            &0xDEAD_BEEFu64.to_le_bytes()[..],
            &0u64.to_le_bytes()[..],
        ]
        .concat(),
        "v2 FetchCursor byte layout drifted"
    );

    // And a StreamEnd reply on v2: tag + presence byte + cursor id.
    let v2_resp = QueryResponse::StreamEnd { cursor: Some(9) };
    let v2_resp_bytes = v2_resp.encode_versioned(2);
    assert_eq!(
        v2_resp_bytes,
        [&[5u8, 1u8][..], &9u64.to_le_bytes()[..]].concat(),
        "v2 StreamEnd byte layout drifted"
    );

    // The uncompressed v3 envelope is exactly header ++ the v2 bytes:
    // stream id LE, flag byte, then the pinned encoding untouched.
    let envelope = encode_stream_frame(0x0A0B_0C0D, &v2_resp_bytes, false, None);
    let mut expected = 0x0A0B_0C0Du32.to_le_bytes().to_vec();
    expected.push(0);
    expected.extend_from_slice(&v2_resp_bytes);
    assert_eq!(envelope, expected, "v3 envelope is not strictly additive");
}

#[test]
fn metrics_frames_round_trip_on_v2_and_are_refused_on_v1() {
    let mut rng = rng_for("metrics_frames_round_trip");

    // The request is a bare tag; v2 round-trips it, v1 answers exactly
    // as a pre-metrics server build would: UnknownRequest(7), with the
    // connection left usable.
    let req = QueryRequest::Metrics.encode_versioned(2);
    assert_eq!(
        QueryRequest::decode_versioned(&req, 2),
        Ok(QueryRequest::Metrics)
    );
    assert_eq!(
        QueryRequest::decode_versioned(&req, 1),
        Err(QueryError::UnknownRequest(7))
    );

    for _ in 0..32 {
        let snapshot = arb_metrics(&mut rng);
        let resp = QueryResponse::Metrics(snapshot);
        let encoded = resp.encode_versioned(2);
        // Exact round-trip: every counter, gauge high-water, sparse
        // histogram bucket, and slow-query entry survives the wire.
        assert_eq!(
            QueryResponse::decode_versioned(&encoded, 2).as_ref(),
            Ok(&resp)
        );
        // The reply frame never decodes on a v1 connection.
        assert!(QueryResponse::decode_versioned(&encoded, 1).is_err());
        // Truncation anywhere inside the four counted sections is a
        // typed error, never a panic or a partial snapshot.
        for cut in 0..encoded.len() {
            assert!(
                QueryResponse::decode_versioned(&encoded[..cut], 2).is_err(),
                "cut {cut} must not decode"
            );
        }
        // A count prefix inflated past the payload is caught by the
        // minimum-bytes-per-element bound before any allocation. The
        // counter count sits after the tag byte and the u64 capture
        // timestamp.
        let mut inflated = encoded.clone();
        inflated[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(QueryResponse::decode_versioned(&inflated, 2).is_err());
    }
}

#[test]
fn traces_frames_round_trip_on_v2_and_are_refused_on_v1() {
    let mut rng = rng_for("traces_frames_round_trip");

    // The request tag is v2-only; a v1 connection answers exactly as a
    // pre-tracing server build would: UnknownRequest(8), with the
    // connection left usable.
    let req = QueryRequest::Traces(TraceFilter::recent());
    let encoded = req.encode_versioned(2);
    assert_eq!(QueryRequest::decode_versioned(&encoded, 2), Ok(req));
    assert_eq!(
        QueryRequest::decode_versioned(&encoded, 1),
        Err(QueryError::UnknownRequest(8))
    );

    // A present-but-zero trace id in the filter is inconsistent (zero
    // encodes "absent") and must be refused.
    let mut zeroed =
        QueryRequest::Traces(TraceFilter::recent().trace(TraceId(7))).encode_versioned(2);
    zeroed[2..10].copy_from_slice(&0u64.to_le_bytes());
    assert!(QueryRequest::decode_versioned(&zeroed, 2).is_err());

    for _ in 0..32 {
        let resp = QueryResponse::Traces(arb_traces(&mut rng));
        let encoded = resp.encode_versioned(2);
        // Exact round-trip: every span, parent link, and annotation.
        assert_eq!(
            QueryResponse::decode_versioned(&encoded, 2).as_ref(),
            Ok(&resp)
        );
        // The reply frame never decodes on a v1 connection.
        assert!(QueryResponse::decode_versioned(&encoded, 1).is_err());
        // Truncation at every byte is a typed error, never a panic or a
        // partial forest.
        for cut in 0..encoded.len() {
            assert!(
                QueryResponse::decode_versioned(&encoded[..cut], 2).is_err(),
                "cut {cut} must not decode"
            );
        }
        // A count prefix inflated past the payload is caught by the
        // minimum-bytes-per-element bound before any allocation.
        let mut inflated = encoded.clone();
        inflated[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(QueryResponse::decode_versioned(&inflated, 2).is_err());
    }
}

#[test]
fn replication_frames_round_trip_on_v3_and_are_refused_on_older() {
    let mut rng = rng_for("replication_frames_round_trip");

    // The subscription request is v3-only; v1 and v2 connections see
    // the tag exactly as a pre-replication server build would:
    // UnknownRequest(9), with the connection left usable.
    let req = QueryRequest::SubscribeEpochs {
        from_epoch: 7,
        batch_rows: 128,
    };
    let encoded = req.encode_versioned(3);
    assert_eq!(QueryRequest::decode_versioned(&encoded, 3), Ok(req));
    for older in [1u16, 2] {
        assert_eq!(
            QueryRequest::decode_versioned(&encoded, older),
            Err(QueryError::UnknownRequest(9))
        );
    }
    // Pin the byte layout: tag, from_epoch u64, batch_rows u32, and
    // the trailing trace-context id every v2+ request frame carries.
    assert_eq!(
        encoded,
        [
            &[9u8][..],
            &7u64.to_le_bytes()[..],
            &128u32.to_le_bytes()[..],
            &0u64.to_le_bytes()[..],
        ]
        .concat(),
        "v3 SubscribeEpochs byte layout drifted"
    );

    for _ in 0..32 {
        // EpochBatch: exact round-trip on v3, refused on v1/v2, typed
        // errors on truncation at every byte.
        let batch = arb_epoch_batch(&mut rng);
        let resp = QueryResponse::EpochBatch(batch.clone());
        let encoded = resp.encode_versioned(3);
        assert_eq!(
            QueryResponse::decode_versioned(&encoded, 3).as_ref(),
            Ok(&resp)
        );
        for older in [1u16, 2] {
            assert!(matches!(
                QueryResponse::decode_versioned(&encoded, older),
                Err(QueryError::Malformed(_))
            ));
        }
        for cut in 0..encoded.len() {
            assert!(
                QueryResponse::decode_versioned(&encoded[..cut], 3).is_err(),
                "cut {cut} must not decode"
            );
        }
        // A flipped bit anywhere past the epoch/count header — in a
        // record's bytes, a length prefix, or the trailing checksum —
        // must draw a typed error, never a silently different batch.
        // (The checksum is what makes a decoded batch end-to-end
        // intact independent of the frame-level FNV.)
        let body_start = 1 + 8 + 4; // tag + epoch + record count
        let at = body_start + rng.below((encoded.len() - body_start) as u64) as usize;
        let mut tampered = encoded.clone();
        tampered[at] ^= 1u8 << rng.below(8);
        assert!(
            QueryResponse::decode_versioned(&tampered, 3).is_err(),
            "bit flip at {at} must not decode"
        );
        // And a flip pinned to the trailing checksum itself draws the
        // dedicated mismatch error.
        let mut sum_flip = encoded.clone();
        let last = sum_flip.len() - 1;
        sum_flip[last] ^= 0x80;
        match QueryResponse::decode_versioned(&sum_flip, 3) {
            Err(QueryError::Malformed(msg)) => {
                assert!(msg.contains("checksum mismatch"), "got: {msg}")
            }
            other => panic!("checksum flip must be a typed mismatch, got {other:?}"),
        }

        // The commit marker's fold matches what a follower accumulates
        // batch-by-batch with the shared helper.
        let commit = QueryResponse::EpochCommit {
            epoch: batch.epoch,
            records: batch.records.len() as u64,
            checksum: fold_epoch_checksum(&[batch.checksum()]),
        };
        let encoded = commit.encode_versioned(3);
        assert_eq!(
            QueryResponse::decode_versioned(&encoded, 3).as_ref(),
            Ok(&commit)
        );
        assert!(QueryResponse::decode_versioned(&encoded, 2).is_err());

        let end = QueryResponse::SubscribeEnd {
            next_from: rng.next_u64(),
            leader_bytes: rng.next_u64(),
        };
        let encoded = end.encode_versioned(3);
        assert_eq!(
            QueryResponse::decode_versioned(&encoded, 3).as_ref(),
            Ok(&end)
        );
        assert!(QueryResponse::decode_versioned(&encoded, 1).is_err());
    }

    // Status answers carry the replication gauges only on v3
    // connections; a v2 peer gets the v2 body it always got.
    let status = StatusInfo {
        protocol_version: 3,
        repl_high_water: 12,
        repl_lag_epochs: 2,
        repl_lag_bytes: 4096,
        repl_reconnects: 5,
        ..StatusInfo::default()
    };
    let resp = QueryResponse::Status(status);
    let on_v3 = QueryResponse::decode_versioned(&resp.encode_versioned(3), 3).unwrap();
    assert_eq!(on_v3, resp);
    let on_v2 = QueryResponse::decode_versioned(&resp.encode_versioned(2), 2).unwrap();
    match on_v2 {
        QueryResponse::Status(s) => {
            assert_eq!(s.repl_high_water, 0);
            assert_eq!(s.repl_lag_epochs, 0);
            assert_eq!(s.repl_lag_bytes, 0);
            assert_eq!(s.repl_reconnects, 0);
        }
        other => panic!("expected Status, got {other:?}"),
    }
}

#[test]
fn oversized_frame_is_refused_without_allocation() {
    // A length prefix of 2^31 must be refused before any buffer of that
    // size exists; this test would OOM-kill the suite otherwise.
    let mut wire = vec![0xD8u8];
    wire.extend_from_slice(&(1u32 << 31).to_le_bytes());
    wire.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        read_frame(&mut wire.as_slice()),
        Err(FrameError::TooLarge(_))
    ));
}
