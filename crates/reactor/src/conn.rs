//! Non-blocking buffered framed I/O over one TCP stream.
//!
//! [`FramedConn`] owns a socket in non-blocking mode plus an inbound
//! and an outbound byte buffer, and parses/emits the workspace's
//! shared frame: `[0xD8][len: u32 LE][payload][fnv1a64(payload)]`.
//! The event loop calls [`FramedConn::fill`] on readable events,
//! drains complete frames with [`FramedConn::next_frame`], queues
//! replies with [`FramedConn::queue_payload`], and calls
//! [`FramedConn::flush`] on writable events; `WouldBlock` is absorbed
//! at this layer so callers only see progress or hard errors.
//!
//! Oversized and malformed headers are detected from the first five
//! bytes — before any payload is buffered — so a hostile length
//! prefix cannot make the server allocate.

use siren_hash::fnv1a64;
use siren_store::{encode_frame, FRAME_MAGIC};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Read at most this much per `fill` call, so one firehosing
/// connection cannot starve the rest of its event loop.
const READ_QUANTUM: usize = 256 * 1024;
/// Compact buffers once the consumed prefix crosses this size.
const COMPACT_AT: usize = 64 * 1024;

/// Typed framing violation found in the inbound buffer. The owner
/// decides the protocol-level response (error frame, close, counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameParseError {
    /// First byte of a frame wasn't the magic.
    BadMagic(u8),
    /// Declared payload length exceeds the caller's cap.
    TooLarge(u32),
    /// Payload checksum mismatch.
    BadChecksum,
}

/// One buffered, framed, non-blocking connection.
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    eof: bool,
    last_progress: Instant,
}

impl FramedConn {
    /// Take ownership of `stream`, switching it to non-blocking mode.
    pub fn new(stream: TcpStream) -> io::Result<FramedConn> {
        stream.set_nonblocking(true)?;
        Ok(FramedConn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
            last_progress: Instant::now(),
        })
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Peer closed its write side (clean EOF observed).
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Instant of the last successful read or write on the socket —
    /// the idle-deadline anchor.
    pub fn last_progress(&self) -> Instant {
        self.last_progress
    }

    /// Unconsumed inbound bytes (a partial frame when `next_frame`
    /// returned `None` at EOF means the peer died mid-frame).
    pub fn buffered_input(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Bytes queued but not yet written.
    pub fn pending_output(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    pub fn wants_write(&self) -> bool {
        self.pending_output() > 0
    }

    /// Pull whatever the socket has, up to a fairness quantum. Returns
    /// bytes added; 0 with [`FramedConn::is_eof`] set means the peer
    /// closed. `WouldBlock` is not an error.
    pub fn fill(&mut self) -> io::Result<usize> {
        let mut added = 0;
        let mut chunk = [0u8; 16 * 1024];
        while added < READ_QUANTUM {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_progress = Instant::now();
                    added += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(added)
    }

    fn compact_read(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos >= COMPACT_AT {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Consume exactly `n` raw bytes from the inbound buffer (the
    /// fixed-size handshake reads), or `None` until they arrive.
    pub fn take_exact(&mut self, n: usize) -> Option<Vec<u8>> {
        if self.buffered_input() < n {
            return None;
        }
        let bytes = self.rbuf[self.rpos..self.rpos + n].to_vec();
        self.rpos += n;
        self.compact_read();
        Some(bytes)
    }

    /// Parse the next complete frame out of the inbound buffer.
    /// `Ok(None)` means more bytes are needed; errors poison the
    /// stream position and the owner is expected to close.
    pub fn next_frame(&mut self, max_payload: u32) -> Result<Option<Vec<u8>>, FrameParseError> {
        let buf = &self.rbuf[self.rpos..];
        let Some(&magic) = buf.first() else {
            return Ok(None);
        };
        if magic != FRAME_MAGIC {
            return Err(FrameParseError::BadMagic(magic));
        }
        if buf.len() < 5 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(buf[1..5].try_into().unwrap());
        if len > max_payload {
            return Err(FrameParseError::TooLarge(len));
        }
        let total = 5 + len as usize + 8;
        if buf.len() < total {
            return Ok(None);
        }
        let payload = &buf[5..5 + len as usize];
        let stored = u64::from_le_bytes(buf[5 + len as usize..total].try_into().unwrap());
        if fnv1a64(payload) != stored {
            return Err(FrameParseError::BadChecksum);
        }
        let payload = payload.to_vec();
        self.rpos += total;
        self.compact_read();
        Ok(Some(payload))
    }

    /// Queue `payload` wrapped in a frame for writing.
    pub fn queue_payload(&mut self, payload: &[u8]) {
        self.wbuf.extend_from_slice(&encode_frame(payload));
    }

    /// Queue raw bytes (the fixed-layout handshake ack).
    pub fn queue_raw(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Write as much queued output as the socket accepts. Returns
    /// `true` when the outbound buffer drained completely.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wpos += n;
                    self.last_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            Ok(true)
        } else {
            if self.wpos >= COMPACT_AT {
                self.wbuf.drain(..self.wpos);
                self.wpos = 0;
            }
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, FramedConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (peer, FramedConn::new(server_side).unwrap())
    }

    fn fill_until(conn: &mut FramedConn, want: usize) {
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while conn.buffered_input() < want {
            conn.fill().unwrap();
            assert!(Instant::now() < deadline, "peer bytes never arrived");
            std::thread::yield_now();
        }
    }

    #[test]
    fn parses_frames_incrementally_across_partial_reads() {
        let (mut peer, mut conn) = pair();
        let frames: Vec<Vec<u8>> = vec![b"one".to_vec(), vec![0u8; 10_000], b"three".to_vec()];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // Send everything except the last 3 bytes, then the tail.
        peer.write_all(&wire[..wire.len() - 3]).unwrap();
        fill_until(&mut conn, wire.len() - 3);
        assert_eq!(conn.next_frame(1 << 20).unwrap().unwrap(), frames[0]);
        assert_eq!(conn.next_frame(1 << 20).unwrap().unwrap(), frames[1]);
        assert_eq!(conn.next_frame(1 << 20).unwrap(), None, "third is partial");
        assert!(conn.buffered_input() > 0);

        peer.write_all(&wire[wire.len() - 3..]).unwrap();
        fill_until(&mut conn, encode_frame(&frames[2]).len());
        assert_eq!(conn.next_frame(1 << 20).unwrap().unwrap(), frames[2]);
        assert_eq!(conn.next_frame(1 << 20).unwrap(), None);
        assert_eq!(conn.buffered_input(), 0);
    }

    #[test]
    fn handshake_bytes_come_out_before_frames() {
        let (mut peer, mut conn) = pair();
        let mut wire = b"SRNQxxxx".to_vec();
        wire.extend_from_slice(&encode_frame(b"req"));
        peer.write_all(&wire).unwrap();
        fill_until(&mut conn, wire.len());
        assert_eq!(conn.take_exact(8).unwrap(), b"SRNQxxxx");
        assert_eq!(conn.next_frame(1 << 20).unwrap().unwrap(), b"req");
    }

    #[test]
    fn oversized_header_is_refused_before_payload_arrives() {
        let (mut peer, mut conn) = pair();
        let mut header = vec![FRAME_MAGIC];
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        peer.write_all(&header).unwrap();
        fill_until(&mut conn, 5);
        assert_eq!(
            conn.next_frame(1 << 20),
            Err(FrameParseError::TooLarge(u32::MAX))
        );
    }

    #[test]
    fn bad_magic_and_bad_checksum_are_typed() {
        let (mut peer, mut conn) = pair();
        peer.write_all(&[0x55]).unwrap();
        fill_until(&mut conn, 1);
        assert_eq!(
            conn.next_frame(1 << 20),
            Err(FrameParseError::BadMagic(0x55))
        );

        let (mut peer, mut conn) = pair();
        let mut wire = encode_frame(b"payload");
        let flip = wire.len() - 10; // inside the payload
        wire[flip] ^= 0xFF;
        peer.write_all(&wire).unwrap();
        fill_until(&mut conn, wire.len());
        assert_eq!(conn.next_frame(1 << 20), Err(FrameParseError::BadChecksum));
    }

    #[test]
    fn eof_is_observed_after_peer_close() {
        let (peer, mut conn) = pair();
        drop(peer);
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while !conn.is_eof() {
            conn.fill().unwrap();
            assert!(Instant::now() < deadline);
            std::thread::yield_now();
        }
        assert_eq!(conn.next_frame(1 << 20).unwrap(), None);
        assert_eq!(conn.buffered_input(), 0, "clean close, no partial frame");
    }

    #[test]
    fn backpressured_writes_complete_once_the_peer_drains() {
        let (mut peer, mut conn) = pair();
        let big = vec![0xABu8; 4 * 1024 * 1024];
        conn.queue_payload(&big);
        let expected = encode_frame(&big);

        // Peer isn't reading: flush makes partial progress then parks.
        let drained = conn.flush().unwrap();
        assert!(!drained || conn.pending_output() == 0);

        let reader = std::thread::spawn(move || {
            let mut got = Vec::new();
            peer.read_to_end(&mut got).unwrap();
            got
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while !conn.flush().unwrap() {
            assert!(Instant::now() < deadline, "write never completed");
            std::thread::yield_now();
        }
        assert!(!conn.wants_write());
        drop(conn);
        assert_eq!(reader.join().unwrap(), expected);
    }
}
