//! Event-driven readiness core for the serving tier.
//!
//! `siren-reactor` is the thin, protocol-agnostic layer between raw
//! sockets and the query server: a level-triggered [`Poller`] (vendored
//! epoll/eventfd shim — see `vendor/polling`), a hashed [`TimerWheel`]
//! for connection deadlines and periodic sweeps, a [`Slab`] keying
//! connections to poller tokens, and [`FramedConn`] — non-blocking
//! buffered framed I/O over the workspace's shared
//! `[magic][len][payload][fnv1a64]` frame.
//!
//! The crate deliberately knows nothing about protocol versions,
//! requests, or cursors; `siren-service` composes these parts into
//! event-loop threads, and `siren-net` reuses the poller for UDP
//! ingest shutdown. Everything here is dependency-free beyond the
//! in-repo shims, per the offline-build doctrine.

mod conn;
mod slab;
mod timer;

pub use conn::{FrameParseError, FramedConn};
pub use polling::{Event, Interest, Poller};
pub use slab::Slab;
pub use timer::{TimerId, TimerWheel};
