//! Minimal slot map: stable `usize` keys for poller registration.
//!
//! Keys are reused after removal (freed slots go to a free list), so
//! owners that might see stale events for a recycled key should pair
//! the slab with a generation check of their own — the query server
//! deregisters sockets from the poller before freeing the slot, which
//! makes stale keys impossible there.

/// Vec-backed slot map with O(1) insert/remove/lookup.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Store `value`, returning its key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(key) => {
                self.slots[key] = Some(value);
                key
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// Remove and return the value under `key`, freeing the slot.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let value = self.slots.get_mut(key)?.take();
        if value.is_some() {
            self.free.push(key);
            self.len -= 1;
        }
        value
    }

    pub fn get(&self, key: usize) -> Option<&T> {
        self.slots.get(key)?.as_ref()
    }

    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        self.slots.get_mut(key)?.as_mut()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupied keys, in slot order. Snapshot — safe to mutate the
    /// slab while walking the returned list.
    pub fn keys(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_and_key_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        *slab.get_mut(b).unwrap() = "B";
        assert_eq!(slab.remove(b), Some("B"));
        assert_eq!(slab.remove(b), None, "double remove is None");
        assert_eq!(slab.get(b), None);

        let c = slab.insert("c");
        assert_eq!(c, b, "freed slot is reused");
        assert_eq!(slab.keys(), vec![a, c].into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn out_of_range_keys_are_none() {
        let slab: Slab<u8> = Slab::new();
        assert_eq!(slab.get(3), None);
        assert!(slab.is_empty());
    }
}
