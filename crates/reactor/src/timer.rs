//! Hashed timer wheel for coarse deadlines.
//!
//! Entries land in `slot = tick(deadline) % slots` and carry their
//! absolute deadline, so a slot can hold timers from different wheel
//! rotations: [`TimerWheel::advance`] only fires entries whose
//! deadline has actually passed and leaves the rest for a later lap.
//! Precision is one tick — plenty for multi-second connection
//! deadlines and TTL sweeps, and firing is O(entries in the visited
//! slots) rather than O(log n) per timer.
//!
//! The intended idle-deadline pattern is *lazy rescheduling*: schedule
//! once at `last_activity + deadline`, and when the timer fires check
//! the connection's real `last_activity` — if it moved, reschedule at
//! the new expiry instead of cancelling on every frame.

use std::time::{Duration, Instant};

/// Handle for cancelling a scheduled timer. Stale ids (already fired
/// or cancelled) are harmless: `cancel` simply returns `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    slot: usize,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    deadline: Instant,
    key: usize,
    seq: u64,
}

/// Single-level hashed wheel over `usize` keys.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    origin: Instant,
    /// First tick index not yet fully processed by `advance`.
    cursor: u64,
    seq: u64,
    live: usize,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `tick` width, anchored at `origin`
    /// (timers scheduled before `origin` fire on the first advance).
    pub fn new(origin: Instant, tick: Duration, slots: usize) -> TimerWheel {
        assert!(slots > 0 && tick > Duration::ZERO);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            origin,
            cursor: 0,
            seq: 0,
            live: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.origin).as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Schedule `key` to fire once `deadline` passes.
    pub fn schedule(&mut self, deadline: Instant, key: usize) -> TimerId {
        self.seq += 1;
        let slot = (self.tick_of(deadline) % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            deadline,
            key,
            seq: self.seq,
        });
        self.live += 1;
        TimerId {
            slot,
            seq: self.seq,
        }
    }

    /// Remove a scheduled timer; `false` if it already fired or was
    /// cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        let bucket = &mut self.slots[id.slot];
        if let Some(at) = bucket.iter().position(|e| e.seq == id.seq) {
            bucket.swap_remove(at);
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Fire every timer whose deadline is `<= now`, pushing its key to
    /// `fired` (in no particular order).
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<usize>) {
        if self.live == 0 {
            self.cursor = self.tick_of(now);
            return;
        }
        let current = self.tick_of(now);
        let slots = self.slots.len() as u64;
        // Visit each slot at most once per advance; entries from later
        // rotations survive because their deadline hasn't passed.
        let first = self.cursor;
        let last = current.min(first + slots - 1);
        for ti in first..=last {
            let bucket = &mut self.slots[(ti % slots) as usize];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].deadline <= now {
                    fired.push(bucket.swap_remove(i).key);
                    self.live -= 1;
                } else {
                    i += 1;
                }
            }
        }
        // Stay on the current tick so a deadline later in this same
        // tick is still visited by the next advance.
        self.cursor = current;
    }

    /// Earliest scheduled deadline, for sizing the poll timeout.
    /// O(live entries) — called once per event-loop wake.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .flat_map(|b| b.iter().map(|e| e.deadline))
            .min()
    }

    /// Number of scheduled timers.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_past_deadlines() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(10), 8);
        wheel.schedule(t0 + Duration::from_millis(25), 1);
        wheel.schedule(t0 + Duration::from_millis(55), 2);

        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(10), &mut fired);
        assert!(fired.is_empty());
        wheel.advance(t0 + Duration::from_millis(30), &mut fired);
        assert_eq!(fired, vec![1]);
        fired.clear();
        wheel.advance(t0 + Duration::from_millis(60), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn entries_beyond_one_rotation_wait_their_lap() {
        let t0 = Instant::now();
        // 4 slots x 10ms = one 40ms rotation; 95ms is two laps out and
        // shares a slot with 15ms.
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(10), 4);
        wheel.schedule(t0 + Duration::from_millis(15), 10);
        wheel.schedule(t0 + Duration::from_millis(95), 20);

        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(20), &mut fired);
        assert_eq!(fired, vec![10], "far timer must not fire early");
        fired.clear();
        wheel.advance(t0 + Duration::from_millis(50), &mut fired);
        assert!(fired.is_empty());
        wheel.advance(t0 + Duration::from_millis(100), &mut fired);
        assert_eq!(fired, vec![20]);
    }

    #[test]
    fn a_big_time_jump_fires_everything_once() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(10), 4);
        for key in 0..20 {
            wheel.schedule(t0 + Duration::from_millis(3 * key as u64), key);
        }
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_secs(10), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, (0..20).collect::<Vec<_>>());
        assert!(wheel.is_empty());
        fired.clear();
        wheel.advance(t0 + Duration::from_secs(20), &mut fired);
        assert!(fired.is_empty(), "timers fire exactly once");
    }

    #[test]
    fn cancel_prevents_firing_and_stale_ids_are_harmless() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(10), 8);
        let a = wheel.schedule(t0 + Duration::from_millis(20), 1);
        let b = wheel.schedule(t0 + Duration::from_millis(20), 2);
        assert!(wheel.cancel(a));
        assert!(!wheel.cancel(a), "double cancel is a no-op");

        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(30), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(!wheel.cancel(b), "fired id is stale");
    }

    #[test]
    fn lazy_reschedule_pattern_tracks_activity() {
        let t0 = Instant::now();
        let deadline = Duration::from_millis(50);
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(10), 16);
        // Connection registered at t0; activity at t0+40ms.
        wheel.schedule(t0 + deadline, 7);
        let last_activity = t0 + Duration::from_millis(40);

        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(60), &mut fired);
        assert_eq!(fired, vec![7]);
        // The owner notices activity moved the expiry and reschedules.
        assert!(last_activity + deadline > t0 + Duration::from_millis(60));
        wheel.schedule(last_activity + deadline, 7);
        fired.clear();
        wheel.advance(t0 + Duration::from_millis(80), &mut fired);
        assert!(fired.is_empty());
        wheel.advance(t0 + Duration::from_millis(100), &mut fired);
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn next_deadline_reports_the_earliest() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(10), 8);
        assert_eq!(wheel.next_deadline(), None);
        wheel.schedule(t0 + Duration::from_millis(70), 1);
        let id = wheel.schedule(t0 + Duration::from_millis(30), 2);
        assert_eq!(wheel.next_deadline(), Some(t0 + Duration::from_millis(30)));
        wheel.cancel(id);
        assert_eq!(wheel.next_deadline(), Some(t0 + Duration::from_millis(70)));
    }
}
