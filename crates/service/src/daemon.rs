//! The daemon: epoch lifecycle over a segmented consolidated-record
//! store.

use crate::maintain::SnapshotMaintainer;
use crate::metrics::ServiceMetrics;
use crate::server::QueryServer;
use crate::snapshot::QuerySnapshot;
use parking_lot::RwLock;
use siren_consolidate::{ConsolidateStats, ProcessRecord};
use siren_ingest::{IngestConfig, IngestMetrics, IngestService, IngestTraceContext, ShardStats};
use siren_net::UdpReceiver;
use siren_obs::{Counter, MetricsSnapshot, Span, SpanId, TraceFilter, TraceId, TraceTree};
use siren_proto::StatusInfo;
use siren_store::{Persist, RecoveryStats, SegmentedBackend, SegmentedOptions, StoreMetrics};
use siren_wire::{parse_sentinel, parse_sentinel_epoch, Message, MessageType};
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One consolidated process record, tagged with the epoch (campaign)
/// that produced it — the unit of the daemon's persistent store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// Epoch the record was committed under.
    pub epoch: u64,
    /// The consolidated record.
    pub record: ProcessRecord,
}

/// What the consolidated store physically holds: the epoch's rows plus
/// one **seal** marker written in the same atomic segment. The seal is
/// what makes "epoch N committed" durable even when the epoch produced
/// zero records (every datagram lost) — without it, a restarted daemon
/// would re-derive committed epochs from row tags alone, forget the
/// empty epoch, and hand its id out again.
#[derive(Debug, Clone, PartialEq, Eq)]
enum StoredItem {
    /// One consolidated row of an epoch (boxed: rows are two orders
    /// of magnitude larger than seals).
    Row(Box<EpochRecord>),
    /// Commit marker: every row of this epoch precedes it.
    Seal(u64),
}

impl StoredItem {
    fn epoch(&self) -> u64 {
        match self {
            StoredItem::Row(row) => row.epoch,
            StoredItem::Seal(epoch) => *epoch,
        }
    }

    /// Rows sort before the seal within an epoch.
    fn kind_tag(&self) -> u8 {
        match self {
            StoredItem::Row(_) => 0,
            StoredItem::Seal(_) => 1,
        }
    }
}

impl Persist for StoredItem {
    fn encode(&self) -> Vec<u8> {
        match self {
            StoredItem::Row(row) => {
                let mut out = vec![0u8];
                out.extend_from_slice(&row.epoch.to_le_bytes());
                out.extend_from_slice(&row.record.encode());
                out
            }
            StoredItem::Seal(epoch) => {
                let mut out = vec![1u8];
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
        }
    }

    fn decode(data: &[u8]) -> Option<Self> {
        let epoch = u64::from_le_bytes(data.get(1..9)?.try_into().ok()?);
        match data.first()? {
            0 => Some(StoredItem::Row(Box::new(EpochRecord {
                epoch,
                record: ProcessRecord::decode(data.get(9..)?)?,
            }))),
            1 if data.len() == 9 => Some(StoredItem::Seal(epoch)),
            _ => None,
        }
    }

    fn order(a: &Self, b: &Self) -> std::cmp::Ordering {
        // Epoch, then rows-before-seal, then the consolidation order —
        // within one epoch row keys are unique (consolidation groups by
        // them), so this is effectively total; the stable compaction
        // sort breaks any remaining tie by arrival.
        a.epoch()
            .cmp(&b.epoch())
            .then_with(|| a.kind_tag().cmp(&b.kind_tag()))
            .then_with(|| match (a, b) {
                (StoredItem::Row(x), StoredItem::Row(y)) => {
                    siren_consolidate::record_order(&x.record, &y.record)
                }
                _ => std::cmp::Ordering::Equal,
            })
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory holding everything the daemon persists: the
    /// consolidated-record store under `consolidated/` and per-epoch
    /// shard WALs beside it.
    pub data_dir: PathBuf,
    /// Ingest shards per epoch (clamped to the hardware by default, as
    /// in [`IngestConfig`]).
    pub shards: usize,
    /// Distinct sender ids whose `TYPE=END` sentinels close an epoch
    /// (one per collector stream feeding the campaign).
    pub expected_senders: usize,
    /// Consolidated-store tuning.
    pub store: SegmentedOptions,
    /// When set, the daemon serves the versioned TCP query protocol on
    /// this address (bind `127.0.0.1:0` for an ephemeral test port; the
    /// bound address is [`SirenDaemon::query_addr`]).
    pub query_addr: Option<SocketAddr>,
    /// Event-loop threads in the query server's reactor; each serves
    /// many connections through readiness-driven non-blocking I/O.
    pub query_workers: usize,
    /// Accepted connections waiting for event-loop registration;
    /// connections beyond it are refused, never buffered without
    /// bound.
    pub query_backlog: usize,
    /// Per-connection read/write deadline (bounds idle clients, slow
    /// consumers, and request handling alike — including every batch
    /// write of a v2 row stream).
    pub query_deadline: Duration,
    /// How long a paginated v2 cursor may sit idle between fetches
    /// before the server evicts it (and drops the snapshot it pins).
    pub cursor_ttl: Duration,
    /// Most cursors parked at once; past it the stalest is evicted so
    /// abandoned clients cannot pin unbounded snapshot memory.
    pub query_max_cursors: usize,
    /// Precompute the next page of a parked cursor at park time, so a
    /// `FetchCursor` is answered from already-serialized batches.
    /// Bounded to one page per parked cursor.
    pub query_prefetch: bool,
    /// v3 reply bodies at least this large are LZ-compressed for
    /// clients that advertised acceptance (the stream envelope's
    /// accept-compressed flag). Compression is skipped whenever it
    /// fails to shrink the body.
    pub query_compress_min: usize,
    /// Silence on the UDP ingest loop ([`SirenDaemon::drain_udp`])
    /// after which an open epoch is committed without its sentinel
    /// quorum — the fallback for campaigns whose every `TYPE=END` copy
    /// was lost. Each use is counted and surfaced in the `Status` query.
    pub quiet_period: Duration,
    /// Requests slower than this land in the bounded slow-query log
    /// surfaced through the `Metrics` reply (plan fingerprint, selection
    /// shape, rows, duration — never predicate values). `Duration::ZERO`
    /// logs every streaming request; tests use that to exercise the ring.
    pub slow_query_threshold: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            data_dir: PathBuf::from("siren-service-data"),
            shards: 1,
            expected_senders: 1,
            store: SegmentedOptions::default(),
            query_addr: None,
            query_workers: 4,
            query_backlog: 64,
            query_deadline: Duration::from_secs(5),
            cursor_ttl: Duration::from_secs(60),
            query_max_cursors: 256,
            query_prefetch: true,
            query_compress_min: siren_proto::DEFAULT_COMPRESS_MIN_BYTES,
            quiet_period: Duration::from_secs(10),
            slow_query_threshold: Duration::from_millis(100),
        }
    }
}

impl ServiceConfig {
    /// Config rooted at `data_dir`, defaults elsewhere.
    pub fn at(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            ..Self::default()
        }
    }

    fn consolidated_dir(&self) -> PathBuf {
        self.data_dir.join("consolidated")
    }

    /// Base path of epoch `epoch`'s message WALs; the ingest tier
    /// appends `.shard<i>`. The shard count is baked into the name so a
    /// restart resumes with the partitioning the files were written
    /// under, even if the configured count changed in between.
    fn epoch_msgs_base(&self, epoch: u64, shards: usize) -> PathBuf {
        self.data_dir
            .join(format!("epoch-{epoch:010}.s{shards}.msgs"))
    }
}

/// Parse `epoch-<K>.s<N>.msgs.shard<i>` → `(K, N)`.
fn parse_epoch_msgs_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("epoch-")?;
    let (epoch, rest) = rest.split_once(".s")?;
    let (shards, rest) = rest.split_once(".msgs.shard")?;
    rest.parse::<usize>().ok()?;
    Some((epoch.parse().ok()?, shards.parse().ok()?))
}

/// What a daemon found on startup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonRecovery {
    /// Epochs whose records were recovered from the consolidated store.
    pub committed_epochs: Vec<u64>,
    /// Consolidated records loaded.
    pub consolidated_records: u64,
    /// Consolidated-store recovery detail (torn tails, segments, runs).
    pub store: RecoveryStats,
    /// The uncommitted epoch resumed from its message WALs, if any.
    /// Its already-received rows are replayed into the epoch's ingest
    /// partitions; re-sending the campaign (duplicates included) then
    /// converges on the crash-free result.
    pub resumed_epoch: Option<u64>,
    /// Message WALs deleted because their epoch was already committed
    /// (the crash hit between commit and cleanup).
    pub stale_epoch_wals_removed: usize,
}

/// Everything the daemon reports about one committed epoch.
#[derive(Debug)]
pub struct EpochSummary {
    /// The epoch id.
    pub epoch: u64,
    /// Consolidated records committed under this epoch.
    pub records: u64,
    /// Consolidation statistics.
    pub consolidate_stats: ConsolidateStats,
    /// Per-shard ingest telemetry (replay, backpressure, reassembly).
    pub shard_stats: Vec<ShardStats>,
    /// `TYPE=END` sentinel datagrams observed (all copies).
    pub sentinels_seen: u64,
    /// Distinct sender ids that announced end-of-campaign.
    pub senders_closed: usize,
    /// Sentinels whose epoch tag disagreed with the open epoch.
    pub epoch_tag_mismatches: u64,
}

/// No-open-epoch marker inside [`SharedState::open_epoch`].
const NO_EPOCH: u64 = u64::MAX;

/// The state the daemon shares with the query-server threads: the
/// current snapshot behind an atomic swap, plus live ingest-health
/// counters.
///
/// Concurrency model: the `RwLock` guards only the `Arc` *pointer* —
/// readers hold it just long enough to clone the `Arc`, then run the
/// whole query against their private, immutable snapshot with no locks
/// at all. A commit builds the next snapshot off to the side and swaps
/// the pointer; in-flight queries keep answering from the snapshot they
/// started with, so queries and epoch commits never wait on each other.
#[derive(Debug)]
pub(crate) struct SharedState {
    snapshot: RwLock<Arc<QuerySnapshot>>,
    open_epoch: AtomicU64,
    /// Sealed consolidated-store footprint in bytes, refreshed at open
    /// and after every commit. The reactor tier reads it to stamp
    /// `SubscribeEnd.leader_bytes` without touching the store itself;
    /// followers subtract their own figure to report `repl.lag_bytes`.
    sealed_bytes: AtomicU64,
    /// Registry-backed (`service.epoch_tag_mismatches` /
    /// `service.quiet_period_fallbacks`): a `Status` answer and a
    /// `Metrics` snapshot read the very same atomics, so the two views
    /// can never disagree.
    epoch_tag_mismatches: Arc<Counter>,
    quiet_period_fallbacks: Arc<Counter>,
}

impl SharedState {
    fn new(snapshot: Arc<QuerySnapshot>, metrics: &ServiceMetrics) -> Self {
        Self {
            snapshot: RwLock::new(snapshot),
            open_epoch: AtomicU64::new(NO_EPOCH),
            sealed_bytes: AtomicU64::new(0),
            epoch_tag_mismatches: Arc::clone(&metrics.epoch_tag_mismatches),
            quiet_period_fallbacks: Arc::clone(&metrics.quiet_period_fallbacks),
        }
    }

    /// The sealed-store footprint last published by the daemon.
    pub(crate) fn sealed_bytes(&self) -> u64 {
        self.sealed_bytes.load(Ordering::Relaxed)
    }

    fn publish_sealed_bytes(&self, bytes: u64) {
        self.sealed_bytes.store(bytes, Ordering::Relaxed);
    }

    /// The current snapshot (a cheap `Arc` clone).
    pub(crate) fn load(&self) -> Arc<QuerySnapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// Publish a new snapshot (the epoch-commit pointer swap).
    fn store(&self, snapshot: Arc<QuerySnapshot>) {
        *self.snapshot.write() = snapshot;
    }

    /// Publish `next` only if the current snapshot is still `expected`
    /// — the background merger's optimistic swap. A pointer mismatch
    /// means an epoch committed meanwhile; the stale merge must be
    /// discarded, never allowed to roll that epoch back.
    pub(crate) fn replace_if(
        &self,
        expected: &Arc<QuerySnapshot>,
        next: Arc<QuerySnapshot>,
    ) -> bool {
        let mut guard = self.snapshot.write();
        if Arc::ptr_eq(&guard, expected) {
            *guard = next;
            true
        } else {
            false
        }
    }

    /// Live counters for a `Status` answer; the snapshot-derived fields
    /// (committed epochs, record count) are filled in by
    /// [`QuerySnapshot::respond`] from the answering snapshot so the
    /// response is self-consistent.
    pub(crate) fn status(&self, protocol_version: u16) -> StatusInfo {
        let open = self.open_epoch.load(Ordering::Relaxed);
        StatusInfo {
            protocol_version,
            open_epoch: (open != NO_EPOCH).then_some(open),
            epoch_tag_mismatches: self.epoch_tag_mismatches.get(),
            quiet_period_fallbacks: self.quiet_period_fallbacks.get(),
            ..StatusInfo::default()
        }
    }
}

struct OpenEpoch {
    epoch: u64,
    /// The exact ingest configuration the epoch runs under — kept so
    /// commit-time cleanup can ask it (and only it) where the shard
    /// partitions live.
    ingest_cfg: IngestConfig,
    service: IngestService,
    senders_seen: BTreeSet<u32>,
    sentinels_seen: u64,
    epoch_tag_mismatches: u64,
    /// The epoch's root span (`epoch.ingest`), opened when the epoch
    /// spawns and finished when the commit lands — every shard-worker
    /// `reassembly`/`wal_insert` span and the `recv`/`commit`/`publish`
    /// children hang under it, so one `Traces` query shows the whole
    /// epoch pipeline.
    span: Span,
    /// When the epoch opened — the start of the `recv` child span
    /// recorded at close (the receive window is over by then).
    opened_at: Instant,
}

/// The long-running ingest daemon. See the crate docs for the lifecycle.
pub struct SirenDaemon {
    cfg: ServiceConfig,
    store: SegmentedBackend<StoredItem>,
    committed: BTreeSet<u64>,
    open: Option<OpenEpoch>,
    /// Committed records live in the layered snapshot published here;
    /// the daemon reads the current snapshot back from the shared state
    /// at each commit so background layer merges are picked up rather
    /// than overwritten.
    shared: Arc<SharedState>,
    maintainer: SnapshotMaintainer,
    server: Option<QueryServer>,
    /// The daemon-wide metric handles and their registry; store and
    /// ingest handles are registered into the same registry, so one
    /// snapshot covers the whole pipeline.
    metrics: ServiceMetrics,
    /// The registered `ingest.*` handles every epoch's ingest service
    /// records into.
    ingest_metrics: IngestMetrics,
}

impl SirenDaemon {
    /// Open (or create) the daemon at `cfg.data_dir`, running recovery:
    /// committed epochs come back from the consolidated store (their
    /// seal markers survive even for zero-record epochs), and an epoch
    /// that was mid-stream at the crash is resumed from its shard WALs.
    pub fn open(cfg: ServiceConfig) -> std::io::Result<(Self, DaemonRecovery)> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let metrics = ServiceMetrics::new();
        let ingest_metrics = IngestMetrics::register(&metrics.registry);
        let (store, items, store_stats) = SegmentedBackend::<StoredItem>::open_with_metrics(
            &cfg.consolidated_dir(),
            cfg.store,
            StoreMetrics::register(&metrics.registry)
                .with_spans(Arc::clone(metrics.traces.buffer())),
        )?;
        let mut records: Vec<EpochRecord> = Vec::with_capacity(items.len());
        let mut committed: BTreeSet<u64> = BTreeSet::new();
        for item in items {
            // Defensive union: rows imply the commit too (a seal can
            // only be missing if the store predates it or was damaged).
            committed.insert(item.epoch());
            if let StoredItem::Row(row) = item {
                records.push(*row);
            }
        }

        let mut recovery = DaemonRecovery {
            committed_epochs: committed.iter().copied().collect(),
            consolidated_records: records.len() as u64,
            store: store_stats,
            ..DaemonRecovery::default()
        };

        // Leftover epoch message WALs: stale for committed epochs,
        // resumable for the (single) uncommitted one.
        let mut leftovers: BTreeSet<(u64, usize)> = BTreeSet::new();
        for entry in std::fs::read_dir(&cfg.data_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((epoch, shards)) = parse_epoch_msgs_name(name) {
                if committed.contains(&epoch) {
                    // Survivable: the epoch is already durable in the
                    // sealed store, so a failed unlink of its raw
                    // message WAL costs disk, not correctness. Count
                    // it and keep recovering — the next open retries.
                    if std::fs::remove_file(entry.path()).is_err() {
                        metrics.io_errors.inc();
                    } else {
                        recovery.stale_epoch_wals_removed += 1;
                    }
                } else {
                    leftovers.insert((epoch, shards));
                }
            }
        }

        // Recovery is the one unavoidable O(total records) build: the
        // whole store was just read back anyway. Every later commit
        // stacks an O(epoch) layer instead.
        let snapshot = Arc::new(QuerySnapshot::build(records));
        let shared = Arc::new(SharedState::new(snapshot, &metrics));
        let maintainer = SnapshotMaintainer::spawn(
            Arc::clone(&shared),
            Arc::clone(&metrics.snapshot_merges),
            Arc::clone(&metrics.merge_ns),
            Arc::clone(metrics.traces.buffer()),
        )?;
        let mut daemon = Self {
            cfg,
            store,
            committed,
            open: None,
            shared,
            maintainer,
            server: None,
            metrics,
            ingest_metrics,
        };
        daemon
            .shared
            .publish_sealed_bytes(daemon.store.sealed_bytes());

        // Resume the newest uncommitted epoch; commit any older ones
        // outright (their campaigns ended with the crash).
        if let Some(&(resume, resume_shards)) = leftovers.iter().next_back() {
            for &(epoch, shards) in leftovers.iter().rev().skip(1) {
                daemon.open = Some(daemon.spawn_epoch(epoch, shards)?);
                daemon.close_epoch()?;
            }
            daemon.open = Some(daemon.spawn_epoch(resume, resume_shards)?);
            recovery.resumed_epoch = Some(resume);
        }

        // Serve queries only once recovery has settled (clients must
        // never observe a half-recovered store).
        if let Some(addr) = daemon.cfg.query_addr {
            daemon.server = Some(QueryServer::spawn(
                addr,
                Arc::clone(&daemon.shared),
                &daemon.cfg,
                daemon.metrics.clone(),
            )?);
        }
        Ok((daemon, recovery))
    }

    fn spawn_epoch(&self, epoch: u64, shards: usize) -> std::io::Result<OpenEpoch> {
        let mut span = self.metrics.traces.buffer().root("epoch.ingest", None);
        span.annotate("epoch", &epoch.to_string());
        let ingest_cfg = IngestConfig {
            wal_base: Some(self.cfg.epoch_msgs_base(epoch, shards)),
            metrics: self.ingest_metrics.clone(),
            trace: Some(IngestTraceContext {
                buffer: Arc::clone(self.metrics.traces.buffer()),
                trace: span.trace(),
                parent: span.id(),
            }),
            ..IngestConfig::with_shards_unclamped(shards)
        };
        let service = IngestService::spawn(ingest_cfg.clone())?;
        self.shared.open_epoch.store(epoch, Ordering::Relaxed);
        Ok(OpenEpoch {
            epoch,
            ingest_cfg,
            service,
            senders_seen: BTreeSet::new(),
            sentinels_seen: 0,
            epoch_tag_mismatches: 0,
            span,
            opened_at: Instant::now(),
        })
    }

    /// The epoch a new campaign would open under.
    fn next_epoch(&self) -> u64 {
        let committed_max = self.committed.iter().next_back().copied();
        match committed_max {
            Some(e) => e + 1,
            None => 0,
        }
    }

    /// Begin a new epoch explicitly. Idempotent: returns the already-open
    /// epoch if one exists (including a crash-resumed one).
    pub fn begin_epoch(&mut self) -> std::io::Result<u64> {
        if let Some(open) = &self.open {
            return Ok(open.epoch);
        }
        let epoch = self.next_epoch();
        let shards = self.cfg.shards.max(1);
        // Honor the hardware clamp for fresh epochs; resumed epochs keep
        // the shard count baked into their file names.
        let shards = IngestConfig::with_shards(shards).effective_shards();
        self.open = Some(self.spawn_epoch(epoch, shards)?);
        Ok(epoch)
    }

    /// The currently open epoch, if any.
    pub fn open_epoch(&self) -> Option<u64> {
        self.open.as_ref().map(|o| o.epoch)
    }

    /// Epochs committed to the consolidated store, ascending.
    pub fn committed_epochs(&self) -> Vec<u64> {
        self.committed.iter().copied().collect()
    }

    /// Deliver one decoded message. Payload messages open an epoch on
    /// demand and stream into its ingest service; `TYPE=END` sentinels
    /// are tallied per sender and close the epoch once
    /// [`ServiceConfig::expected_senders`] distinct senders have
    /// announced end-of-campaign — the returned summary is the commit
    /// receipt. A sentinel whose epoch tag disagrees with the open epoch
    /// is a straggler from another campaign (reordered delivery): it is
    /// counted and otherwise ignored, never trusted to close an epoch it
    /// does not name.
    pub fn push(&mut self, msg: Message) -> std::io::Result<Option<EpochSummary>> {
        if msg.header.mtype == MessageType::End {
            let expected = self.cfg.expected_senders.max(1);
            let Some(open) = self.open.as_mut() else {
                return Ok(None); // stray sentinel outside any epoch
            };
            open.sentinels_seen += 1;
            if let Some((sender, _sent)) = parse_sentinel(&msg) {
                if let Some(tag) = parse_sentinel_epoch(&msg) {
                    if tag != open.epoch {
                        open.epoch_tag_mismatches += 1;
                        // Counted live into the shared state too, so a
                        // `Status` query sees it before the epoch closes.
                        self.shared.epoch_tag_mismatches.inc();
                        return Ok(None);
                    }
                }
                open.senders_seen.insert(sender);
                if open.senders_seen.len() >= expected {
                    return self.close_epoch().map(Some);
                }
            }
            return Ok(None);
        }
        if self.open.is_none() {
            self.begin_epoch()?;
        }
        let open = self.open.as_mut().expect("epoch opened above");
        open.service.push(msg);
        Ok(None)
    }

    /// Decode and deliver one datagram. An undecodable datagram is
    /// dropped silently (exactly as a UDP receiver would shed it); a
    /// storage failure is a real daemon fault and propagates.
    pub fn push_datagram(&mut self, datagram: &[u8]) -> std::io::Result<Option<EpochSummary>> {
        match Message::decode(datagram) {
            Ok(msg) => self.push(msg),
            Err(_) => Ok(None),
        }
    }

    /// Close the open epoch: drain and join the ingest shards,
    /// consolidate, commit the records atomically to the consolidated
    /// store, and only then delete the epoch's message WALs.
    pub fn close_epoch(&mut self) -> std::io::Result<EpochSummary> {
        let open = self.open.take().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no epoch is open")
        })?;
        // The epoch is no longer open whatever happens next; clearing
        // the shared marker here (not only on commit) keeps a failed
        // close from leaving `Status` reporting a phantom open epoch.
        self.shared.open_epoch.store(NO_EPOCH, Ordering::Relaxed);
        let OpenEpoch {
            epoch,
            ingest_cfg,
            service,
            senders_seen,
            sentinels_seen,
            epoch_tag_mismatches,
            span,
            opened_at,
        } = open;

        // The receive window is over: everything the campaign will
        // deliver is already in the shard channels.
        self.metrics.traces.buffer().record_past(
            span.trace(),
            Some(span.id()),
            "recv",
            opened_at,
            opened_at.elapsed(),
        );
        let result = service.finish()?;
        let epoch_records: Vec<EpochRecord> = result
            .records
            .iter()
            .map(|record| EpochRecord {
                epoch,
                record: record.clone(),
            })
            .collect();

        self.commit_records(epoch, epoch_records, Some((span.trace(), span.id())))?;
        // The epoch root span closes once the commit is durable and
        // published — its duration is the campaign end to end.
        span.finish();
        // Only now is it safe to drop the raw messages. The partition
        // paths come from the ingest config itself, so this deletes
        // exactly what the workers wrote. A failed unlink is
        // survivable — the epoch is already sealed, and recovery
        // removes stale WALs for committed epochs on the next open —
        // so it is counted, not propagated: failing a durable commit
        // over cleanup would un-commit good data.
        for shard in 0..ingest_cfg.effective_shards() {
            if let Some(path) = ingest_cfg.shard_wal_path(shard) {
                if path.exists() && std::fs::remove_file(&path).is_err() {
                    self.metrics.io_errors.inc();
                }
            }
        }

        Ok(EpochSummary {
            epoch,
            records: result.records.len() as u64,
            consolidate_stats: result.stats,
            shard_stats: result.shard_stats,
            sentinels_seen,
            senders_closed: senders_seen.len(),
            epoch_tag_mismatches,
        })
    }

    /// Bulk-import already-consolidated records as one committed epoch,
    /// bypassing ingest — the backfill/migration path (also what the
    /// query benchmarks populate a daemon with). The commit is exactly
    /// an epoch close: one atomic sealed segment, then the snapshot
    /// swap. Refused while an epoch is ingesting.
    pub fn import_epoch(&mut self, records: Vec<ProcessRecord>) -> std::io::Result<u64> {
        if self.open.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot import while an epoch is ingesting",
            ));
        }
        let epoch = self.next_epoch();
        let mut span = self.metrics.traces.buffer().root("epoch.import", None);
        span.annotate("epoch", &epoch.to_string());
        let epoch_records: Vec<EpochRecord> = records
            .into_iter()
            .map(|record| EpochRecord { epoch, record })
            .collect();
        self.commit_records(epoch, epoch_records, Some((span.trace(), span.id())))?;
        span.finish();
        Ok(epoch)
    }

    /// [`import_epoch`](Self::import_epoch) pinned to an explicit epoch
    /// id — the replication apply path. Idempotent on re-delivery:
    /// returns `Ok(false)` without touching the store when `epoch` is
    /// already committed (a follower replaying a stream after a crash
    /// simply skips what it already has). Refused while an epoch is
    /// ingesting, and refused with `InvalidInput` when `epoch` would
    /// leave a gap — committed epochs must stay contiguous or recovery's
    /// "rows imply the commit" union would invent history.
    pub fn import_epoch_at(
        &mut self,
        epoch: u64,
        records: Vec<ProcessRecord>,
    ) -> std::io::Result<bool> {
        if self.open.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot import while an epoch is ingesting",
            ));
        }
        if self.committed.contains(&epoch) {
            return Ok(false);
        }
        let expected = self.next_epoch();
        if epoch != expected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("import at epoch {epoch} would leave a gap (next is {expected})"),
            ));
        }
        let mut span = self.metrics.traces.buffer().root("epoch.import", None);
        span.annotate("epoch", &epoch.to_string());
        let epoch_records: Vec<EpochRecord> = records
            .into_iter()
            .map(|record| EpochRecord { epoch, record })
            .collect();
        self.commit_records(epoch, epoch_records, Some((span.trace(), span.id())))?;
        span.finish();
        Ok(true)
    }

    /// The shared commit point: one atomic segment (fsync + rename
    /// inside) holding the epoch's rows plus its seal marker, then the
    /// snapshot publish. Cost is O(this epoch): the records move into
    /// the store items and back out into the new snapshot layer without
    /// a single clone, and `with_epoch` reuses every existing layer by
    /// `Arc` instead of re-indexing the whole history.
    fn commit_records(
        &mut self,
        epoch: u64,
        epoch_records: Vec<EpochRecord>,
        trace: Option<(TraceId, SpanId)>,
    ) -> std::io::Result<()> {
        let mut items: Vec<StoredItem> = epoch_records
            .into_iter()
            .map(|row| StoredItem::Row(Box::new(row)))
            .collect();
        items.push(StoredItem::Seal(epoch));
        let commit_start = Instant::now();
        self.store.append_sealed(&items)?;
        self.shared.publish_sealed_bytes(self.store.sealed_bytes());
        let commit_elapsed = commit_start.elapsed();
        self.metrics.commit_ns.record_duration(commit_elapsed);
        if let Some((trace, parent)) = trace {
            self.metrics.traces.buffer().record_past(
                trace,
                Some(parent),
                "commit",
                commit_start,
                commit_elapsed,
            );
        }
        let epoch_records: Vec<EpochRecord> = items
            .into_iter()
            .filter_map(|item| match item {
                StoredItem::Row(row) => Some(*row),
                StoredItem::Seal(_) => None,
            })
            .collect();

        self.committed.insert(epoch);
        self.metrics.epochs_committed.inc();
        self.metrics
            .records_committed
            .add(epoch_records.len() as u64);
        // Publish: build the successor snapshot off to the side, then
        // swap the shared pointer. Queries in flight keep the snapshot
        // they started with; new queries see the epoch atomically. The
        // base is re-read from the shared state so a background layer
        // merge published since the last commit is kept, not clobbered.
        let publish_start = Instant::now();
        let next = Arc::new(self.shared.load().with_epoch(epoch_records));
        self.shared.store(next);
        let publish_elapsed = publish_start.elapsed();
        self.metrics.publish_ns.record_duration(publish_elapsed);
        if let Some((trace, parent)) = trace {
            self.metrics.traces.buffer().record_past(
                trace,
                Some(parent),
                "publish",
                publish_start,
                publish_elapsed,
            );
        }
        self.shared.open_epoch.store(NO_EPOCH, Ordering::Relaxed);
        self.maintainer.ping();
        Ok(())
    }

    /// The current immutable query snapshot. The returned `Arc` stays
    /// valid (and internally consistent) however many epochs commit
    /// after it — clone it into as many reader threads as needed.
    pub fn snapshot(&self) -> Arc<QuerySnapshot> {
        self.shared.load()
    }

    /// Layers stacked in the current snapshot (bounded by the
    /// background merger; a fan-out diagnostic for tests and ops).
    pub fn snapshot_layers(&self) -> usize {
        self.shared.load().layer_count()
    }

    /// Background layer merges performed so far.
    pub fn snapshot_merges(&self) -> u64 {
        self.maintainer.merges()
    }

    /// Live ingest-health counters as a `Status` answer would carry
    /// them (protocol version 0 = in-process) — exactly the wire
    /// answer's code path, so the two can never diverge. When the
    /// query server is up, the query-traffic counters (refused
    /// connections, open cursors, negotiated-version histogram) are
    /// filled in exactly as a v2 wire answer would carry them.
    pub fn status(&self) -> StatusInfo {
        let mut status = self.shared.status(0);
        if let Some(server) = &self.server {
            server.fill_traffic_counters(&mut status);
        }
        match self
            .shared
            .load()
            .respond(status, &siren_proto::QueryRequest::Status)
        {
            siren_proto::QueryResponse::Status(status) => status,
            _ => unreachable!("Status request always yields a Status response"),
        }
    }

    /// The full pipeline telemetry snapshot — every `store.*`,
    /// `ingest.*`, `service.*`, `query.*`, and `cursor.*` series this
    /// daemon's components have registered, plus the slow-query log.
    /// Exactly what a wire `Metrics` request returns, read from the
    /// same registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.registry.snapshot()
    }

    /// Reassembled trace trees from the daemon's span flight recorder —
    /// exactly what a wire `Traces` request returns, read from the same
    /// ring. Covers request traces (plan/fetch/serialize), epoch
    /// pipelines (`epoch.ingest` with recv/reassembly/wal_insert/
    /// commit/publish children), and background work (layer merges,
    /// store compaction).
    pub fn traces(&self, filter: &TraceFilter) -> Vec<TraceTree> {
        self.metrics.traces.traces(filter)
    }

    /// The address the embedded query server is listening on, if
    /// [`ServiceConfig::query_addr`] was set.
    pub fn query_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(QueryServer::local_addr)
    }

    /// Sealed consolidated-store bytes on disk — the replication
    /// "bytes behind" yardstick ([`StatusInfo::repl_lag_bytes`] is the
    /// leader's figure minus the follower's).
    ///
    /// [`StatusInfo::repl_lag_bytes`]: siren_proto::StatusInfo
    pub fn sealed_bytes(&self) -> u64 {
        self.shared.sealed_bytes()
    }

    /// The daemon's metric handles, for in-crate tiers (the replicator)
    /// that record into the same registry the wire `Metrics` reply
    /// snapshots.
    pub(crate) fn service_metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Protocol requests the query server has answered so far.
    pub fn queries_served(&self) -> u64 {
        self.server
            .as_ref()
            .map(QueryServer::requests_served)
            .unwrap_or(0)
    }

    /// Query connections accepted and refused (queue full) so far —
    /// refusals rising is the signal to raise
    /// [`ServiceConfig::query_workers`] / `query_backlog`.
    pub fn query_connections(&self) -> (u64, u64) {
        self.server
            .as_ref()
            .map(|s| (s.connections_accepted(), s.connections_refused()))
            .unwrap_or((0, 0))
    }

    /// Paginated v2 cursors currently parked (each pins the snapshot
    /// its plan opened on; bounded by [`ServiceConfig::cursor_ttl`] and
    /// [`ServiceConfig::query_max_cursors`]).
    pub fn open_cursors(&self) -> u64 {
        self.server
            .as_ref()
            .map(QueryServer::open_cursors)
            .unwrap_or(0)
    }

    /// Drain decoded datagrams from a UDP receiver into the epoch
    /// lifecycle until `max_epochs` epochs have committed, falling back
    /// to [`ServiceConfig::quiet_period`] when a campaign's every
    /// sentinel copy was lost: after that much silence an open epoch is
    /// committed anyway (counted, and surfaced in the `Status` query),
    /// and silence with **no** open epoch ends the drain.
    pub fn drain_udp(
        &mut self,
        receiver: &UdpReceiver,
        max_epochs: usize,
    ) -> std::io::Result<Vec<EpochSummary>> {
        const TICK: Duration = Duration::from_millis(20);
        let quiet_limit = (self.cfg.quiet_period.as_millis() / TICK.as_millis()).max(1) as u32;
        let mut quiet = 0u32;
        let mut summaries = Vec::new();
        while summaries.len() < max_epochs {
            match receiver.recv_timeout(TICK) {
                Some(msg) => {
                    quiet = 0;
                    if let Some(summary) = self.push(msg)? {
                        summaries.push(summary);
                    }
                }
                None => {
                    quiet += 1;
                    if quiet >= quiet_limit {
                        if self.open.is_none() {
                            break;
                        }
                        self.shared.quiet_period_fallbacks.inc();
                        summaries.push(self.close_epoch()?);
                        quiet = 0;
                    }
                }
            }
        }
        Ok(summaries)
    }

    /// The daemon's data directory.
    pub fn data_dir(&self) -> &Path {
        &self.cfg.data_dir
    }

    /// Abandon the open epoch *without committing*, quiescing its shard
    /// workers first so their WAL files are fully flushed — the
    /// repeatable stand-in for `kill -9` in crash-recovery tests (a real
    /// kill additionally tears the WAL tails; tests fuzz that by
    /// truncating the files afterwards).
    pub fn simulate_crash(mut self) -> std::io::Result<()> {
        if let Some(open) = self.open.take() {
            let _ = open.service.finish()?;
        }
        Ok(())
    }
}
