//! # siren-service — the long-running SIREN ingest daemon
//!
//! The paper's receiver is a continuously running service: collectors on
//! thousands of nodes fire datagrams at it around the clock, and analysts
//! query the accumulated database. The seed reproduction only ever ran
//! campaign-scoped (spawn ingest, drain one campaign, consolidate, exit);
//! this crate turns that into a daemon:
//!
//! * Campaigns arrive as **epochs**, delimited by the existing `TYPE=END`
//!   sentinels (optionally epoch-tagged — see
//!   `siren_wire::sentinel_message_with_epoch`). Each epoch runs the
//!   sharded ingest service with per-shard persistence under the
//!   daemon's data directory.
//! * On close, an epoch is consolidated and **committed atomically** to a
//!   consolidated-record store (`siren-store`'s segmented backend,
//!   `append_sealed`): after any crash either the whole epoch is present
//!   or its raw message WALs still are — never both halves.
//! * A restarted daemon recovers committed epochs from the segmented
//!   store and resumes the uncommitted epoch from its shard WALs; a full
//!   re-send of the interrupted campaign converges to exactly the records
//!   a never-crashed run would hold, because consolidation groups by
//!   process key and is idempotent under duplicate rows.
//! * Each commit publishes an immutable, `Arc`-shared, **layered**
//!   [`QuerySnapshot`] behind an atomic pointer swap, so queries run
//!   lock-free while the next epoch ingests: per-job lookups, library
//!   usage by host/time range (through `siren-analysis`, which renders
//!   its tables from the same selections), and fuzzy-hash
//!   nearest-neighbor search (n-gram-index pruned). The commit indexes
//!   only the new epoch into a [`SnapshotLayer`] and reuses every
//!   earlier layer by `Arc` — O(epoch), not O(history) — while a
//!   background thread merges small layers to bound query fan-out.
//! * With [`ServiceConfig::query_addr`] set, an embedded TCP
//!   **query server** (bounded worker pool, per-connection deadlines)
//!   answers the versioned `siren-proto` wire protocol; the blocking
//!   [`siren_proto::SirenClient`] is the typed client side.
//!
//! ```text
//!            epoch N stream          epoch N close        TCP queries
//! push(msg) ──▶ IngestService ──▶ consolidate ──▶ EpochRecord segment
//!                │ shard WALs        (siren-consolidate)   │ (append_sealed)
//!                ▼                                         ▼
//!        data_dir/epoch-N.*.msgs.shard*       data_dir/consolidated/{seg,run}*
//!                                                          │ commit = snapshot swap
//!                                              Arc<QuerySnapshot> ◀── QueryServer workers
//! ```

pub mod daemon;
pub mod replicate;
pub mod snapshot;

pub(crate) mod maintain;
pub(crate) mod metrics;
pub(crate) mod plan;
pub(crate) mod server;

pub use daemon::{DaemonRecovery, EpochRecord, EpochSummary, ServiceConfig, SirenDaemon};
pub use replicate::{Replicator, ReplicatorConfig};
pub use siren_obs::{MetricsSnapshot, SlowQueryEntry};
pub use siren_proto::{Order, PlanRow, PlanSource, Projection, QueryPlan, Selection};
pub use snapshot::{
    Neighbor, QuerySnapshot, SnapshotLayer, SnapshotSelection, HARD_MAX_LAYERS, SOFT_MAX_LAYERS,
};
