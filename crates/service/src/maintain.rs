//! Background snapshot maintenance: the layer-merge thread.
//!
//! Every epoch commit stacks one more [`SnapshotLayer`] onto the
//! published [`QuerySnapshot`]; each query visits each layer, so
//! fan-out must stay bounded without putting the O(merged records)
//! rebuild back on the commit path. The [`SnapshotMaintainer`] owns a
//! single thread that wakes on a ping after each publish and, while the
//! published snapshot stacks more than
//! [`SOFT_MAX_LAYERS`](crate::snapshot::SOFT_MAX_LAYERS) layers, folds
//! the smallest adjacent pair and re-publishes.
//!
//! Publication is optimistic: the merged snapshot is built off to the
//! side from a loaded `Arc`, then swapped in **only if the pointer is
//! unchanged** ([`SharedState::replace_if`]) — if the daemon committed
//! another epoch meanwhile, the stale merge is discarded and the next
//! ping retries against the fresh snapshot. Merged snapshots answer
//! every query identically (merging only concatenates adjacent layers),
//! so the swap is invisible to readers; a lost race costs only the
//! discarded work. Commit rates that outrun this thread are capped by
//! `with_epoch`'s inline merge at
//! [`HARD_MAX_LAYERS`](crate::snapshot::HARD_MAX_LAYERS).
//!
//! Completed merges are counted in `service.snapshot_merges` and timed
//! into `service.merge_ns` (the handles come from the daemon's
//! [`ServiceMetrics`](crate::metrics::ServiceMetrics) bundle, so
//! in-process and wire telemetry read the same atomics).

use crate::daemon::SharedState;
use crossbeam::channel::{bounded, Sender};
use siren_obs::{Counter, Histogram, SpanBuffer, TraceId};
use std::sync::Arc;
use std::time::Instant;

/// Handle on the merge thread. Dropping it closes the ping channel and
/// joins the thread.
#[derive(Debug)]
pub(crate) struct SnapshotMaintainer {
    tx: Option<Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
    merges: Arc<Counter>,
}

impl SnapshotMaintainer {
    /// Spawn the merge thread against the daemon's shared state,
    /// recording completed merges into `merges` / `merge_ns` and a root
    /// `maintain.merge` span per published merge into `spans` (lost
    /// races and no-op wakeups record nothing — only work that reached
    /// readers shows up in traces).
    pub(crate) fn spawn(
        shared: Arc<SharedState>,
        merges: Arc<Counter>,
        merge_ns: Arc<Histogram>,
        spans: Arc<SpanBuffer>,
    ) -> std::io::Result<Self> {
        // One slot is enough: a pending ping already covers any number
        // of commits behind it (the thread always re-loads the current
        // snapshot), so `ping`'s try_send coalesces bursts for free.
        let (tx, rx) = bounded::<()>(1);
        let thread_merges = Arc::clone(&merges);
        let handle = std::thread::Builder::new()
            .name("siren-snapshot-merge".into())
            .spawn(move || {
                while rx.recv().is_ok() {
                    loop {
                        let snapshot = shared.load();
                        let start = Instant::now();
                        let Some(merged) = snapshot.merged_once() else {
                            break;
                        };
                        if !shared.replace_if(&snapshot, Arc::new(merged)) {
                            // A commit raced the merge; the ping it
                            // sent will bring us back for the fresh
                            // snapshot.
                            break;
                        }
                        let elapsed = start.elapsed();
                        merge_ns.record_duration(elapsed);
                        thread_merges.inc();
                        spans.record_past(
                            TraceId::generate(),
                            None,
                            "maintain.merge",
                            start,
                            elapsed,
                        );
                    }
                }
            })?;
        Ok(Self {
            tx: Some(tx),
            handle: Some(handle),
            merges,
        })
    }

    /// Nudge the thread after a publish (never blocks; a full slot
    /// means a wake-up is already pending).
    pub(crate) fn ping(&self) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(());
        }
    }

    /// Background merges performed so far (the `service.snapshot_merges`
    /// counter).
    pub(crate) fn merges(&self) -> u64 {
        self.merges.get()
    }
}

impl Drop for SnapshotMaintainer {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
