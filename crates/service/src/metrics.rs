//! The daemon's metric handles and its per-daemon [`Registry`].
//!
//! One [`ServiceMetrics`] bundle is created per [`SirenDaemon`]
//! (never a process-global static: parallel daemons in one test binary
//! must not cross-pollute). It owns the `Arc<Registry>` every tier of
//! the pipeline registers into — the store via
//! [`siren_store::StoreMetrics`], ingest via
//! [`siren_ingest::IngestMetrics`], and the daemon/server/cursor
//! handles below — so a single [`Registry::snapshot`] covers the whole
//! pipeline and backs both the wire `Metrics` reply and the in-process
//! [`SirenDaemon::metrics_snapshot`](crate::SirenDaemon::metrics_snapshot).
//!
//! [`SirenDaemon`]: crate::SirenDaemon

use siren_obs::{Counter, Gauge, Histogram, Registry, TraceStore};
use std::sync::Arc;

/// `Arc` handles for the `service.*`, `query.*`, and `cursor.*`
/// metrics, plus the registry they live in.
#[derive(Debug, Clone)]
pub(crate) struct ServiceMetrics {
    /// The daemon-wide registry (store and ingest handles register here
    /// too).
    pub registry: Arc<Registry>,
    /// The daemon-wide trace flight recorder: every tier records spans
    /// into its shared buffer, and the wire `Traces` request reads
    /// reassembled trees back out of it. Cloning shares the buffer.
    pub traces: TraceStore,

    // ---- epoch lifecycle ----
    /// `service.commit_ns` — durable epoch commit (sealed segment
    /// append, fsync included).
    pub commit_ns: Arc<Histogram>,
    /// `service.publish_ns` — successor-snapshot build + pointer swap.
    pub publish_ns: Arc<Histogram>,
    /// `service.epochs_committed` — epochs durably committed.
    pub epochs_committed: Arc<Counter>,
    /// `service.records_committed` — consolidated records committed.
    pub records_committed: Arc<Counter>,
    /// `service.epoch_tag_mismatches` — sentinels naming another epoch.
    pub epoch_tag_mismatches: Arc<Counter>,
    /// `service.io_errors` — survivable filesystem failures in the
    /// service tier (stale-WAL unlinks after the data is already
    /// durable elsewhere). Commit-path failures are never counted
    /// here: they propagate as typed errors, because continuing past
    /// a failed fsync would un-durable the epoch.
    pub io_errors: Arc<Counter>,
    /// `service.quiet_period_fallbacks` — epochs closed by silence
    /// instead of a sentinel quorum.
    pub quiet_period_fallbacks: Arc<Counter>,
    /// `service.merge_ns` — background snapshot layer merges.
    pub merge_ns: Arc<Histogram>,
    /// `service.snapshot_merges` — completed background merges.
    pub snapshot_merges: Arc<Counter>,

    // ---- query server ----
    /// `query.connections_accepted` — connections taken into the pool.
    pub connections_accepted: Arc<Counter>,
    /// `query.connections_refused` — connections shed, queue full.
    pub connections_refused: Arc<Counter>,
    /// `query.requests` — protocol requests answered (errors included).
    pub requests: Arc<Counter>,
    /// `query.negotiated_v1` / `query.negotiated_v2` /
    /// `query.negotiated_v3` — the negotiated-version histogram.
    pub negotiated_v1: Arc<Counter>,
    pub negotiated_v2: Arc<Counter>,
    pub negotiated_v3: Arc<Counter>,
    /// `query.queue_wait_ns` — accepted connection's wait for a worker.
    pub queue_wait_ns: Arc<Histogram>,
    /// `query.exec_ns` — request execution, decode to reply written.
    pub exec_ns: Arc<Histogram>,
    /// `query.batch_serialize_ns` — encoding one row-batch frame.
    pub batch_serialize_ns: Arc<Histogram>,
    /// `query.fuzzy_scan_fallbacks` — neighbor plans whose n-gram index
    /// gave up pruning and full-scanned a layer corpus.
    pub fuzzy_scan_fallbacks: Arc<Counter>,

    // ---- reactor serving tier ----
    /// `net.active_connections` — connections registered with an event
    /// loop right now (the gauge keeps its high-water mark).
    pub active_connections: Arc<Gauge>,
    /// `reactor.wakeups` — event-loop wakeups (readiness, notify, or
    /// timer expiry).
    pub reactor_wakeups: Arc<Counter>,
    /// `stream.compressed_frames` — v3 reply frames shipped with an
    /// LZ-compressed body.
    pub compressed_frames: Arc<Counter>,
    /// `stream.compressed_bytes_saved` — raw-minus-wire bytes across
    /// those frames.
    pub compressed_bytes_saved: Arc<Counter>,
    /// `prefetch.pages_built` — next cursor pages precomputed at park
    /// time.
    pub prefetch_pages_built: Arc<Counter>,
    /// `prefetch.pages_served` — cursor fetches answered from a
    /// prefetched page.
    pub prefetch_pages_served: Arc<Counter>,

    // ---- replication ----
    /// `repl.subscriptions` — `SubscribeEpochs` streams this daemon
    /// has served as a leader.
    pub repl_subscriptions: Arc<Counter>,
    /// `repl.epochs_shipped` — epochs this leader streamed to
    /// subscribers (commit markers sent).
    pub repl_epochs_shipped: Arc<Counter>,
    /// `repl.records_shipped` — records across those epochs.
    pub repl_records_shipped: Arc<Counter>,
    /// `repl.bytes_shipped` — encoded reply-body bytes of epoch
    /// batches, pre-compression.
    pub repl_bytes_shipped: Arc<Counter>,
    /// `repl.epochs_applied` — epochs this follower applied locally.
    pub repl_epochs_applied: Arc<Counter>,
    /// `repl.records_applied` — records across those epochs.
    pub repl_records_applied: Arc<Counter>,
    /// `repl.apply_ns` — follower apply latency per epoch (verify +
    /// durable commit + publish).
    pub repl_apply_ns: Arc<Histogram>,
    /// `repl.reconnects` — times the follower's loop re-dialed its
    /// leader (first connect included).
    pub repl_reconnects: Arc<Counter>,
    /// `repl.retries` — backoff sleeps the follower's loop took after
    /// a failed dial or torn subscription.
    pub repl_retries: Arc<Counter>,
    /// `repl.lag_epochs` — epochs the follower trails its leader by,
    /// as of the last subscription exchange.
    pub repl_lag_epochs: Arc<Gauge>,
    /// `repl.lag_bytes` — sealed-store bytes behind the leader, as of
    /// the last subscription exchange.
    pub repl_lag_bytes: Arc<Gauge>,
    /// `repl.high_water` — the next epoch this follower would request:
    /// everything below it is applied and durable locally.
    pub repl_high_water: Arc<Gauge>,

    // ---- cursor table ----
    /// `cursor.open` — cursors parked right now (high-water kept).
    pub cursors_open: Arc<Gauge>,
    /// `cursor.hits` — fetches that found their cursor parked.
    pub cursor_hits: Arc<Counter>,
    /// `cursor.misses` — fetches of unknown/expired cursor ids.
    pub cursor_misses: Arc<Counter>,
    /// `cursor.evicted_capacity` — evictions to admit a newer cursor.
    pub cursor_evicted_capacity: Arc<Counter>,
    /// `cursor.evicted_ttl` — evictions of idle-past-TTL cursors.
    pub cursor_evicted_ttl: Arc<Counter>,
}

impl ServiceMetrics {
    /// A fresh registry with every service-tier handle registered.
    pub(crate) fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            registry: Arc::clone(&registry),
            traces: TraceStore::default(),
            commit_ns: registry.histogram("service.commit_ns"),
            publish_ns: registry.histogram("service.publish_ns"),
            epochs_committed: registry.counter("service.epochs_committed"),
            records_committed: registry.counter("service.records_committed"),
            epoch_tag_mismatches: registry.counter("service.epoch_tag_mismatches"),
            io_errors: registry.counter("service.io_errors"),
            quiet_period_fallbacks: registry.counter("service.quiet_period_fallbacks"),
            merge_ns: registry.histogram("service.merge_ns"),
            snapshot_merges: registry.counter("service.snapshot_merges"),
            connections_accepted: registry.counter("query.connections_accepted"),
            connections_refused: registry.counter("query.connections_refused"),
            requests: registry.counter("query.requests"),
            negotiated_v1: registry.counter("query.negotiated_v1"),
            negotiated_v2: registry.counter("query.negotiated_v2"),
            negotiated_v3: registry.counter("query.negotiated_v3"),
            queue_wait_ns: registry.histogram("query.queue_wait_ns"),
            exec_ns: registry.histogram("query.exec_ns"),
            batch_serialize_ns: registry.histogram("query.batch_serialize_ns"),
            fuzzy_scan_fallbacks: registry.counter("query.fuzzy_scan_fallbacks"),
            active_connections: registry.gauge("net.active_connections"),
            reactor_wakeups: registry.counter("reactor.wakeups"),
            compressed_frames: registry.counter("stream.compressed_frames"),
            compressed_bytes_saved: registry.counter("stream.compressed_bytes_saved"),
            prefetch_pages_built: registry.counter("prefetch.pages_built"),
            prefetch_pages_served: registry.counter("prefetch.pages_served"),
            repl_subscriptions: registry.counter("repl.subscriptions"),
            repl_epochs_shipped: registry.counter("repl.epochs_shipped"),
            repl_records_shipped: registry.counter("repl.records_shipped"),
            repl_bytes_shipped: registry.counter("repl.bytes_shipped"),
            repl_epochs_applied: registry.counter("repl.epochs_applied"),
            repl_records_applied: registry.counter("repl.records_applied"),
            repl_apply_ns: registry.histogram("repl.apply_ns"),
            repl_reconnects: registry.counter("repl.reconnects"),
            repl_retries: registry.counter("repl.retries"),
            repl_lag_epochs: registry.gauge("repl.lag_epochs"),
            repl_lag_bytes: registry.gauge("repl.lag_bytes"),
            repl_high_water: registry.gauge("repl.high_water"),
            cursors_open: registry.gauge("cursor.open"),
            cursor_hits: registry.counter("cursor.hits"),
            cursor_misses: registry.counter("cursor.misses"),
            cursor_evicted_capacity: registry.counter("cursor.evicted_capacity"),
            cursor_evicted_ttl: registry.counter("cursor.evicted_ttl"),
        }
    }

    /// Detached handles backed by a private registry nobody snapshots —
    /// for in-process plan execution outside any daemon.
    pub(crate) fn detached() -> Self {
        Self::new()
    }
}
