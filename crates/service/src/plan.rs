//! Server-side plan execution: streaming cursors over a pinned
//! snapshot, and the TTL-evicting table that parks them between pages.
//!
//! A [`PlanCursor`] is opened against one `Arc<QuerySnapshot>` and
//! holds that `Arc` for its whole life — however many epochs commit
//! (and however many background layer merges republish) while a client
//! pages through, every batch comes from the same immutable snapshot,
//! so pagination can never tear across a commit. The cost of that pin
//! is bounded by the cursor table's TTL and capacity: an abandoned
//! cursor is evicted and its snapshot reference dropped.
//!
//! Epoch-slice plans are answered **straight from the matching
//! [`SnapshotLayer`](crate::snapshot::SnapshotLayer)s**: a layer whose
//! epochs all fail the selection's epoch conditions is skipped without
//! touching a record, and a layer whose epochs all pass an epoch-only
//! selection streams its records without per-record filtering. The
//! layered commit path (PR 4) keeps most epochs in their own layer, so
//! a `Selection::epochs(lo, hi)` scan touches just those layers.

use crate::daemon::EpochRecord;
use crate::metrics::ServiceMetrics;
use crate::snapshot::QuerySnapshot;
use siren_analysis::{usage_table, UsageRow};
use siren_consolidate::ProcessRecord;
use siren_proto::{
    NeighborRow, Order, PlanSource, QueryError, QueryPlan, RecordRow, RowBatch, Selection,
    MAX_BATCH_ROWS, MAX_PAGE_ROWS,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Soft byte budget per batch frame: a batch is flushed early once its
/// rows approach this, keeping every frame far under the protocol's
/// hard frame cap whatever the plan's `batch_rows` says.
pub(crate) const BATCH_BYTE_BUDGET: usize = 1 << 20;

/// Rough wire size of one record row — enough fidelity for the batch
/// byte budget (the exact size is only known after encoding).
fn approx_record_bytes(record: &ProcessRecord) -> usize {
    let opt_vec = |v: &Option<Vec<String>>| {
        v.as_ref()
            .map(|v| v.iter().map(|s| s.len() + 4).sum::<usize>() + 4)
            .unwrap_or(1)
    };
    let opt_str = |s: &Option<String>| s.as_ref().map(|s| s.len() + 4).unwrap_or(1);
    64 + record.key.exe_hash.len()
        + record.key.host.len()
        + record
            .meta
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum::<usize>()
        + opt_vec(&record.objects)
        + opt_vec(&record.modules)
        + opt_vec(&record.compilers)
        + opt_vec(&record.maps)
        + opt_str(&record.objects_hash)
        + opt_str(&record.modules_hash)
        + opt_str(&record.compilers_hash)
        + opt_str(&record.maps_hash)
        + opt_str(&record.file_hash)
        + opt_str(&record.strings_hash)
        + opt_str(&record.symbols_hash)
        + record
            .script
            .as_ref()
            .map(|s| {
                16 + opt_str(&s.path)
                    + opt_str(&s.script_hash)
                    + s.meta
                        .iter()
                        .map(|(k, v)| k.len() + v.len() + 8)
                        .sum::<usize>()
            })
            .unwrap_or(1)
}

/// Where a record-scan cursor stands: always parked **on the next
/// matching record** (or one past the last layer), so exhaustion is
/// known without a speculative scan per batch.
#[derive(Debug)]
enum State {
    /// Lazy commit-order scan over the layer stack.
    Scan { layer: usize, idx: usize },
    /// Pre-resolved record positions (time-ordered plans).
    Ids { ids: Vec<(u32, u32)>, next: usize },
    /// Pre-aggregated usage rows.
    Usage { rows: Vec<UsageRow>, next: usize },
    /// Pre-ranked neighbor hits as `(score, layer, record-index)`.
    Neighbors {
        hits: Vec<(u32, u32, u32)>,
        next: usize,
    },
}

/// One open plan: the pinned snapshot, the plan, and the position.
#[derive(Debug)]
pub(crate) struct PlanCursor {
    snapshot: Arc<QuerySnapshot>,
    plan: QueryPlan,
    state: State,
    /// Rows still allowed by the plan's limit (`u64::MAX` = unlimited).
    remaining: u64,
    /// Stable identity of the plan for the slow-query log.
    fingerprint: u64,
    /// Structural description of the plan (no predicate values).
    shape: String,
    /// Trace context of the request that opened this plan: `(trace,
    /// root span)`. Parked with the cursor, so a later `FetchCursor` —
    /// possibly on another connection — parents its span back into the
    /// same trace tree.
    trace: Option<(siren_obs::TraceId, siren_obs::SpanId)>,
}

impl PlanCursor {
    /// Validate `plan` and resolve it against `snapshot` far enough to
    /// stream: lazy for commit-order scans, materialized (positions,
    /// not rows) for ordered scans and aggregations. Neighbor plans
    /// whose n-gram index degenerated to a full corpus scan are counted
    /// into `metrics.fuzzy_scan_fallbacks`.
    pub(crate) fn open(
        snapshot: Arc<QuerySnapshot>,
        plan: QueryPlan,
        metrics: &ServiceMetrics,
    ) -> Result<PlanCursor, QueryError> {
        plan.validate()?;
        let remaining = plan.limit.unwrap_or(u64::MAX);
        let state = match &plan.source {
            PlanSource::Records => match plan.order {
                Order::Commit => State::Scan { layer: 0, idx: 0 },
                Order::TimeAsc | Order::TimeDesc => {
                    let mut ids: Vec<(u32, u32)> = Vec::new();
                    for_each_matching(&snapshot, &plan, |li, ri, _| {
                        ids.push((li as u32, ri as u32))
                    });
                    let time_of = |&(li, ri): &(u32, u32)| {
                        snapshot.layer_stack()[li as usize].layer_records()[ri as usize]
                            .record
                            .key
                            .time
                    };
                    // Stable sorts: ties keep commit order, exactly as
                    // the client-side v1 fallback resolves them.
                    match plan.order {
                        Order::TimeAsc => ids.sort_by_key(time_of),
                        _ => ids.sort_by_key(|id| std::cmp::Reverse(time_of(id))),
                    }
                    State::Ids { ids, next: 0 }
                }
            },
            PlanSource::UsageTable => {
                // References only: the aggregation reads each record
                // once, so matching records must not be deep-cloned
                // (a broad selection would momentarily copy the store).
                let mut records: Vec<&ProcessRecord> = Vec::new();
                for_each_matching(&snapshot, &plan, |_, _, er| records.push(&er.record));
                State::Usage {
                    rows: usage_table(records),
                    next: 0,
                }
            }
            PlanSource::Neighbors { hash, min_score } => {
                // Neighbors are ranked *over the selection*: filter
                // first, then let `remaining` (the plan's limit) cap
                // the emitted hits — truncating to k before the filter
                // would drop in-selection hits shadowed by better
                // out-of-selection ones. Only an unfiltered plan can
                // safely push the limit down into the search.
                let k = if plan.selection.is_unfiltered() {
                    usize::try_from(remaining).unwrap_or(usize::MAX)
                } else {
                    usize::MAX
                };
                // Hits are ranked best-first and `remaining` caps
                // emission, so truncating after the filter is
                // behavior-preserving — and keeps a parked cursor from
                // holding every matching hit in the store for its TTL.
                let (hits, scan_fallbacks) = snapshot.neighbor_hits(hash, k, *min_score);
                metrics.fuzzy_scan_fallbacks.add(scan_fallbacks);
                let hits = hits
                    .into_iter()
                    .filter(|&(_, li, ri)| {
                        let er = &snapshot.layer_stack()[li as usize].layer_records()[ri as usize];
                        plan.selection.matches(er.epoch, &er.record)
                    })
                    .take(usize::try_from(remaining).unwrap_or(usize::MAX))
                    .collect();
                State::Neighbors { hits, next: 0 }
            }
        };
        let fingerprint = plan.fingerprint();
        let shape = plan.shape();
        let mut cursor = PlanCursor {
            snapshot,
            plan,
            state,
            remaining,
            fingerprint,
            shape,
            trace: None,
        };
        if let State::Scan { layer, idx } = &mut cursor.state {
            advance_scan(&cursor.snapshot, &cursor.plan.selection, layer, idx);
        }
        Ok(cursor)
    }

    /// Stable identity of the plan for the slow-query log.
    pub(crate) fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Structural description of the plan (no predicate values).
    pub(crate) fn shape(&self) -> &str {
        &self.shape
    }

    /// Attach the opening request's trace context, carried across parks
    /// so cursor fetches rejoin the plan's trace tree.
    pub(crate) fn set_trace(&mut self, trace: siren_obs::TraceId, root: siren_obs::SpanId) {
        self.trace = Some((trace, root));
    }

    /// The `(trace, root span)` context the plan was opened under.
    pub(crate) fn trace_context(&self) -> Option<(siren_obs::TraceId, siren_obs::SpanId)> {
        self.trace
    }

    /// Rows per batch frame, clamped to the server bound.
    pub(crate) fn batch_rows(&self) -> usize {
        self.plan.batch_rows.clamp(1, MAX_BATCH_ROWS) as usize
    }

    /// Rows per reply before a cursor is handed out, clamped.
    pub(crate) fn page_rows(&self) -> usize {
        self.plan.page_rows.clamp(1, MAX_PAGE_ROWS) as usize
    }

    /// True when no further row can be produced.
    pub(crate) fn is_exhausted(&self) -> bool {
        if self.remaining == 0 {
            return true;
        }
        match &self.state {
            State::Scan { layer, .. } => *layer >= self.snapshot.layer_stack().len(),
            State::Ids { ids, next } => *next >= ids.len(),
            State::Usage { rows, next } => *next >= rows.len(),
            State::Neighbors { hits, next } => *next >= hits.len(),
        }
    }

    fn record_row(&self, li: u32, ri: u32) -> RecordRow {
        let er = &self.snapshot.layer_stack()[li as usize].layer_records()[ri as usize];
        let mut record = er.record.clone();
        self.plan.projection.apply(&mut record);
        RecordRow {
            epoch: er.epoch,
            record,
        }
    }

    /// Produce the next batch of up to `max_rows` rows (flushed early
    /// past `byte_budget`), or `None` when the stream is exhausted.
    pub(crate) fn next_batch(&mut self, max_rows: usize, byte_budget: usize) -> Option<RowBatch> {
        if self.is_exhausted() {
            return None;
        }
        let max_rows = max_rows.min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        let mut bytes = 0usize;
        // The state moves out for the duration so row production can
        // borrow the snapshot/plan freely.
        let mut state = std::mem::replace(
            &mut self.state,
            State::Usage {
                rows: Vec::new(),
                next: 0,
            },
        );
        let batch = match &mut state {
            State::Scan { layer, idx } => {
                let mut rows: Vec<RecordRow> = Vec::new();
                while rows.len() < max_rows
                    && bytes < byte_budget
                    && *layer < self.snapshot.layer_stack().len()
                {
                    let row = self.record_row(*layer as u32, *idx as u32);
                    bytes += approx_record_bytes(&row.record) + 12;
                    rows.push(row);
                    *idx += 1;
                    advance_scan(&self.snapshot, &self.plan.selection, layer, idx);
                }
                self.remaining = self.remaining.saturating_sub(rows.len() as u64);
                RowBatch::Records(rows)
            }
            State::Ids { ids, next } => {
                let mut rows: Vec<RecordRow> = Vec::new();
                while rows.len() < max_rows && bytes < byte_budget && *next < ids.len() {
                    let (li, ri) = ids[*next];
                    let row = self.record_row(li, ri);
                    bytes += approx_record_bytes(&row.record) + 12;
                    rows.push(row);
                    *next += 1;
                }
                self.remaining = self.remaining.saturating_sub(rows.len() as u64);
                RowBatch::Records(rows)
            }
            State::Usage { rows, next } => {
                // Same byte budget as the record arms: user names come
                // from untrusted ingest metadata, so a row count alone
                // does not bound the frame.
                let mut out: Vec<UsageRow> = Vec::new();
                while out.len() < max_rows && bytes < byte_budget && *next < rows.len() {
                    let row = rows[*next].clone();
                    bytes += row.user.len() + 36;
                    out.push(row);
                    *next += 1;
                }
                self.remaining = self.remaining.saturating_sub(out.len() as u64);
                RowBatch::Usage(out)
            }
            State::Neighbors { hits, next } => {
                let mut rows: Vec<NeighborRow> = Vec::new();
                while rows.len() < max_rows && bytes < byte_budget && *next < hits.len() {
                    let (score, li, ri) = hits[*next];
                    let row = self.record_row(li, ri);
                    bytes += approx_record_bytes(&row.record) + 16;
                    rows.push(NeighborRow {
                        score,
                        epoch: row.epoch,
                        record: row.record,
                    });
                    *next += 1;
                }
                self.remaining = self.remaining.saturating_sub(rows.len() as u64);
                RowBatch::Neighbors(rows)
            }
        };
        self.state = state;
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

/// Move a commit-order scan position forward to the next record
/// passing `selection`, pruning whole layers by their epoch sets, or
/// to one past the last layer.
fn advance_scan(
    snapshot: &QuerySnapshot,
    selection: &Selection,
    layer: &mut usize,
    idx: &mut usize,
) {
    let layers = snapshot.layer_stack();
    while *layer < layers.len() {
        let l = &layers[*layer];
        // Layer pruning: epoch-slice plans are answered from the
        // layers holding those epochs; a layer with no matching epoch
        // is skipped without touching a record.
        if *idx == 0 && !l.layer_epochs().iter().any(|&e| selection.matches_epoch(e)) {
            *layer += 1;
            continue;
        }
        let records = l.layer_records();
        // An epoch-only selection admitting every epoch in the layer
        // admits every record — park on the next one without testing.
        if selection.is_epoch_only() && l.layer_epochs().iter().all(|&e| selection.matches_epoch(e))
        {
            if *idx < records.len() {
                return;
            }
        } else {
            while *idx < records.len() {
                let er = &records[*idx];
                if selection.matches(er.epoch, &er.record) {
                    return;
                }
                *idx += 1;
            }
        }
        *layer += 1;
        *idx = 0;
    }
}

/// Walk every record passing the plan's selection, in commit order,
/// with whole layers pruned by their epoch sets first.
fn for_each_matching<'s>(
    snapshot: &'s QuerySnapshot,
    plan: &QueryPlan,
    mut visit: impl FnMut(usize, usize, &'s EpochRecord),
) {
    let selection = &plan.selection;
    for (li, layer) in snapshot.layer_stack().iter().enumerate() {
        if !layer
            .layer_epochs()
            .iter()
            .any(|&e| selection.matches_epoch(e))
        {
            continue;
        }
        // An epoch-only selection that admits every epoch in the layer
        // admits every record: stream the slab without per-record work.
        let whole_layer = selection.is_epoch_only()
            && layer
                .layer_epochs()
                .iter()
                .all(|&e| selection.matches_epoch(e));
        for (ri, er) in layer.layer_records().iter().enumerate() {
            if whole_layer || selection.matches(er.epoch, &er.record) {
                visit(li, ri, er);
            }
        }
    }
}

impl QuerySnapshot {
    /// Execute `plan` in-process to completion — the same
    /// [`PlanCursor`] the TCP server streams from, drained into a
    /// vector. This is the v2 analogue of the typed v1 snapshot
    /// methods, and the oracle E2E tests compare wire streams against.
    pub fn plan_rows(
        self: &Arc<Self>,
        plan: QueryPlan,
    ) -> Result<Vec<siren_proto::PlanRow>, QueryError> {
        // In-process execution outside any daemon: detached handles.
        let metrics = ServiceMetrics::detached();
        let mut cursor = PlanCursor::open(Arc::clone(self), plan, &metrics)?;
        let batch_rows = cursor.batch_rows();
        let mut rows = Vec::new();
        while let Some(batch) = cursor.next_batch(batch_rows, BATCH_BYTE_BUDGET) {
            rows.extend(batch.into_rows());
        }
        Ok(rows)
    }
}

/// A prefetched cursor page: already-serialized v2 batch bodies with
/// their row counts, served verbatim before the cursor produces
/// anything live.
pub(crate) type PrefetchedPage = Vec<(Vec<u8>, u32)>;

struct Parked {
    cursor: PlanCursor,
    /// The next page, precomputed at park time. Bounded by one page's
    /// rows/byte budget, and dropped with the entry on any eviction.
    /// Empty when prefetch is disabled.
    prefetched: PrefetchedPage,
    parked_at: Instant,
}

/// The server's cursor table: open cursors parked between pages, each
/// pinning its snapshot `Arc`. Bounded two ways — entries idle past
/// the TTL are evicted on every touch, and when the table is full the
/// stalest entry is evicted to admit the new one — so abandoned
/// clients can never pin unbounded snapshot memory.
///
/// Cursor ids are handed to untrusted peers on an unauthenticated
/// port, so they must not be guessable: a sequential id would let any
/// connection fetch (stealing the next page) or close every other
/// client's pagination by counting. Ids are a per-table random-keyed
/// SipHash of a private counter — unique per cursor, unpredictable
/// without the key.
#[derive(Debug)]
pub(crate) struct CursorTable {
    inner: Mutex<HashMap<u64, ParkedSlot>>,
    next_seq: AtomicU64,
    id_key: std::collections::hash_map::RandomState,
    ttl: Duration,
    capacity: usize,
    /// `cursor.*` handles: the open-count gauge (with its high-water
    /// mark) and the eviction counters split by cause.
    metrics: ServiceMetrics,
}

// A newtype keeps Debug for the table cheap (PlanCursor holds a whole
// snapshot).
struct ParkedSlot(Parked);

impl std::fmt::Debug for ParkedSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ParkedSlot(parked_at: {:?})", self.0.parked_at)
    }
}

impl CursorTable {
    pub(crate) fn new(ttl: Duration, capacity: usize, metrics: ServiceMetrics) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(1),
            id_key: std::collections::hash_map::RandomState::new(),
            ttl,
            capacity: capacity.max(1),
            metrics,
        }
    }

    /// An unpredictable, per-table-unique cursor id.
    fn mint_id(&self, table: &HashMap<u64, ParkedSlot>) -> u64 {
        use std::hash::{BuildHasher, Hasher};
        loop {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let mut hasher = self.id_key.build_hasher();
            hasher.write_u64(seq);
            let id = hasher.finish();
            // Astronomically unlikely 64-bit collision (or the reserved
            // zero): mint again rather than overwrite a live cursor.
            if id != 0 && !table.contains_key(&id) {
                return id;
            }
        }
    }

    /// TTL sweep; every expiry is an eviction by cause `ttl`.
    fn sweep(&self, table: &mut HashMap<u64, ParkedSlot>) {
        let ttl = self.ttl;
        let before = table.len();
        table.retain(|_, slot| slot.0.parked_at.elapsed() <= ttl);
        let expired = (before - table.len()) as u64;
        if expired > 0 {
            self.metrics.cursor_evicted_ttl.add(expired);
        }
    }

    /// Publish the current table size to the `cursor.open` gauge (and
    /// through it the high-water mark). Called under the table lock, so
    /// the gauge moves monotonically with the table.
    fn publish_open(&self, table: &HashMap<u64, ParkedSlot>) {
        self.metrics.cursors_open.set(table.len() as i64);
    }

    /// Park `cursor` (with its prefetched next page, possibly empty)
    /// and hand out its id.
    pub(crate) fn park(&self, cursor: PlanCursor, prefetched: PrefetchedPage) -> u64 {
        let mut table = self.inner.lock().expect("cursor table poisoned");
        self.sweep(&mut table);
        if table.len() >= self.capacity {
            // Full even after the sweep: evict the stalest entry so the
            // *live* client wins over whichever one has been idle
            // longest.
            if let Some(&stalest) = table
                .iter()
                .min_by_key(|(_, slot)| slot.0.parked_at)
                .map(|(id, _)| id)
            {
                table.remove(&stalest);
                self.metrics.cursor_evicted_capacity.inc();
            }
        }
        let id = self.mint_id(&table);
        table.insert(
            id,
            ParkedSlot(Parked {
                cursor,
                prefetched,
                parked_at: Instant::now(),
            }),
        );
        self.publish_open(&table);
        id
    }

    /// Remove and return the cursor `id` (plus its prefetched page),
    /// if it is still parked. The caller streams from it and re-parks
    /// if rows remain — taking it out keeps two connections from
    /// interleaving on one cursor. Hits and misses are counted
    /// (`cursor.hits` / `cursor.misses`).
    pub(crate) fn take(&self, id: u64) -> Option<(PlanCursor, PrefetchedPage)> {
        let mut table = self.inner.lock().expect("cursor table poisoned");
        self.sweep(&mut table);
        let found = table
            .remove(&id)
            .map(|slot| (slot.0.cursor, slot.0.prefetched));
        match found {
            Some(_) => self.metrics.cursor_hits.inc(),
            None => self.metrics.cursor_misses.inc(),
        }
        self.publish_open(&table);
        found
    }

    /// Drop cursor `id` if present (explicit close).
    pub(crate) fn remove(&self, id: u64) {
        let mut table = self.inner.lock().expect("cursor table poisoned");
        table.remove(&id);
        self.sweep(&mut table);
        self.publish_open(&table);
    }

    /// Cursors currently parked (the `Status` gauge).
    pub(crate) fn open_count(&self) -> u64 {
        let mut table = self.inner.lock().expect("cursor table poisoned");
        self.sweep(&mut table);
        self.publish_open(&table);
        table.len() as u64
    }
}
