//! Cross-epoch queries over the daemon's consolidated records.
//!
//! The engine indexes an [`EpochRecord`] slice (job id, epoch) and
//! answers the service workloads the paper's analysts ran against the
//! receiver database: per-job record lookups, library usage restricted
//! by host and collection-time range, and fuzzy-hash nearest-neighbor
//! search. Table-shaped results delegate to `siren-analysis`, so the
//! daemon serves exactly the computations the offline pipeline renders.

use crate::daemon::EpochRecord;
use siren_analysis::{library_usage, usage_table, LibraryUsageRow, UsageRow};
use siren_consolidate::ProcessRecord;
use siren_fuzzy::{similarity_search, FuzzyHash};
use std::collections::HashMap;

/// One nearest-neighbor hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighbor<'a> {
    /// Similarity score, 0–100.
    pub score: u32,
    /// Epoch the matching record was committed under.
    pub epoch: u64,
    /// The matching record.
    pub record: &'a ProcessRecord,
}

/// A reusable record filter: all conditions are ANDed.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    epoch: Option<u64>,
    host: Option<String>,
    time_range: Option<(u64, u64)>,
}

/// Cross-epoch query engine (cheap to build: one pass over the records).
pub struct QueryEngine<'a> {
    records: &'a [EpochRecord],
    by_job: HashMap<u64, Vec<usize>>,
}

impl<'a> QueryEngine<'a> {
    /// Index `records`.
    pub fn new(records: &'a [EpochRecord]) -> Self {
        let mut by_job: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, er) in records.iter().enumerate() {
            by_job.entry(er.record.key.job_id).or_default().push(i);
        }
        Self { records, by_job }
    }

    /// Total records across epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no epoch has committed records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct epochs present, ascending.
    pub fn epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> = self.records.iter().map(|r| r.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
    }

    /// Every record of one job, across epochs, in commit order.
    pub fn job_records(&self, job_id: u64) -> Vec<&'a EpochRecord> {
        self.by_job
            .get(&job_id)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// All records of one epoch, in consolidation order.
    pub fn epoch_records(&self, epoch: u64) -> Vec<&'a ProcessRecord> {
        self.records
            .iter()
            .filter(|r| r.epoch == epoch)
            .map(|r| &r.record)
            .collect()
    }

    /// Start building a filtered selection.
    pub fn select(&self) -> SelectionBuilder<'a, '_> {
        SelectionBuilder {
            engine: self,
            selection: Selection::default(),
        }
    }

    fn filtered(&self, sel: &Selection) -> Vec<&'a ProcessRecord> {
        self.records
            .iter()
            .filter(|er| {
                if let Some(e) = sel.epoch {
                    if er.epoch != e {
                        return false;
                    }
                }
                if let Some(h) = &sel.host {
                    if &er.record.key.host != h {
                        return false;
                    }
                }
                if let Some((lo, hi)) = sel.time_range {
                    if er.record.key.time < lo || er.record.key.time > hi {
                        return false;
                    }
                }
                true
            })
            .map(|er| &er.record)
            .collect()
    }

    /// Fuzzy-hash nearest neighbors of `hash` (an SSDeep-style
    /// `block:sig1:sig2` string) over the records' `FILE_H` column.
    /// Returns up to `k` hits scoring at least `min_score`, best first.
    pub fn nearest_neighbors(&self, hash: &str, k: usize, min_score: u32) -> Vec<Neighbor<'a>> {
        let Ok(baseline) = FuzzyHash::parse(hash) else {
            return Vec::new();
        };
        let mut corpus: Vec<FuzzyHash> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        for (i, er) in self.records.iter().enumerate() {
            if let Some(h) = &er.record.file_hash {
                if let Ok(parsed) = FuzzyHash::parse(h) {
                    corpus.push(parsed);
                    owners.push(i);
                }
            }
        }
        similarity_search(&baseline, &corpus, min_score)
            .into_iter()
            .take(k)
            .map(|hit| {
                let er = &self.records[owners[hit.index]];
                Neighbor {
                    score: hit.score,
                    epoch: er.epoch,
                    record: &er.record,
                }
            })
            .collect()
    }
}

/// Fluent filter over a [`QueryEngine`].
pub struct SelectionBuilder<'a, 'e> {
    engine: &'e QueryEngine<'a>,
    selection: Selection,
}

impl<'a> SelectionBuilder<'a, '_> {
    /// Restrict to one epoch.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.selection.epoch = Some(epoch);
        self
    }

    /// Restrict to one host.
    pub fn host(mut self, host: &str) -> Self {
        self.selection.host = Some(host.to_string());
        self
    }

    /// Restrict to `start ..= end` collection timestamps.
    pub fn time_between(mut self, start: u64, end: u64) -> Self {
        self.selection.time_range = Some((start, end));
        self
    }

    /// Matching records.
    pub fn records(self) -> Vec<&'a ProcessRecord> {
        self.engine.filtered(&self.selection)
    }

    /// Library usage over the selection (`siren-analysis` aggregation —
    /// the same computation behind the paper's library tables).
    pub fn library_usage(self) -> Vec<LibraryUsageRow> {
        let records = self.engine.filtered(&self.selection);
        library_usage(records)
    }

    /// The paper's Table-2 usage breakdown over the selection.
    pub fn usage_table(self) -> Vec<UsageRow> {
        let records: Vec<ProcessRecord> = self
            .engine
            .filtered(&self.selection)
            .into_iter()
            .cloned()
            .collect();
        usage_table(&records)
    }
}
