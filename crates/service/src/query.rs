//! Deprecated borrowing shims over [`QuerySnapshot`].
//!
//! The original `QueryEngine<'a>` was lifetime-bound to a borrowed
//! `&[EpochRecord]` slice, which made it impossible to answer queries
//! concurrently with epoch commits. The owned, `Arc`-shared
//! [`QuerySnapshot`](crate::QuerySnapshot) replaced it; this shim keeps
//! the old constructor signature compiling (by cloning the slice into a
//! snapshot) while steering callers to the snapshot API.
//!
//! One deliberate behavior change: accessor results now borrow from the
//! engine itself (`&self`) rather than from the `'a` source slice, so a
//! caller that held results past the engine — e.g.
//! `daemon.query().nearest_neighbors(...)` as one expression — must
//! bind the engine (or better, a snapshot) to a variable first. The
//! deprecation note says so.

#![allow(deprecated)]

use crate::daemon::EpochRecord;
use crate::snapshot::{QuerySnapshot, SnapshotSelection};
use siren_consolidate::ProcessRecord;
use std::marker::PhantomData;

pub use crate::snapshot::Neighbor;

/// Borrowing cross-epoch query engine — a thin shim that clones the
/// slice into an owned [`QuerySnapshot`].
#[deprecated(
    since = "0.2.0",
    note = "use `SirenDaemon::snapshot()` / `QuerySnapshot::build` — the shim clones the records on construction, and its accessors now borrow from the engine (bind it to a variable) instead of the `'a` slice"
)]
pub struct QueryEngine<'a> {
    snapshot: QuerySnapshot,
    _source: PhantomData<&'a [EpochRecord]>,
}

impl<'a> QueryEngine<'a> {
    /// Index `records` (cloned into an owned snapshot).
    pub fn new(records: &'a [EpochRecord]) -> Self {
        Self {
            snapshot: QuerySnapshot::build(records.to_vec()),
            _source: PhantomData,
        }
    }

    /// The owned snapshot backing this shim.
    pub fn snapshot(&self) -> &QuerySnapshot {
        &self.snapshot
    }

    /// Total records across epochs.
    pub fn len(&self) -> usize {
        self.snapshot.len()
    }

    /// True when no epoch has committed records.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty()
    }

    /// Distinct epochs present, ascending.
    pub fn epochs(&self) -> Vec<u64> {
        self.snapshot.epochs()
    }

    /// Every record of one job, across epochs, in commit order.
    pub fn job_records(&self, job_id: u64) -> Vec<&EpochRecord> {
        self.snapshot.job_records(job_id)
    }

    /// All records of one epoch, in consolidation order.
    pub fn epoch_records(&self, epoch: u64) -> Vec<&ProcessRecord> {
        self.snapshot.epoch_records(epoch)
    }

    /// Start building a filtered selection.
    pub fn select(&self) -> SnapshotSelection<'_> {
        self.snapshot.select()
    }

    /// Fuzzy-hash nearest neighbors over the records' `FILE_H` column.
    pub fn nearest_neighbors(&self, hash: &str, k: usize, min_score: u32) -> Vec<Neighbor<'_>> {
        self.snapshot.nearest_neighbors(hash, k, min_score)
    }
}
