//! Epoch-shipping replication: the leader-side [`EpochShipper`] that
//! turns committed epochs into checksummed wire frames, and the
//! follower-side [`Replicator`] loop that applies them.
//!
//! # Model
//!
//! Replication rides the ordinary v3 query protocol: a follower opens a
//! [`SirenClient`] to its leader and issues `SubscribeEpochs{from}`.
//! The leader pins the query snapshot current at that moment and
//! streams every committed epoch `>= from` as bounded
//! [`EpochBatch`](siren_proto::EpochBatch) frames followed by an
//! `EpochCommit` marker whose checksum chains the batches, then closes
//! the long poll with `SubscribeEnd{next_from, leader_bytes}`. The
//! follower applies each complete epoch through
//! [`SirenDaemon::import_epoch_at`] — one atomic sealed segment plus a
//! snapshot swap, exactly a local epoch commit — and re-subscribes from
//! its new high-water mark after a short poll interval.
//!
//! # Durability and idempotence
//!
//! The follower's high-water mark is not a side file: it *is* the seal
//! markers in its own consolidated store. A follower that crashes
//! mid-apply recovers its committed set on reopen and resubscribes from
//! `max committed + 1`; re-delivered epochs are skipped by
//! `import_epoch_at` returning `Ok(false)`. There is nothing to fsync
//! beyond what the commit path already fsyncs, and no window where the
//! mark and the data disagree.
//!
//! # Failure posture
//!
//! The loop never gives up: a failed dial or a torn subscription counts
//! a retry, sleeps under the [`RetryPolicy`]'s capped exponential
//! backoff (with jitter, so a herd of followers re-dialing a restarted
//! leader spreads out), and tries again. The follower's own embedded
//! query server keeps answering reads from its last applied snapshot
//! the whole time — replication lag degrades freshness, never
//! availability.

use crate::daemon::SirenDaemon;
use crate::plan::BATCH_BYTE_BUDGET;
use crate::snapshot::QuerySnapshot;
use siren_consolidate::ProcessRecord;
use siren_proto::{
    fold_epoch_checksum, EpochBatch, EpochStreamEvent, QueryResponse, RetryPolicy, SirenClient,
    MAX_BATCH_ROWS,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records per `EpochBatch` frame when the subscriber passed 0.
const DEFAULT_SHIP_BATCH_ROWS: u32 = 256;

/// One frame of an epoch subscription reply, with the accounting the
/// server needs for its `repl.*` counters.
pub(crate) enum EpochFrame {
    /// A bounded run of records within the current epoch.
    Batch {
        response: QueryResponse,
        records: u64,
    },
    /// The current epoch is fully shipped; the marker chains the batch
    /// checksums.
    Commit {
        response: QueryResponse,
        records: u64,
    },
    /// The subscription is complete (long-poll terminator).
    End { response: QueryResponse },
}

/// The epoch being streamed right now: its records cloned out of the
/// pinned snapshot (bounded memory — one epoch at a time, mirroring
/// what the follower buffers before applying).
struct CurrentEpoch {
    epoch: u64,
    records: Vec<ProcessRecord>,
    pos: usize,
    shipped: u64,
    checksums: Vec<u64>,
}

/// Leader-side producer for one `SubscribeEpochs` reply: a pinned
/// snapshot walked one frame per [`next_frame`](Self::next_frame) call,
/// so the reactor's watermark pacing applies to replication streams
/// exactly as it does to plan streams.
///
/// Epochs are shipped as the contiguous range `from ..= max committed`
/// of the pinned snapshot — epochs the snapshot holds no rows for
/// (quiet-period closes) still get their empty commit marker, keeping
/// the follower's committed set gap-free.
pub(crate) struct EpochShipper {
    snapshot: Arc<QuerySnapshot>,
    /// Next epoch to enter (the range cursor).
    next: u64,
    /// One past the last epoch to ship.
    end: u64,
    current: Option<CurrentEpoch>,
    batch_rows: usize,
    /// `SubscribeEnd.next_from`: where the follower should resubscribe.
    next_from: u64,
    /// Leader's sealed-store footprint at subscribe time.
    leader_bytes: u64,
    done: bool,
}

impl EpochShipper {
    pub(crate) fn new(
        snapshot: Arc<QuerySnapshot>,
        from_epoch: u64,
        batch_rows: u32,
        leader_bytes: u64,
    ) -> Self {
        let batch_rows = if batch_rows == 0 {
            DEFAULT_SHIP_BATCH_ROWS
        } else {
            batch_rows
        }
        .min(MAX_BATCH_ROWS) as usize;
        // The snapshot only lists record-bearing epochs, but the daemon
        // commits contiguously from 0, so `max + 1` bounds them all.
        let end = snapshot.epochs().last().map_or(0, |&max| max + 1);
        Self {
            snapshot,
            next: from_epoch,
            end,
            current: None,
            batch_rows,
            next_from: end.max(from_epoch),
            leader_bytes,
            done: false,
        }
    }

    /// Produce the next wire frame, or `None` once the terminator has
    /// been handed out.
    pub(crate) fn next_frame(&mut self) -> Option<EpochFrame> {
        if self.done {
            return None;
        }
        loop {
            if let Some(cur) = self.current.as_mut() {
                if cur.pos < cur.records.len() {
                    // One bounded batch: at most `batch_rows` records
                    // and (past the first record) the shared byte
                    // budget, so a replication frame can never dwarf a
                    // query frame.
                    let start = cur.pos;
                    let mut bytes = 0usize;
                    while cur.pos < cur.records.len() && cur.pos - start < self.batch_rows {
                        let len = cur.records[cur.pos].encode().len();
                        if cur.pos > start && bytes + len > BATCH_BYTE_BUDGET {
                            break;
                        }
                        bytes += len;
                        cur.pos += 1;
                    }
                    let batch = EpochBatch {
                        epoch: cur.epoch,
                        records: cur.records[start..cur.pos].to_vec(),
                    };
                    let records = (cur.pos - start) as u64;
                    cur.shipped += records;
                    cur.checksums.push(batch.checksum());
                    return Some(EpochFrame::Batch {
                        response: QueryResponse::EpochBatch(batch),
                        records,
                    });
                }
                // Epoch exhausted: chain the batch checksums into the
                // commit marker.
                let cur = self.current.take().expect("current epoch");
                return Some(EpochFrame::Commit {
                    response: QueryResponse::EpochCommit {
                        epoch: cur.epoch,
                        records: cur.shipped,
                        checksum: fold_epoch_checksum(&cur.checksums),
                    },
                    records: cur.shipped,
                });
            }
            if self.next < self.end {
                let epoch = self.next;
                self.next += 1;
                let records: Vec<ProcessRecord> = self
                    .snapshot
                    .epoch_records(epoch)
                    .into_iter()
                    .cloned()
                    .collect();
                self.current = Some(CurrentEpoch {
                    epoch,
                    records,
                    pos: 0,
                    shipped: 0,
                    checksums: Vec::new(),
                });
                continue;
            }
            self.done = true;
            return Some(EpochFrame::End {
                response: QueryResponse::SubscribeEnd {
                    next_from: self.next_from,
                    leader_bytes: self.leader_bytes,
                },
            });
        }
    }
}

/// Configuration for a [`Replicator`] following one leader.
#[derive(Debug, Clone)]
pub struct ReplicatorConfig {
    /// The leader's query address.
    pub leader: SocketAddr,
    /// Sleep between caught-up subscription exchanges (the long-poll
    /// cadence).
    pub poll_interval: Duration,
    /// Backoff schedule after a failed dial or a torn subscription.
    /// `max_retries` is ignored — a follower never gives up on its
    /// leader; only the delay curve applies.
    pub retry: RetryPolicy,
    /// `batch_rows` hint forwarded to the leader (0 = server default).
    pub batch_rows: u32,
    /// Test hook: stop the loop abruptly (no clean shutdown, stream
    /// left mid-flight) after this many epoch applies — the
    /// fault-injection suite's "kill the follower at a fuzzed apply
    /// point".
    pub crash_after_applies: Option<u64>,
}

impl ReplicatorConfig {
    /// Defaults for following `leader`: 50 ms poll, default backoff.
    pub fn to(leader: SocketAddr) -> Self {
        Self {
            leader,
            poll_interval: Duration::from_millis(50),
            retry: RetryPolicy::default(),
            batch_rows: 0,
            crash_after_applies: None,
        }
    }
}

/// Shared between the replication thread and its handle.
struct Ctrl {
    stop: AtomicBool,
    epochs_applied: AtomicU64,
    /// Next epoch the follower would request: everything below it is
    /// applied and durable locally.
    high_water: AtomicU64,
    caught_up: AtomicBool,
    crashed: AtomicBool,
}

/// A follower: owns its [`SirenDaemon`] on a background thread, keeps
/// it converged with the leader, and hands it back on
/// [`shutdown`](Self::shutdown). The daemon's embedded query server
/// serves reads from the latest applied snapshot throughout.
pub struct Replicator {
    ctrl: Arc<Ctrl>,
    handle: Option<JoinHandle<SirenDaemon>>,
}

impl Replicator {
    /// Start following `cfg.leader`. The daemon must not have an epoch
    /// ingesting (followers don't ingest; they apply).
    pub fn spawn(daemon: SirenDaemon, cfg: ReplicatorConfig) -> std::io::Result<Self> {
        let next = daemon.committed_epochs().last().map_or(0, |&max| max + 1);
        let ctrl = Arc::new(Ctrl {
            stop: AtomicBool::new(false),
            epochs_applied: AtomicU64::new(0),
            high_water: AtomicU64::new(next),
            caught_up: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
        });
        let thread_ctrl = Arc::clone(&ctrl);
        let handle = std::thread::Builder::new()
            .name("siren-replicator".into())
            .spawn(move || run(daemon, cfg, thread_ctrl))?;
        Ok(Self {
            ctrl,
            handle: Some(handle),
        })
    }

    /// Epochs applied by this replicator (re-deliveries excluded).
    pub fn epochs_applied(&self) -> u64 {
        self.ctrl.epochs_applied.load(Ordering::Relaxed)
    }

    /// The next epoch this follower would request from its leader.
    pub fn high_water(&self) -> u64 {
        self.ctrl.high_water.load(Ordering::Relaxed)
    }

    /// Whether the last completed subscription exchange ended with zero
    /// epoch lag.
    pub fn is_caught_up(&self) -> bool {
        self.ctrl.caught_up.load(Ordering::Relaxed)
    }

    /// Whether the `crash_after_applies` hook fired.
    pub fn crashed(&self) -> bool {
        self.ctrl.crashed.load(Ordering::Relaxed)
    }

    /// Block until the follower has applied through `epoch` (its
    /// high-water mark exceeds it). Returns false on timeout.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.high_water() <= epoch {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Block until a subscription exchange reports zero lag. Returns
    /// false on timeout.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_caught_up() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Stop the loop and hand the daemon back (e.g. to promote the
    /// follower after a leader failure).
    pub fn shutdown(mut self) -> SirenDaemon {
        self.ctrl.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("replicator thread handle")
            .join()
            .expect("replicator thread")
    }

    /// Promote this follower to a leader: detach from the (presumed
    /// dead) leader and return the daemon, now serving as the replica
    /// set's authoritative copy. Semantically [`shutdown`] under its
    /// failover name — the federation router's promotion hook calls
    /// this when a leader stays dark past the promotion threshold.
    ///
    /// [`shutdown`]: Self::shutdown
    pub fn promote(self) -> SirenDaemon {
        self.shutdown()
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.ctrl.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Sleep in short slices so a stop request interrupts a backoff.
/// Returns true if stop was requested.
fn sleep_interruptible(ctrl: &Ctrl, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if ctrl.stop.load(Ordering::Relaxed) {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

/// The follower loop: dial, exchange subscriptions until torn, back
/// off, repeat — forever, until stopped.
fn run(mut daemon: SirenDaemon, cfg: ReplicatorConfig, ctrl: Arc<Ctrl>) -> SirenDaemon {
    let metrics = daemon.service_metrics().clone();
    let mut next = ctrl.high_water.load(Ordering::Relaxed);
    metrics.repl_high_water.set(next as i64);
    // Jitter state for the backoff schedule (wall-clock seeded; the
    // fault-injection suite gets its determinism from the proxy, not
    // from the retry timing).
    let mut rng: u64 = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15)
        | 1;
    let mut attempt: u32 = 0;

    'dial: while !ctrl.stop.load(Ordering::Relaxed) {
        let mut client = match SirenClient::connect(cfg.leader) {
            Ok(client) => {
                metrics.repl_reconnects.inc();
                attempt = 0;
                client
            }
            Err(_) => {
                metrics.repl_retries.inc();
                let delay = cfg.retry.delay(attempt, &mut rng);
                attempt = attempt.saturating_add(1);
                if sleep_interruptible(&ctrl, delay) {
                    break 'dial;
                }
                continue 'dial;
            }
        };
        // Subscription exchanges on this connection until it tears.
        while !ctrl.stop.load(Ordering::Relaxed) {
            match exchange(&mut client, &mut daemon, &cfg, &ctrl, &metrics, &mut next) {
                Ok(caught_up) => {
                    attempt = 0;
                    if ctrl.crashed.load(Ordering::Relaxed) {
                        break 'dial;
                    }
                    if caught_up && sleep_interruptible(&ctrl, cfg.poll_interval) {
                        break 'dial;
                    }
                }
                Err(()) => {
                    metrics.repl_retries.inc();
                    let delay = cfg.retry.delay(attempt, &mut rng);
                    attempt = attempt.saturating_add(1);
                    if sleep_interruptible(&ctrl, delay) {
                        break 'dial;
                    }
                    // Reconnect: the torn stream may have poisoned the
                    // connection's framing.
                    continue 'dial;
                }
            }
        }
    }
    daemon
}

/// One subscription exchange: subscribe from `next`, apply every epoch
/// the leader ships, record lag from the terminator. Returns whether
/// the exchange ended with zero epoch lag; `Err` means the stream tore
/// (transport, protocol, or apply failure) and the caller should back
/// off and re-dial.
fn exchange(
    client: &mut SirenClient,
    daemon: &mut SirenDaemon,
    cfg: &ReplicatorConfig,
    ctrl: &Ctrl,
    metrics: &crate::metrics::ServiceMetrics,
    next: &mut u64,
) -> Result<bool, ()> {
    let mut stream = client
        .subscribe_epochs(*next, cfg.batch_rows)
        .map_err(|_| ())?;
    let mut caught_up = false;
    loop {
        let event = match stream.next_event() {
            Ok(Some(event)) => event,
            Ok(None) => break,
            Err(_) => return Err(()),
        };
        match event {
            EpochStreamEvent::Epoch { epoch, records } => {
                let count = records.len() as u64;
                let apply_start = Instant::now();
                match daemon.import_epoch_at(epoch, records) {
                    Ok(true) => {
                        metrics.repl_epochs_applied.inc();
                        metrics.repl_records_applied.add(count);
                        metrics.repl_apply_ns.record_duration(apply_start.elapsed());
                        let applied = ctrl.epochs_applied.fetch_add(1, Ordering::Relaxed) + 1;
                        if cfg
                            .crash_after_applies
                            .is_some_and(|limit| applied >= limit)
                        {
                            // Simulated follower crash: stop abruptly,
                            // stream left mid-flight. Durability of
                            // what was applied is the commit path's.
                            ctrl.crashed.store(true, Ordering::Relaxed);
                            ctrl.stop.store(true, Ordering::Relaxed);
                            return Ok(false);
                        }
                    }
                    // Re-delivery of an epoch we already hold — the
                    // idempotence path after a crash or resubscribe.
                    Ok(false) => {}
                    // A gap or an ingest conflict: tear the exchange
                    // down; the resubscribe starts from our own
                    // high-water mark, which cannot lie.
                    Err(_) => return Err(()),
                }
                *next = (*next).max(epoch + 1);
                ctrl.high_water.store(*next, Ordering::Relaxed);
                metrics.repl_high_water.set(*next as i64);
            }
            EpochStreamEvent::End {
                next_from,
                leader_bytes,
            } => {
                // Live lag as of this exchange: zero unless the stream
                // was cut short. Byte lag compares the leader's sealed
                // footprint (pinned at subscribe) with ours now.
                let lag_epochs = next_from.saturating_sub(*next);
                let lag_bytes = leader_bytes.saturating_sub(daemon.sealed_bytes());
                metrics.repl_lag_epochs.set(lag_epochs as i64);
                metrics.repl_lag_bytes.set(lag_bytes as i64);
                caught_up = lag_epochs == 0;
                ctrl.caught_up.store(caught_up, Ordering::Relaxed);
            }
        }
    }
    Ok(caught_up)
}
