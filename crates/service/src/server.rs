//! The TCP query server embedded in [`SirenDaemon`](crate::SirenDaemon).
//!
//! One non-blocking accept thread feeds a **bounded** queue of accepted
//! connections; a fixed pool of worker threads drains it, each handling
//! one connection at a time (hello negotiation, then a request/response
//! loop). When the queue is full, new connections are refused (closed
//! immediately) rather than buffered without bound. Per-connection
//! read/write deadlines bound both idle clients and slow consumers.
//!
//! Hostile-input posture: the frame reader bounds-checks length
//! prefixes before allocating; framing-level corruption (bad magic, bad
//! checksum, torn frame) draws a best-effort [`QueryError`] and a close
//! (the stream can no longer be trusted); an unknown request tag inside
//! an intact frame draws a [`QueryError::UnknownRequest`] and the
//! connection stays usable.

use crate::daemon::SharedState;
use crossbeam::channel::{bounded, Receiver, TrySendError};
use siren_proto::{
    decode_hello, encode_hello_ack, negotiate, read_frame, write_frame, FrameError, QueryError,
    QueryRequest, QueryResponse, MAX_FRAME_PAYLOAD,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters the server keeps about its own traffic.
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    /// Connections accepted into the worker queue.
    pub accepted: AtomicU64,
    /// Connections refused because the queue was full.
    pub refused: AtomicU64,
    /// Requests answered (including error answers).
    pub requests: AtomicU64,
}

/// The embedded TCP query server. Dropping it stops the accept thread,
/// drains the workers, and joins everything.
#[derive(Debug)]
pub(crate) struct QueryServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    counters: Arc<ServerCounters>,
}

impl QueryServer {
    /// Bind `addr` and start the accept thread plus `workers` handler
    /// threads sharing a queue of `backlog` pending connections.
    pub(crate) fn spawn(
        addr: SocketAddr,
        shared: Arc<SharedState>,
        workers: usize,
        backlog: usize,
        deadline: Duration,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServerCounters::default());
        let (tx, rx) = bounded::<TcpStream>(backlog.max(1));

        let mut worker_handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let rx: Receiver<TcpStream> = rx.clone();
            let shared = Arc::clone(&shared);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("siren-query-worker-{i}"))
                    .spawn(move || {
                        while let Ok(stream) = rx.recv() {
                            handle_connection(stream, &shared, &counters, deadline, &stop);
                        }
                    })?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept = std::thread::Builder::new()
            .name("siren-query-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => match tx.try_send(stream) {
                            Ok(()) => {
                                accept_counters.accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            // Queue full: refuse by dropping (closes the
                            // socket) instead of buffering without bound.
                            Err(TrySendError::Full(refused)) => {
                                drop(refused);
                                accept_counters.refused.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        },
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        // Transient accept failures (ECONNABORTED from a
                        // peer resetting while queued, EMFILE under fd
                        // pressure) must not take the query API down for
                        // the daemon's lifetime; back off and keep
                        // accepting. Only the stop flag ends the loop.
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })?;

        Ok(Self {
            local_addr,
            stop,
            accept: Some(accept),
            workers: worker_handles,
            counters,
        })
    }

    /// The address clients should connect to.
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests answered so far (including error answers).
    pub(crate) fn requests_served(&self) -> u64 {
        self.counters.requests.load(Ordering::Relaxed)
    }

    /// Connections accepted into the worker queue so far.
    pub(crate) fn connections_accepted(&self) -> u64 {
        self.counters.accepted.load(Ordering::Relaxed)
    }

    /// Connections refused (queue full) so far — the back-pressure
    /// signal an operator needs when clients report drops.
    pub(crate) fn connections_refused(&self) -> u64 {
        self.counters.refused.load(Ordering::Relaxed)
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort error answer; failures are moot because the connection
/// is being dropped anyway.
fn send_error(stream: &mut TcpStream, err: QueryError) {
    let _ = write_frame(stream, &QueryResponse::Error(err).encode());
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &SharedState,
    counters: &ServerCounters,
    deadline: Duration,
    stop: &AtomicBool,
) {
    // Accepted sockets inherit the listener's non-blocking mode on some
    // platforms (Windows, the BSDs); reset explicitly so the frame reads
    // below block up to the deadline everywhere.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(deadline)).is_err()
        || stream.set_write_timeout(Some(deadline)).is_err()
    {
        return;
    }

    // Version negotiation: exactly one hello frame before anything else.
    let version = match read_frame(&mut stream) {
        Ok(payload) => match decode_hello(&payload) {
            Some((client_min, client_max)) => match negotiate(client_min, client_max) {
                Ok(version) => version,
                Err(err) => {
                    send_error(&mut stream, err);
                    return;
                }
            },
            None => {
                send_error(&mut stream, QueryError::Malformed("bad hello".into()));
                return;
            }
        },
        Err(FrameError::TooLarge(len)) => {
            send_error(&mut stream, QueryError::FrameTooLarge(len));
            return;
        }
        Err(_) => return,
    };
    if write_frame(&mut stream, &encode_hello_ack(version)).is_err() {
        return;
    }

    loop {
        // Server shutdown: stop serving this connection even if the
        // client keeps requests coming (otherwise one busy client could
        // pin Drop forever; the read timeout bounds the wait below).
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => return,
            Err(FrameError::TooLarge(len)) => {
                send_error(&mut stream, QueryError::FrameTooLarge(len));
                return;
            }
            Err(FrameError::BadMagic(_) | FrameError::BadChecksum | FrameError::Truncated) => {
                // The stream is desynced; no further frame boundary can
                // be trusted.
                send_error(
                    &mut stream,
                    QueryError::Malformed("unreadable frame".into()),
                );
                return;
            }
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                send_error(&mut stream, QueryError::Deadline);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };

        counters.requests.fetch_add(1, Ordering::Relaxed);
        let (response, fatal) = match QueryRequest::decode(&payload) {
            Ok(request) => {
                // Lock-free read path: clone the current snapshot Arc
                // and answer entirely from it.
                let snapshot = shared.load();
                (snapshot.respond(shared.status(version), &request), false)
            }
            // Intact frame, unknown tag: answer and keep the connection.
            Err(err @ QueryError::UnknownRequest(_)) => (QueryResponse::Error(err), false),
            Err(err) => (QueryResponse::Error(err), true),
        };
        // The client's read_frame refuses payloads above the protocol
        // cap, so sending one would kill the connection mid-answer;
        // substitute a typed error the client can act on instead.
        let mut encoded = response.encode();
        if encoded.len() > MAX_FRAME_PAYLOAD as usize {
            encoded = QueryResponse::Error(QueryError::Internal(format!(
                "response of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap; narrow the query",
                encoded.len()
            )))
            .encode();
        }
        if write_frame(&mut stream, &encoded).is_err() || fatal {
            return;
        }
    }
}
