//! The TCP query server embedded in [`SirenDaemon`](crate::SirenDaemon).
//!
//! One non-blocking accept thread feeds a **bounded** queue of accepted
//! connections; a fixed pool of worker threads drains it, each handling
//! one connection at a time (hello negotiation, then a request/response
//! loop). When the queue is full, new connections are refused (closed
//! immediately) rather than buffered without bound. Per-connection
//! read/write deadlines bound both idle clients and slow consumers —
//! including every batch write of a v2 row stream, so a stalled reader
//! cannot pin a worker.
//!
//! Protocol v2 requests (plans, cursor fetches) answer with a frame
//! *stream*: bounded [`RowBatch`](siren_proto::RowBatch) frames, then
//! one end-or-cursor frame. Unfinished streams park their
//! [`PlanCursor`] — snapshot `Arc` pinned — in the shared
//! [`CursorTable`], which evicts by TTL and capacity.
//!
//! Every stage is instrumented against the daemon's registry: queue
//! wait (accept to worker pickup, `query.queue_wait_ns`), request
//! execution (`query.exec_ns`), batch serialization
//! (`query.batch_serialize_ns`), and the traffic counters a `Status`
//! answer carries — which are *read from the registry*, never kept in a
//! parallel set of atomics. Streaming requests slower than
//! [`ServiceConfig::slow_query_threshold`] land in the registry's
//! bounded slow-query ring, and a v2 `Metrics` request answers with the
//! whole registry snapshot.
//!
//! Hostile-input posture: the frame reader bounds-checks length
//! prefixes before allocating; framing-level corruption (bad magic, bad
//! checksum, torn frame) draws a best-effort [`QueryError`] and a close
//! (the stream can no longer be trusted); an unknown request tag inside
//! an intact frame draws a [`QueryError::UnknownRequest`] and the
//! connection stays usable — including v2 tags on a v1-negotiated
//! connection.

use crate::daemon::{ServiceConfig, SharedState};
use crate::metrics::ServiceMetrics;
use crate::plan::{CursorTable, PlanCursor, BATCH_BYTE_BUDGET};
use crossbeam::channel::{bounded, Receiver, TrySendError};
use siren_obs::{SlowQueryEntry, Span};
use siren_proto::{
    decode_hello, encode_hello_ack, negotiate, read_frame, write_frame, FrameError, QueryError,
    QueryRequest, QueryResponse, MAX_FRAME_PAYLOAD,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fill a `Status` answer's query-traffic counters from the registry
/// handles — the ONE place these fields are written, used by both the
/// wire Status arm and the in-process `SirenDaemon::status`, so the
/// two can never diverge.
pub(crate) fn fill_traffic_counters(
    metrics: &ServiceMetrics,
    cursors: &CursorTable,
    status: &mut siren_proto::StatusInfo,
) {
    status.queries_refused = metrics.connections_refused.get();
    status.open_cursors = cursors.open_count();
    status.version_connections = [
        (1u16, metrics.negotiated_v1.get()),
        (2u16, metrics.negotiated_v2.get()),
    ]
    .into_iter()
    .filter(|&(_, n)| n > 0)
    .collect();
}

/// The embedded TCP query server. Dropping it stops the accept thread,
/// drains the workers, and joins everything.
#[derive(Debug)]
pub(crate) struct QueryServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    metrics: ServiceMetrics,
    cursors: Arc<CursorTable>,
}

impl QueryServer {
    /// Bind `cfg.query_addr`'s `addr` and start the accept thread plus
    /// `cfg.query_workers` handler threads sharing a queue of
    /// `cfg.query_backlog` pending connections and a cursor table
    /// bounded by `cfg.cursor_ttl` / `cfg.query_max_cursors`. All
    /// traffic telemetry is recorded into `metrics`.
    pub(crate) fn spawn(
        addr: SocketAddr,
        shared: Arc<SharedState>,
        cfg: &ServiceConfig,
        metrics: ServiceMetrics,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let cursors = Arc::new(CursorTable::new(
            cfg.cursor_ttl,
            cfg.query_max_cursors,
            metrics.clone(),
        ));
        let deadline = cfg.query_deadline;
        let slow_threshold = cfg.slow_query_threshold;
        // The queue carries the enqueue instant so worker pickup can
        // record how long the connection sat waiting for a thread.
        let (tx, rx) = bounded::<(TcpStream, Instant)>(cfg.query_backlog.max(1));

        let workers = cfg.query_workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx: Receiver<(TcpStream, Instant)> = rx.clone();
            let shared = Arc::clone(&shared);
            let metrics = metrics.clone();
            let cursors = Arc::clone(&cursors);
            let stop = Arc::clone(&stop);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("siren-query-worker-{i}"))
                    .spawn(move || {
                        while let Ok((stream, queued_at)) = rx.recv() {
                            let queue_wait = queued_at.elapsed();
                            metrics.queue_wait_ns.record_duration(queue_wait);
                            handle_connection(
                                stream,
                                &shared,
                                &metrics,
                                &cursors,
                                deadline,
                                slow_threshold,
                                &stop,
                                (queued_at, queue_wait),
                            );
                        }
                    })?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept_metrics = metrics.clone();
        let accept = std::thread::Builder::new()
            .name("siren-query-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => match tx.try_send((stream, Instant::now())) {
                            Ok(()) => {
                                accept_metrics.connections_accepted.inc();
                            }
                            // Queue full: refuse by dropping (closes the
                            // socket) instead of buffering without bound.
                            Err(TrySendError::Full(refused)) => {
                                drop(refused);
                                accept_metrics.connections_refused.inc();
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        },
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        // Transient accept failures (ECONNABORTED from a
                        // peer resetting while queued, EMFILE under fd
                        // pressure) must not take the query API down for
                        // the daemon's lifetime; back off and keep
                        // accepting. Only the stop flag ends the loop.
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })?;

        Ok(Self {
            local_addr,
            stop,
            accept: Some(accept),
            workers: worker_handles,
            metrics,
            cursors,
        })
    }

    /// The address clients should connect to.
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests answered so far (including error answers) — the
    /// `query.requests` counter.
    pub(crate) fn requests_served(&self) -> u64 {
        self.metrics.requests.get()
    }

    /// Connections accepted into the worker queue so far.
    pub(crate) fn connections_accepted(&self) -> u64 {
        self.metrics.connections_accepted.get()
    }

    /// Connections refused (queue full) so far — the back-pressure
    /// signal an operator needs when clients report drops.
    pub(crate) fn connections_refused(&self) -> u64 {
        self.metrics.connections_refused.get()
    }

    /// Cursors currently parked between pages.
    pub(crate) fn open_cursors(&self) -> u64 {
        self.cursors.open_count()
    }

    /// Fill `status`'s query-traffic counters exactly as a wire
    /// `Status` answer would carry them.
    pub(crate) fn fill_traffic_counters(&self, status: &mut siren_proto::StatusInfo) {
        fill_traffic_counters(&self.metrics, &self.cursors, status);
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort error answer; failures are moot because the connection
/// is being dropped anyway.
fn send_error(stream: &mut TcpStream, err: QueryError) {
    let _ = write_frame(stream, &QueryResponse::Error(err).encode());
}

/// Stream one reply's worth of a cursor: up to its page budget in
/// batch frames, then the end-or-cursor terminator. Returns the rows
/// sent, or `None` when the connection is no longer usable.
fn stream_reply(
    stream: &mut TcpStream,
    mut cursor: PlanCursor,
    cursors: &CursorTable,
    version: u16,
    metrics: &ServiceMetrics,
    exec_span: &Span,
) -> Option<usize> {
    let batch_rows = cursor.batch_rows();
    let page_rows = cursor.page_rows();
    let mut sent = 0usize;
    while sent < page_rows {
        let want = batch_rows.min(page_rows - sent);
        let Some(batch) = cursor.next_batch(want, BATCH_BYTE_BUDGET) else {
            break;
        };
        sent += batch.len();
        let serialize_start = Instant::now();
        let encoded = QueryResponse::Batch(batch).encode_versioned(version);
        let serialize_elapsed = serialize_start.elapsed();
        metrics
            .batch_serialize_ns
            .record_duration(serialize_elapsed);
        // Per-batch serialize spans parent to the exec span; recorded
        // from the already-measured interval, no second clock read pair.
        metrics.traces.buffer().record_past(
            exec_span.trace(),
            Some(exec_span.id()),
            "serialize",
            serialize_start,
            serialize_elapsed,
        );
        if encoded.len() > MAX_FRAME_PAYLOAD as usize {
            // A single row blew the frame cap (pathological record).
            // The client treats an error frame as the reply terminator,
            // so it stays in sync; the stream itself cannot continue.
            send_error(
                stream,
                QueryError::Internal(format!(
                    "a row batch of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap; \
                     lower batch_rows or project to Keys",
                    encoded.len()
                )),
            );
            return Some(sent);
        }
        if write_frame(stream, &encoded).is_err() {
            return None;
        }
    }
    let end = if cursor.is_exhausted() {
        QueryResponse::StreamEnd { cursor: None }
    } else {
        QueryResponse::StreamEnd {
            cursor: Some(cursors.park(cursor)),
        }
    };
    write_frame(stream, &end.encode_versioned(version))
        .is_ok()
        .then_some(sent)
}

/// Close out one streaming reply: record its execution span and, past
/// the slow-query threshold, log it (fingerprint and shape only —
/// never predicate values).
fn finish_streamed(
    metrics: &ServiceMetrics,
    slow_threshold: Duration,
    started: Instant,
    fingerprint: u64,
    shape: String,
    rows: usize,
    trace_id: u64,
) {
    let elapsed = started.elapsed();
    metrics.exec_ns.record_duration(elapsed);
    if elapsed >= slow_threshold {
        metrics.registry.slow_queries().push(SlowQueryEntry {
            fingerprint,
            shape,
            rows: rows as u64,
            total_ns: elapsed.as_nanos() as u64,
            trace_id,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    shared: &SharedState,
    metrics: &ServiceMetrics,
    cursors: &CursorTable,
    deadline: Duration,
    slow_threshold: Duration,
    stop: &AtomicBool,
    queued: (Instant, Duration),
) {
    // Queue wait is measured from accept, before any trace id exists;
    // the first traced request on the connection adopts it as a child
    // span so the wait shows up inside that request's tree.
    let mut pending_queue_wait = Some(queued);
    // Accepted sockets inherit the listener's non-blocking mode on some
    // platforms (Windows, the BSDs); reset explicitly so the frame reads
    // below block up to the deadline everywhere.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(deadline)).is_err()
        || stream.set_write_timeout(Some(deadline)).is_err()
    {
        return;
    }

    // Version negotiation: exactly one hello frame before anything else.
    let version = match read_frame(&mut stream) {
        Ok(payload) => match decode_hello(&payload) {
            Some((client_min, client_max)) => match negotiate(client_min, client_max) {
                Ok(version) => version,
                Err(err) => {
                    send_error(&mut stream, err);
                    return;
                }
            },
            None => {
                send_error(&mut stream, QueryError::Malformed("bad hello".into()));
                return;
            }
        },
        Err(FrameError::TooLarge(len)) => {
            send_error(&mut stream, QueryError::FrameTooLarge(len));
            return;
        }
        Err(_) => return,
    };
    if write_frame(&mut stream, &encode_hello_ack(version)).is_err() {
        return;
    }
    match version {
        1 => metrics.negotiated_v1.inc(),
        _ => metrics.negotiated_v2.inc(),
    };

    loop {
        // Server shutdown: stop serving this connection even if the
        // client keeps requests coming (otherwise one busy client could
        // pin Drop forever; the read timeout bounds the wait below).
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => return,
            Err(FrameError::TooLarge(len)) => {
                send_error(&mut stream, QueryError::FrameTooLarge(len));
                return;
            }
            Err(FrameError::BadMagic(_) | FrameError::BadChecksum | FrameError::Truncated) => {
                // The stream is desynced; no further frame boundary can
                // be trusted.
                send_error(
                    &mut stream,
                    QueryError::Malformed("unreadable frame".into()),
                );
                return;
            }
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                send_error(&mut stream, QueryError::Deadline);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };

        metrics.requests.inc();
        let exec_start = Instant::now();
        let (response, fatal) = match QueryRequest::decode_traced(&payload, version) {
            // ---- v2 streaming requests: replies are frame streams. ----
            Ok((QueryRequest::Plan(plan), client_trace)) => {
                // The root span adopts the client-supplied trace id (or
                // generates one); queue wait — measured before the id
                // arrived — lands as its first child.
                let mut root = metrics.traces.buffer().root("request.plan", client_trace);
                if let Some((queued_at, wait)) = pending_queue_wait.take() {
                    metrics.traces.buffer().record_past(
                        root.trace(),
                        Some(root.id()),
                        "queue_wait",
                        queued_at,
                        wait,
                    );
                }
                let exec = root.child("exec");
                // Lock-free: the cursor pins the snapshot current at
                // open; commits landing mid-pagination don't move it.
                match PlanCursor::open(shared.load(), plan, metrics) {
                    Ok(mut cursor) => {
                        let fingerprint = cursor.fingerprint();
                        let shape = cursor.shape().to_string();
                        root.annotate_fingerprint(fingerprint);
                        root.annotate("shape", &shape);
                        // Parked with the cursor so later fetches rejoin
                        // this trace.
                        cursor.set_trace(root.trace(), root.id());
                        let trace_id = root.trace().0;
                        match stream_reply(&mut stream, cursor, cursors, version, metrics, &exec) {
                            Some(rows) => {
                                exec.finish();
                                root.finish();
                                finish_streamed(
                                    metrics,
                                    slow_threshold,
                                    exec_start,
                                    fingerprint,
                                    shape,
                                    rows,
                                    trace_id,
                                );
                                continue;
                            }
                            None => return,
                        }
                    }
                    Err(err) => (QueryResponse::Error(err), false),
                }
            }
            Ok((QueryRequest::FetchCursor { cursor }, client_trace)) => {
                match cursors.take(cursor) {
                    Some(parked) => {
                        // Rejoin the trace the plan opened (a fetch may
                        // run on another thread, long after the plan's
                        // root completed); a cursor without context — a
                        // pre-trace park — starts a fresh root.
                        let fetch = match parked.trace_context() {
                            Some((trace, root)) => {
                                metrics
                                    .traces
                                    .buffer()
                                    .child_of(trace, root, "request.fetch")
                            }
                            None => metrics.traces.buffer().root("request.fetch", client_trace),
                        };
                        if let Some((queued_at, wait)) = pending_queue_wait.take() {
                            metrics.traces.buffer().record_past(
                                fetch.trace(),
                                Some(fetch.id()),
                                "queue_wait",
                                queued_at,
                                wait,
                            );
                        }
                        let fingerprint = parked.fingerprint();
                        let shape = parked.shape().to_string();
                        let trace_id = fetch.trace().0;
                        match stream_reply(&mut stream, parked, cursors, version, metrics, &fetch) {
                            Some(rows) => {
                                fetch.finish();
                                finish_streamed(
                                    metrics,
                                    slow_threshold,
                                    exec_start,
                                    fingerprint,
                                    shape,
                                    rows,
                                    trace_id,
                                );
                                continue;
                            }
                            None => return,
                        }
                    }
                    None => (
                        QueryResponse::Error(QueryError::UnknownCursor(cursor)),
                        false,
                    ),
                }
            }
            Ok((QueryRequest::CloseCursor { cursor }, _)) => {
                cursors.remove(cursor);
                // The end frame doubles as the close acknowledgement.
                (QueryResponse::StreamEnd { cursor: None }, false)
            }
            // ---- v2 telemetry: the whole registry in one reply. ----
            Ok((QueryRequest::Metrics, _)) => {
                (QueryResponse::Metrics(metrics.registry.snapshot()), false)
            }
            // ---- v2 tracing: reassembled flight-recorder trees. ----
            Ok((QueryRequest::Traces(filter), _)) => {
                (QueryResponse::Traces(metrics.traces.traces(&filter)), false)
            }
            // ---- one-frame requests (v1 set, valid on v2 too). ----
            Ok((request, _)) => {
                // On v2 connections an inverted selection range draws
                // the typed error instead of silently matching nothing
                // (v1 keeps its historical empty answer).
                let invalid = match &request {
                    QueryRequest::LibraryUsage { selection } if version >= 2 => {
                        selection.validate().err()
                    }
                    _ => None,
                };
                if let Some(err) = invalid {
                    (QueryResponse::Error(err), false)
                } else {
                    // Lock-free read path: clone the current snapshot
                    // Arc and answer entirely from it. Only a Status
                    // answer reads the traffic counters — the cursor
                    // table's lock (and its TTL sweep) must not sit on
                    // the ByJob/LibraryUsage/Neighbors hot path.
                    let mut status = shared.status(version);
                    if matches!(request, QueryRequest::Status) {
                        fill_traffic_counters(metrics, cursors, &mut status);
                    }
                    let snapshot = shared.load();
                    (snapshot.respond(status, &request), false)
                }
            }
            // Intact frame, unknown tag: answer and keep the connection.
            Err(err @ QueryError::UnknownRequest(_)) => (QueryResponse::Error(err), false),
            Err(err) => (QueryResponse::Error(err), true),
        };
        // The client's read_frame refuses payloads above the protocol
        // cap, so sending one would kill the connection mid-answer;
        // substitute a typed error the client can act on instead.
        let mut encoded = response.encode_versioned(version);
        if encoded.len() > MAX_FRAME_PAYLOAD as usize {
            encoded = QueryResponse::Error(QueryError::Internal(format!(
                "response of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap; narrow the query",
                encoded.len()
            )))
            .encode_versioned(version);
        }
        let ok = write_frame(&mut stream, &encoded).is_ok();
        metrics.exec_ns.record_duration(exec_start.elapsed());
        if !ok || fatal {
            return;
        }
    }
}
