//! The TCP query server embedded in [`SirenDaemon`](crate::SirenDaemon)
//! — an event-driven reactor serving tier.
//!
//! `cfg.query_workers` event-loop threads each own a
//! [`siren_reactor::Poller`] and a slab of non-blocking framed
//! connections ([`FramedConn`]); loop 0 additionally owns the
//! non-blocking listener and dispatches accepted sockets round-robin
//! over bounded per-loop channels (full channel ⇒ the connection is
//! refused, never buffered without bound). Thousands of concurrent
//! connections per core are served this way: a loop sleeps in
//! `poller.wait` until a socket turns readable/writable, a timer
//! expires, or a peer loop hands it a new connection.
//!
//! Request execution is synchronous on the owning loop (plans are
//! CPU-bound; the old thread-per-connection pool executed them on the
//! worker thread too), but reply *transmission* is fully asynchronous:
//! each streaming reply is a [`ReplyStream`] state machine that
//! produces one serialized batch at a time into the connection's
//! outbound buffer, only while that buffer sits under a watermark.
//! v1/v2 connections keep their strict sequential request→reply
//! discipline; a v3 connection multiplexes — every frame carries a
//! stream id (see [`siren_proto::stream`]), concurrent replies
//! round-robin batch production, and large reply bodies are
//! LZ-compressed for clients that advertised acceptance.
//!
//! Cursor pages are **prefetched**: when a streaming reply parks its
//! cursor, the next page's batches are precomputed and parked with it
//! ([`CursorTable::park`]), so the following `FetchCursor` — often the
//! very next frame on the wire — is answered from already-serialized
//! bytes.
//!
//! Idle and write-stalled connections are bounded by a timer wheel:
//! one lazily-rescheduled deadline per connection, checked against the
//! socket's true last-progress instant when it fires, so per-frame
//! timer churn is avoided. Hostile-input posture is unchanged from the
//! blocking server: length prefixes are bounds-checked before any
//! payload is buffered, framing corruption draws a best-effort typed
//! error and a close, and an unknown request tag inside an intact
//! frame draws [`QueryError::UnknownRequest`] with the connection kept.

use crate::daemon::{ServiceConfig, SharedState};
use crate::metrics::ServiceMetrics;
use crate::plan::{CursorTable, PlanCursor, BATCH_BYTE_BUDGET};
use crate::replicate::{EpochFrame, EpochShipper};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use siren_obs::{SlowQueryEntry, Span};
use siren_proto::{
    decode_hello, decode_stream_frame, encode_hello_ack, encode_stream_frame, negotiate,
    QueryError, QueryRequest, QueryResponse, CONNECTION_STREAM, MAX_FRAME_PAYLOAD,
    STREAM_FLAG_COMPRESSED, STREAM_HEADER_LEN,
};
use siren_reactor::{Event, FrameParseError, FramedConn, Interest, Poller, Slab, TimerWheel};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poller key of loop 0's listener.
const LISTENER_KEY: usize = 0;
/// Poller keys of connections start here (slab key + base).
const KEY_BASE: usize = 1;

/// Stop producing batches into a connection whose outbound buffer
/// already holds this much; production resumes as the socket drains.
const OUT_WATERMARK: usize = 256 * 1024;
/// Stop *reading* from a connection whose outbound buffer is this far
/// behind — inbound pipelining must not grow without bound while the
/// peer refuses to take answers.
const IN_GATE: usize = 1024 * 1024;
/// Parsed-but-unprocessed request frames allowed per connection before
/// reading is gated (v1/v2 sequential discipline can leave a pipeline
/// of frames parked here).
const MAX_PENDING_REQUESTS: usize = 128;

/// Fill a `Status` answer's query-traffic counters from the registry
/// handles — the ONE place these fields are written, used by both the
/// wire Status arm and the in-process `SirenDaemon::status`, so the
/// two can never diverge.
pub(crate) fn fill_traffic_counters(
    metrics: &ServiceMetrics,
    cursors: &CursorTable,
    status: &mut siren_proto::StatusInfo,
) {
    status.queries_refused = metrics.connections_refused.get();
    status.open_cursors = cursors.open_count();
    status.version_connections = [
        (1u16, metrics.negotiated_v1.get()),
        (2u16, metrics.negotiated_v2.get()),
        (3u16, metrics.negotiated_v3.get()),
    ]
    .into_iter()
    .filter(|&(_, n)| n > 0)
    .collect();
    // Replication posture (v3 fields; zeros on a daemon that neither
    // follows nor was ever followed). The gauges are written by the
    // replicator thread, so a follower's embedded server reports its
    // own lag without touching the replication loop.
    status.repl_high_water = metrics.repl_high_water.get().max(0) as u64;
    status.repl_lag_epochs = metrics.repl_lag_epochs.get().max(0) as u64;
    status.repl_lag_bytes = metrics.repl_lag_bytes.get().max(0) as u64;
    status.repl_reconnects = metrics.repl_reconnects.get();
}

/// The embedded TCP query server. Dropping it wakes every event loop,
/// drops their connections, and joins the threads.
#[derive(Debug)]
pub(crate) struct QueryServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pollers: Vec<Arc<Poller>>,
    loops: Vec<std::thread::JoinHandle<()>>,
    metrics: ServiceMetrics,
    cursors: Arc<CursorTable>,
}

impl QueryServer {
    /// Bind `addr` and start `cfg.query_workers` event loops; loop 0
    /// owns the listener. The cursor table is bounded by
    /// `cfg.cursor_ttl` / `cfg.query_max_cursors`, and all traffic
    /// telemetry is recorded into `metrics`.
    pub(crate) fn spawn(
        addr: SocketAddr,
        shared: Arc<SharedState>,
        cfg: &ServiceConfig,
        metrics: ServiceMetrics,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let cursors = Arc::new(CursorTable::new(
            cfg.cursor_ttl,
            cfg.query_max_cursors,
            metrics.clone(),
        ));

        let loops = cfg.query_workers.max(1);
        // The backlog bound is split across loops: the total number of
        // accepted-but-unregistered connections stays `query_backlog`.
        let per_loop = (cfg.query_backlog.max(1) / loops).max(1);
        let mut pollers = Vec::with_capacity(loops);
        let mut channels: Vec<(Sender<Handoff>, Receiver<Handoff>)> = Vec::with_capacity(loops);
        for _ in 0..loops {
            pollers.push(Arc::new(Poller::new()?));
            channels.push(bounded(per_loop));
        }

        let mut handles = Vec::with_capacity(loops);
        // Loop 0 takes the bound listener itself — no fallible
        // `try_clone` on the spawn path.
        let mut listener = Some(listener);
        for (i, (_, rx)) in channels.iter().enumerate() {
            let ctx = EventLoop {
                poller: Arc::clone(&pollers[i]),
                incoming: rx.clone(),
                listener: listener.take().map(|l| {
                    let peers: Vec<Dispatch> = (0..loops)
                        .map(|j| Dispatch {
                            tx: channels[j].0.clone(),
                            poller: Arc::clone(&pollers[j]),
                        })
                        .collect();
                    (l, peers)
                }),
                shared: Arc::clone(&shared),
                metrics: metrics.clone(),
                cursors: Arc::clone(&cursors),
                stop: Arc::clone(&stop),
                deadline: cfg.query_deadline,
                slow_threshold: cfg.slow_query_threshold,
                prefetch: cfg.query_prefetch,
                compress_min: cfg.query_compress_min,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("siren-query-loop-{i}"))
                    .spawn(move || ctx.run())?,
            );
        }

        Ok(Self {
            local_addr,
            stop,
            pollers,
            loops: handles,
            metrics,
            cursors,
        })
    }

    /// The address clients should connect to.
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests answered so far (including error answers) — the
    /// `query.requests` counter.
    pub(crate) fn requests_served(&self) -> u64 {
        self.metrics.requests.get()
    }

    /// Connections accepted into an event loop so far.
    pub(crate) fn connections_accepted(&self) -> u64 {
        self.metrics.connections_accepted.get()
    }

    /// Connections refused (registration backlog full) so far — the
    /// back-pressure signal an operator needs when clients report
    /// drops.
    pub(crate) fn connections_refused(&self) -> u64 {
        self.metrics.connections_refused.get()
    }

    /// Cursors currently parked between pages.
    pub(crate) fn open_cursors(&self) -> u64 {
        self.cursors.open_count()
    }

    /// Fill `status`'s query-traffic counters exactly as a wire
    /// `Status` answer would carry them.
    pub(crate) fn fill_traffic_counters(&self, status: &mut siren_proto::StatusInfo) {
        fill_traffic_counters(&self.metrics, &self.cursors, status);
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for poller in &self.pollers {
            let _ = poller.notify();
        }
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
    }
}

/// An accepted connection handed from the listener loop to the event
/// loop that will own it, stamped with its accept time so the idle
/// deadline covers queue wait.
type Handoff = (TcpStream, Instant);

/// A peer loop's registration channel plus the poller to wake after a
/// send.
struct Dispatch {
    tx: Sender<Handoff>,
    poller: Arc<Poller>,
}

/// Connection lifecycle phase.
enum Phase {
    /// Awaiting the hello frame.
    Handshake,
    /// Negotiated; serving versioned requests.
    Active { version: u16 },
}

/// One streaming reply (a `Plan` or `FetchCursor` answer) being
/// produced incrementally into the connection's outbound buffer.
struct ReplyStream {
    /// Wire stream id on v3; `CONNECTION_STREAM` (unused) on v1/v2.
    stream_id: u32,
    /// The request advertised acceptance of compressed reply bodies.
    accept_compressed: bool,
    /// Already-serialized batches (the prefetched page) served first.
    prefetched: VecDeque<(Vec<u8>, u32)>,
    cursor: Option<PlanCursor>,
    /// Present on `SubscribeEpochs` replies: the reply is an epoch
    /// stream produced by the shipper instead of a row stream.
    shipper: Option<EpochShipper>,
    sent_rows: usize,
    page_rows: usize,
    batch_rows: usize,
    fingerprint: u64,
    shape: String,
    trace_id: u64,
    exec_start: Instant,
    /// Execution span; batch serialize spans parent to it. `root` is
    /// present on `Plan` replies (finished after `exec`).
    exec: Option<Span>,
    root: Option<Span>,
}

/// One registered connection.
struct Conn {
    io: FramedConn,
    phase: Phase,
    /// Parsed request frames awaiting processing (v1/v2 hold requests
    /// here until the active reply finishes; v3 drains immediately).
    pending: VecDeque<Vec<u8>>,
    /// Streaming replies in flight; v1/v2 at most one, v3 any number
    /// (round-robin production).
    replies: VecDeque<ReplyStream>,
    /// Queue wait measured accept→registration, adopted as a child
    /// span by the first traced request on the connection.
    queue_wait: Option<(Instant, Duration)>,
    /// Close once the outbound buffer drains.
    closing: bool,
    interest: Interest,
    timer: Option<siren_reactor::TimerId>,
    /// This connection's slab key (poller key minus [`KEY_BASE`]).
    key: usize,
}

/// What a connection-level step decided.
enum Verdict {
    Keep,
    Drop,
}

struct EventLoop {
    poller: Arc<Poller>,
    incoming: Receiver<Handoff>,
    /// Loop 0 only: the shared listener plus every loop's dispatch
    /// handle (index-aligned, self included).
    listener: Option<(TcpListener, Vec<Dispatch>)>,
    shared: Arc<SharedState>,
    metrics: ServiceMetrics,
    cursors: Arc<CursorTable>,
    stop: Arc<AtomicBool>,
    deadline: Duration,
    slow_threshold: Duration,
    prefetch: bool,
    compress_min: usize,
}

impl EventLoop {
    fn run(self) {
        let mut conns: Slab<Conn> = Slab::new();
        let mut timers = TimerWheel::new(Instant::now(), Duration::from_millis(50), 512);
        let mut events: Vec<Event> = Vec::new();
        let mut next_loop = 0usize;

        if let Some((listener, _)) = &self.listener {
            if self
                .poller
                .add(listener.as_raw_fd(), LISTENER_KEY, Interest::READ)
                .is_err()
            {
                return;
            }
        }

        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let timeout = timers
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            self.metrics.reactor_wakeups.inc();
            if self.stop.load(Ordering::Relaxed) {
                break;
            }

            let mut accept_burst = false;
            let mut touched: Vec<usize> = Vec::new();
            for ev in &events {
                if ev.key == LISTENER_KEY {
                    accept_burst = true;
                } else if ev.key >= KEY_BASE {
                    touched.push(ev.key - KEY_BASE);
                }
            }

            if accept_burst {
                self.accept_ready(&mut next_loop);
            }
            // Connections dispatched to this loop (by loop 0, possibly
            // ourselves) register here.
            while let Ok((stream, queued_at)) = self.incoming.try_recv() {
                self.register(stream, queued_at, &mut conns, &mut timers);
            }

            for key in touched {
                let verdict = match conns.get_mut(key) {
                    Some(conn) => self.drive(conn, &mut timers),
                    None => continue,
                };
                if matches!(verdict, Verdict::Drop) {
                    self.deregister(key, &mut conns, &mut timers);
                }
            }

            let mut fired: Vec<usize> = Vec::new();
            timers.advance(Instant::now(), &mut fired);
            for key in fired {
                let Some(conn) = conns.get_mut(key) else {
                    continue;
                };
                conn.timer = None;
                let idle = conn.io.last_progress().elapsed();
                if idle < self.deadline {
                    // Progress happened since the timer was scheduled:
                    // reschedule lazily instead of churning a timer per
                    // frame.
                    conn.timer =
                        Some(timers.schedule(conn.io.last_progress() + self.deadline, key));
                    continue;
                }
                if conn.io.wants_write() || !conn.replies.is_empty() {
                    // Write-stalled consumer: nothing to say that it
                    // would read; close.
                    self.deregister(key, &mut conns, &mut timers);
                } else {
                    // Idle between requests (or never finished the
                    // hello): a typed deadline error, then close after
                    // flush.
                    let version = match conn.phase {
                        Phase::Active { version } => version,
                        Phase::Handshake => 1,
                    };
                    self.queue_error(
                        conn,
                        version,
                        CONNECTION_STREAM,
                        false,
                        QueryError::Deadline,
                    );
                    conn.closing = true;
                    match self.finish_io(conn) {
                        Verdict::Drop => self.deregister(key, &mut conns, &mut timers),
                        Verdict::Keep => {
                            // Still flushing the error: bound that too,
                            // or a never-reading peer pins the slot.
                            if let Some(conn) = conns.get_mut(key) {
                                conn.timer =
                                    Some(timers.schedule(Instant::now() + self.deadline, key));
                            }
                        }
                    }
                }
            }
        }

        // Shutdown: every connection (and, on loop 0, the listener)
        // drops here, closing the sockets.
        for key in conns.keys() {
            self.deregister(key, &mut conns, &mut timers);
        }
        if let Some((listener, _)) = &self.listener {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
    }

    /// Accept everything currently pending and dispatch round-robin.
    fn accept_ready(&self, next_loop: &mut usize) {
        let Some((listener, peers)) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let target = *next_loop % peers.len();
                    *next_loop = next_loop.wrapping_add(1);
                    match peers[target].tx.try_send((stream, Instant::now())) {
                        Ok(()) => {
                            self.metrics.connections_accepted.inc();
                            let _ = peers[target].poller.notify();
                        }
                        // Target loop's registration queue is full:
                        // refuse by dropping (closes the socket).
                        Err(TrySendError::Full(refused)) => {
                            drop(refused);
                            self.metrics.connections_refused.inc();
                        }
                        Err(TrySendError::Disconnected(_)) => return,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept failures (ECONNABORTED, EMFILE under
                // fd pressure) must not take the query API down; the
                // listener stays registered and we retry on the next
                // readiness event.
                Err(_) => break,
            }
        }
    }

    fn register(
        &self,
        stream: TcpStream,
        queued_at: Instant,
        conns: &mut Slab<Conn>,
        timers: &mut TimerWheel,
    ) {
        let _ = stream.set_nodelay(true);
        let Ok(io) = FramedConn::new(stream) else {
            return;
        };
        let wait = queued_at.elapsed();
        self.metrics.queue_wait_ns.record_duration(wait);
        let fd = io.stream().as_raw_fd();
        let conn = Conn {
            io,
            phase: Phase::Handshake,
            pending: VecDeque::new(),
            replies: VecDeque::new(),
            queue_wait: Some((queued_at, wait)),
            closing: false,
            interest: Interest::READ,
            timer: None,
            key: 0,
        };
        let key = conns.insert(conn);
        if self.poller.add(fd, KEY_BASE + key, Interest::READ).is_err() {
            conns.remove(key);
            return;
        }
        if let Some(conn) = conns.get_mut(key) {
            conn.key = key;
            conn.timer = Some(timers.schedule(Instant::now() + self.deadline, key));
        }
        self.metrics.active_connections.inc();
    }

    fn deregister(&self, key: usize, conns: &mut Slab<Conn>, timers: &mut TimerWheel) {
        let Some(conn) = conns.remove(key) else {
            return;
        };
        let _ = self.poller.delete(conn.io.stream().as_raw_fd());
        if let Some(timer) = conn.timer {
            timers.cancel(timer);
        }
        self.metrics.active_connections.dec();
        // `conn` drops here: socket closed, in-flight reply spans
        // recorded as they stand (same as the blocking server dying
        // mid-stream).
    }

    /// One full service step for a connection with I/O readiness:
    /// read, parse, process, produce, flush, and re-arm interest.
    fn drive(&self, conn: &mut Conn, timers: &mut TimerWheel) -> Verdict {
        // Read unless gated by outbound backlog or a parked pipeline.
        let gated = conn.io.pending_output() > IN_GATE
            || conn.pending.len() > MAX_PENDING_REQUESTS
            || conn.closing;
        if !gated && conn.io.fill().is_err() {
            return Verdict::Drop;
        }
        if !conn.closing {
            if let Verdict::Drop = self.parse_frames(conn) {
                return Verdict::Drop;
            }
        }
        let _ = timers;
        self.finish_io(conn)
    }

    /// Process pipelined requests, produce replies, flush, update
    /// interest, and decide whether the connection survives. Loops
    /// until no further progress is possible without new readiness:
    /// a finished reply can unblock the next pipelined request on a
    /// sequential (v1/v2) connection, and a flush can unblock batch
    /// production.
    fn finish_io(&self, conn: &mut Conn) -> Verdict {
        loop {
            if !conn.closing {
                if let Verdict::Drop = self.process_pending(conn) {
                    return Verdict::Drop;
                }
            }
            self.pump_replies(conn);
            if conn.io.flush().is_err() {
                return Verdict::Drop;
            }
            let can_produce = !conn.replies.is_empty() && conn.io.pending_output() < OUT_WATERMARK;
            let can_process = !conn.closing
                && !conn.pending.is_empty()
                && conn.io.pending_output() <= IN_GATE
                && match conn.phase {
                    Phase::Active { version } => version >= 3 || conn.replies.is_empty(),
                    Phase::Handshake => false,
                };
            if !can_produce && !can_process {
                break;
            }
        }
        if conn.closing && !conn.io.wants_write() {
            return Verdict::Drop;
        }
        if conn.io.is_eof()
            && conn.pending.is_empty()
            && conn.replies.is_empty()
            && !conn.io.wants_write()
        {
            return Verdict::Drop;
        }
        let gated = conn.io.pending_output() > IN_GATE
            || conn.pending.len() > MAX_PENDING_REQUESTS
            || conn.closing;
        let want = if conn.io.wants_write() {
            if gated {
                Interest::WRITE
            } else {
                Interest::BOTH
            }
        } else if gated {
            // Nothing to write and reading gated: stay write-armed so
            // the next drain re-triggers production.
            Interest::WRITE
        } else {
            Interest::READ
        };
        if want != conn.interest {
            if self
                .poller
                .modify(conn.io.stream().as_raw_fd(), KEY_BASE + conn.key, want)
                .is_err()
            {
                return Verdict::Drop;
            }
            conn.interest = want;
        }
        Verdict::Keep
    }

    /// Parse complete frames out of the inbound buffer: complete the
    /// hello exchange, then park request frames in the pipeline
    /// (processing happens under [`EventLoop::process_pending`]'s
    /// version discipline).
    fn parse_frames(&self, conn: &mut Conn) -> Verdict {
        loop {
            match conn.phase {
                Phase::Handshake => match conn.io.next_frame(MAX_FRAME_PAYLOAD) {
                    Ok(Some(payload)) => match decode_hello(&payload) {
                        Some((client_min, client_max)) => {
                            match negotiate(client_min, client_max) {
                                Ok(version) => {
                                    conn.io.queue_payload(&encode_hello_ack(version));
                                    match version {
                                        1 => self.metrics.negotiated_v1.inc(),
                                        2 => self.metrics.negotiated_v2.inc(),
                                        _ => self.metrics.negotiated_v3.inc(),
                                    }
                                    conn.phase = Phase::Active { version };
                                }
                                Err(err) => {
                                    // Pre-negotiation errors are plain
                                    // frames: the peer has no version
                                    // yet, so no envelope either.
                                    conn.io.queue_payload(&QueryResponse::Error(err).encode());
                                    conn.closing = true;
                                    return Verdict::Keep;
                                }
                            }
                        }
                        None => {
                            conn.io.queue_payload(
                                &QueryResponse::Error(QueryError::Malformed("bad hello".into()))
                                    .encode(),
                            );
                            conn.closing = true;
                            return Verdict::Keep;
                        }
                    },
                    Ok(None) => return Verdict::Keep,
                    Err(FrameParseError::TooLarge(len)) => {
                        conn.io.queue_payload(
                            &QueryResponse::Error(QueryError::FrameTooLarge(len)).encode(),
                        );
                        conn.closing = true;
                        return Verdict::Keep;
                    }
                    Err(_) => return Verdict::Drop,
                },
                Phase::Active { version } => {
                    loop {
                        if conn.pending.len() > MAX_PENDING_REQUESTS {
                            return Verdict::Keep;
                        }
                        match conn.io.next_frame(MAX_FRAME_PAYLOAD) {
                            Ok(Some(payload)) => conn.pending.push_back(payload),
                            Ok(None) => return Verdict::Keep,
                            Err(err) => {
                                // The stream is desynced; no further
                                // frame boundary can be trusted.
                                let qerr = match err {
                                    FrameParseError::TooLarge(len) => {
                                        QueryError::FrameTooLarge(len)
                                    }
                                    FrameParseError::BadMagic(_) | FrameParseError::BadChecksum => {
                                        QueryError::Malformed("unreadable frame".into())
                                    }
                                };
                                self.queue_error(conn, version, CONNECTION_STREAM, false, qerr);
                                conn.closing = true;
                                return Verdict::Keep;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Execute parked request frames. v3 connections process everything
    /// (replies multiplex); v1/v2 are strictly sequential — the next
    /// request starts only when no reply is in flight.
    fn process_pending(&self, conn: &mut Conn) -> Verdict {
        let version = match conn.phase {
            Phase::Active { version } => version,
            Phase::Handshake => return Verdict::Keep,
        };
        while !conn.pending.is_empty() && !conn.closing {
            if version < 3 && !conn.replies.is_empty() {
                break;
            }
            if conn.io.pending_output() > IN_GATE {
                break;
            }
            let payload = conn.pending.pop_front().expect("non-empty");
            if let Verdict::Drop = self.process_request(conn, version, &payload) {
                return Verdict::Drop;
            }
        }
        Verdict::Keep
    }

    /// Decode and execute one request frame. Streaming requests push a
    /// [`ReplyStream`]; one-shot requests queue their answer directly.
    fn process_request(&self, conn: &mut Conn, version: u16, payload: &[u8]) -> Verdict {
        // v3 frames wrap the v2 body in a stream envelope; unwrap (and
        // inflate) first. An unreadable envelope is connection-fatal,
        // like an unreadable frame.
        let (body, stream_id, accept_compressed): (std::borrow::Cow<'_, [u8]>, u32, bool) =
            if version >= 3 {
                match decode_stream_frame(payload) {
                    Ok(frame) => (
                        std::borrow::Cow::Owned(frame.body),
                        frame.stream_id,
                        frame.accept_compressed,
                    ),
                    Err(err) => {
                        self.queue_error(conn, version, CONNECTION_STREAM, false, err);
                        conn.closing = true;
                        return Verdict::Keep;
                    }
                }
            } else {
                (
                    std::borrow::Cow::Borrowed(payload),
                    CONNECTION_STREAM,
                    false,
                )
            };

        self.metrics.requests.inc();
        let exec_start = Instant::now();
        let (response, fatal) = match QueryRequest::decode_traced(&body, version) {
            // ---- streaming requests: replies are frame streams. ----
            Ok((QueryRequest::Plan(plan), client_trace)) => {
                let mut root = self
                    .metrics
                    .traces
                    .buffer()
                    .root("request.plan", client_trace);
                if let Some((queued_at, wait)) = conn.queue_wait.take() {
                    self.metrics.traces.buffer().record_past(
                        root.trace(),
                        Some(root.id()),
                        "queue_wait",
                        queued_at,
                        wait,
                    );
                }
                let exec = root.child("exec");
                // Lock-free: the cursor pins the snapshot current at
                // open; commits landing mid-pagination don't move it.
                match PlanCursor::open(self.shared.load(), plan, &self.metrics) {
                    Ok(mut cursor) => {
                        let fingerprint = cursor.fingerprint();
                        let shape = cursor.shape().to_string();
                        root.annotate_fingerprint(fingerprint);
                        root.annotate("shape", &shape);
                        // Parked with the cursor so later fetches
                        // rejoin this trace.
                        cursor.set_trace(root.trace(), root.id());
                        let trace_id = root.trace().0;
                        let page_rows = cursor.page_rows();
                        let batch_rows = cursor.batch_rows();
                        conn.replies.push_back(ReplyStream {
                            stream_id,
                            accept_compressed,
                            prefetched: VecDeque::new(),
                            cursor: Some(cursor),
                            shipper: None,
                            sent_rows: 0,
                            page_rows,
                            batch_rows,
                            fingerprint,
                            shape,
                            trace_id,
                            exec_start,
                            exec: Some(exec),
                            root: Some(root),
                        });
                        return Verdict::Keep;
                    }
                    Err(err) => (QueryResponse::Error(err), false),
                }
            }
            Ok((QueryRequest::FetchCursor { cursor }, client_trace)) => {
                match self.cursors.take(cursor) {
                    Some((parked, prefetched)) => {
                        // Rejoin the trace the plan opened (a fetch may
                        // run on another connection, long after the
                        // plan's root completed); a cursor without
                        // context starts a fresh root.
                        let fetch = match parked.trace_context() {
                            Some((trace, root)) => {
                                self.metrics
                                    .traces
                                    .buffer()
                                    .child_of(trace, root, "request.fetch")
                            }
                            None => self
                                .metrics
                                .traces
                                .buffer()
                                .root("request.fetch", client_trace),
                        };
                        if let Some((queued_at, wait)) = conn.queue_wait.take() {
                            self.metrics.traces.buffer().record_past(
                                fetch.trace(),
                                Some(fetch.id()),
                                "queue_wait",
                                queued_at,
                                wait,
                            );
                        }
                        if !prefetched.is_empty() {
                            self.metrics.prefetch_pages_served.inc();
                        }
                        let fingerprint = parked.fingerprint();
                        let shape = parked.shape().to_string();
                        let trace_id = fetch.trace().0;
                        let page_rows = parked.page_rows();
                        let batch_rows = parked.batch_rows();
                        conn.replies.push_back(ReplyStream {
                            stream_id,
                            accept_compressed,
                            prefetched: prefetched.into(),
                            cursor: Some(parked),
                            shipper: None,
                            sent_rows: 0,
                            page_rows,
                            batch_rows,
                            fingerprint,
                            shape,
                            trace_id,
                            exec_start,
                            exec: Some(fetch),
                            root: None,
                        });
                        return Verdict::Keep;
                    }
                    None => (
                        QueryResponse::Error(QueryError::UnknownCursor(cursor)),
                        false,
                    ),
                }
            }
            // ---- replication: a long-poll epoch stream. ----
            Ok((
                QueryRequest::SubscribeEpochs {
                    from_epoch,
                    batch_rows,
                },
                client_trace,
            )) => {
                let mut root = self
                    .metrics
                    .traces
                    .buffer()
                    .root("request.subscribe", client_trace);
                if let Some((queued_at, wait)) = conn.queue_wait.take() {
                    self.metrics.traces.buffer().record_past(
                        root.trace(),
                        Some(root.id()),
                        "queue_wait",
                        queued_at,
                        wait,
                    );
                }
                root.annotate("from_epoch", &from_epoch.to_string());
                let exec = root.child("exec");
                self.metrics.repl_subscriptions.inc();
                // Pin the snapshot (and the sealed footprint published
                // with it) at subscribe time; commits landing while the
                // stream drains belong to the follower's next poll.
                let shipper = EpochShipper::new(
                    self.shared.load(),
                    from_epoch,
                    batch_rows,
                    self.shared.sealed_bytes(),
                );
                let trace_id = root.trace().0;
                conn.replies.push_back(ReplyStream {
                    stream_id,
                    accept_compressed,
                    prefetched: VecDeque::new(),
                    cursor: None,
                    shipper: Some(shipper),
                    sent_rows: 0,
                    page_rows: 0,
                    batch_rows: 0,
                    fingerprint: 0,
                    shape: "subscribe_epochs".to_string(),
                    trace_id,
                    exec_start,
                    exec: Some(exec),
                    root: Some(root),
                });
                return Verdict::Keep;
            }
            Ok((QueryRequest::CloseCursor { cursor }, _)) => {
                self.cursors.remove(cursor);
                // The end frame doubles as the close acknowledgement.
                (QueryResponse::StreamEnd { cursor: None }, false)
            }
            // ---- v2 telemetry: the whole registry in one reply. ----
            Ok((QueryRequest::Metrics, _)) => (
                QueryResponse::Metrics(self.metrics.registry.snapshot()),
                false,
            ),
            // ---- v2 tracing: reassembled flight-recorder trees. ----
            Ok((QueryRequest::Traces(filter), _)) => (
                QueryResponse::Traces(self.metrics.traces.traces(&filter)),
                false,
            ),
            // ---- one-frame requests (v1 set, valid on v2/v3 too). ----
            Ok((request, _)) => {
                // On v2+ connections an inverted selection range draws
                // the typed error instead of silently matching nothing
                // (v1 keeps its historical empty answer).
                let invalid = match &request {
                    QueryRequest::LibraryUsage { selection } if version >= 2 => {
                        selection.validate().err()
                    }
                    _ => None,
                };
                if let Some(err) = invalid {
                    (QueryResponse::Error(err), false)
                } else {
                    // Lock-free read path: clone the current snapshot
                    // Arc and answer entirely from it. Only a Status
                    // answer reads the traffic counters — the cursor
                    // table's lock (and its TTL sweep) must not sit on
                    // the ByJob/LibraryUsage/Neighbors hot path.
                    let mut status = self.shared.status(version);
                    if matches!(request, QueryRequest::Status) {
                        fill_traffic_counters(&self.metrics, &self.cursors, &mut status);
                    }
                    let snapshot = self.shared.load();
                    (snapshot.respond(status, &request), false)
                }
            }
            // Intact frame, unknown tag: answer and keep the
            // connection.
            Err(err @ QueryError::UnknownRequest(_)) => (QueryResponse::Error(err), false),
            Err(err) => (QueryResponse::Error(err), true),
        };
        // The client's reader refuses payloads above the protocol cap,
        // so sending one would kill the connection mid-answer;
        // substitute a typed error the client can act on instead.
        let mut encoded = response.encode_versioned(version);
        let cap = self.body_cap(version);
        if encoded.len() > cap {
            encoded = QueryResponse::Error(QueryError::Internal(format!(
                "response of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap; narrow the query",
                encoded.len()
            )))
            .encode_versioned(version);
        }
        self.queue_body(conn, version, stream_id, accept_compressed, &encoded);
        self.metrics.exec_ns.record_duration(exec_start.elapsed());
        if fatal {
            conn.closing = true;
        }
        Verdict::Keep
    }

    /// Largest reply body that still fits one wire frame once the v3
    /// envelope header is added.
    fn body_cap(&self, version: u16) -> usize {
        let cap = MAX_FRAME_PAYLOAD as usize;
        if version >= 3 {
            cap - STREAM_HEADER_LEN
        } else {
            cap
        }
    }

    /// Queue one reply body on the wire: plain on v1/v2, enveloped
    /// (and possibly compressed) on v3.
    fn queue_body(
        &self,
        conn: &mut Conn,
        version: u16,
        stream_id: u32,
        accept_compressed: bool,
        body: &[u8],
    ) {
        if version < 3 {
            conn.io.queue_payload(body);
            return;
        }
        let compress_min = accept_compressed.then_some(self.compress_min);
        let wire = encode_stream_frame(stream_id, body, false, compress_min);
        if wire.len() > STREAM_HEADER_LEN
            && wire[STREAM_HEADER_LEN - 1] & STREAM_FLAG_COMPRESSED != 0
        {
            self.metrics.compressed_frames.inc();
            self.metrics
                .compressed_bytes_saved
                .add((body.len() + STREAM_HEADER_LEN).saturating_sub(wire.len()) as u64);
        }
        conn.io.queue_payload(&wire);
    }

    /// Queue a typed error frame under the connection's framing rules.
    fn queue_error(
        &self,
        conn: &mut Conn,
        version: u16,
        stream_id: u32,
        accept_compressed: bool,
        err: QueryError,
    ) {
        let body = QueryResponse::Error(err).encode_versioned(version.max(1));
        self.queue_body(conn, version, stream_id, accept_compressed, &body);
    }

    /// Produce batches into the outbound buffer while it sits under
    /// the watermark, round-robining across the connection's active
    /// replies so no stream starves another.
    fn pump_replies(&self, conn: &mut Conn) {
        while !conn.replies.is_empty() && conn.io.pending_output() < OUT_WATERMARK {
            let mut reply = conn.replies.pop_front().expect("non-empty");
            match self.step_reply(conn, &mut reply) {
                StepOutcome::Progress => conn.replies.push_back(reply),
                StepOutcome::Finished => {
                    // Spans finish child-first; the slow-query log
                    // records fingerprint and shape only.
                    if let Some(exec) = reply.exec.take() {
                        exec.finish();
                    }
                    if let Some(root) = reply.root.take() {
                        root.finish();
                    }
                    let elapsed = reply.exec_start.elapsed();
                    self.metrics.exec_ns.record_duration(elapsed);
                    if elapsed >= self.slow_threshold {
                        self.metrics.registry.slow_queries().push(SlowQueryEntry {
                            fingerprint: reply.fingerprint,
                            shape: reply.shape.clone(),
                            rows: reply.sent_rows as u64,
                            total_ns: elapsed.as_nanos() as u64,
                            trace_id: reply.trace_id,
                        });
                    }
                }
            }
        }
    }

    /// Produce one frame of `reply` (a prefetched batch, a live batch,
    /// or the terminator).
    fn step_reply(&self, conn: &mut Conn, reply: &mut ReplyStream) -> StepOutcome {
        let version = match conn.phase {
            Phase::Active { version } => version,
            Phase::Handshake => unreachable!("replies require negotiation"),
        };
        // 0. Epoch subscriptions stream through the shipper (one frame
        //    per step, same watermark pacing as row streams).
        if reply.shipper.is_some() {
            return self.step_epoch_stream(conn, version, reply);
        }
        // 1. Prefetched page first: bytes already serialized at park
        //    time, just framed (and possibly compressed) here.
        if let Some((body, rows)) = reply.prefetched.pop_front() {
            if body.len() > self.body_cap(version) {
                // A pathological record blew the frame cap during
                // prefetch; same terminal error as live production.
                self.queue_error(
                    conn,
                    version,
                    reply.stream_id,
                    reply.accept_compressed,
                    QueryError::Internal(format!(
                        "a row batch of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame \
                         cap; lower batch_rows or project to Keys",
                        body.len()
                    )),
                );
                return StepOutcome::Finished;
            }
            self.queue_body(
                conn,
                version,
                reply.stream_id,
                reply.accept_compressed,
                &body,
            );
            reply.sent_rows += rows as usize;
            return StepOutcome::Progress;
        }
        // 2. Live production until the page budget.
        if reply.sent_rows < reply.page_rows {
            if let Some(cursor) = reply.cursor.as_mut() {
                let want = reply.batch_rows.min(reply.page_rows - reply.sent_rows);
                if let Some(batch) = cursor.next_batch(want, BATCH_BYTE_BUDGET) {
                    reply.sent_rows += batch.len();
                    let serialize_start = Instant::now();
                    let encoded = QueryResponse::Batch(batch).encode_versioned(version);
                    let serialize_elapsed = serialize_start.elapsed();
                    self.metrics
                        .batch_serialize_ns
                        .record_duration(serialize_elapsed);
                    if let Some(exec) = &reply.exec {
                        // Per-batch serialize spans parent to the exec
                        // span; recorded from the already-measured
                        // interval, no second clock read pair.
                        self.metrics.traces.buffer().record_past(
                            exec.trace(),
                            Some(exec.id()),
                            "serialize",
                            serialize_start,
                            serialize_elapsed,
                        );
                    }
                    if encoded.len() > self.body_cap(version) {
                        // A single batch blew the frame cap
                        // (pathological record). The client treats an
                        // error frame as the reply terminator, so it
                        // stays in sync; the stream itself cannot
                        // continue.
                        self.queue_error(
                            conn,
                            version,
                            reply.stream_id,
                            reply.accept_compressed,
                            QueryError::Internal(format!(
                                "a row batch of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte \
                                 frame cap; lower batch_rows or project to Keys",
                                encoded.len()
                            )),
                        );
                        return StepOutcome::Finished;
                    }
                    self.queue_body(
                        conn,
                        version,
                        reply.stream_id,
                        reply.accept_compressed,
                        &encoded,
                    );
                    return StepOutcome::Progress;
                }
            }
        }
        // 3. Terminator: end of rows, or park (with the next page
        //    prefetched) and hand out a cursor id.
        let end = match reply.cursor.take() {
            Some(cursor) if !cursor.is_exhausted() => {
                let (cursor, prefetched) = self.build_prefetch(version, reply, cursor);
                QueryResponse::StreamEnd {
                    cursor: Some(self.cursors.park(cursor, prefetched)),
                }
            }
            _ => QueryResponse::StreamEnd { cursor: None },
        };
        self.queue_body(
            conn,
            version,
            reply.stream_id,
            reply.accept_compressed,
            &end.encode_versioned(version),
        );
        StepOutcome::Finished
    }

    /// Produce one frame of an epoch subscription: the shipper's next
    /// batch, commit marker, or terminator.
    fn step_epoch_stream(
        &self,
        conn: &mut Conn,
        version: u16,
        reply: &mut ReplyStream,
    ) -> StepOutcome {
        let shipper = reply.shipper.as_mut().expect("epoch stream shipper");
        let Some(frame) = shipper.next_frame() else {
            return StepOutcome::Finished;
        };
        let (response, is_batch, outcome) = match frame {
            EpochFrame::Batch { response, records } => {
                reply.sent_rows += records as usize;
                (response, true, StepOutcome::Progress)
            }
            EpochFrame::Commit { response, records } => {
                self.metrics.repl_epochs_shipped.inc();
                self.metrics.repl_records_shipped.add(records);
                (response, false, StepOutcome::Progress)
            }
            EpochFrame::End { response } => (response, false, StepOutcome::Finished),
        };
        let serialize_start = Instant::now();
        let encoded = response.encode_versioned(version);
        let serialize_elapsed = serialize_start.elapsed();
        self.metrics
            .batch_serialize_ns
            .record_duration(serialize_elapsed);
        if let Some(exec) = &reply.exec {
            self.metrics.traces.buffer().record_past(
                exec.trace(),
                Some(exec.id()),
                "serialize",
                serialize_start,
                serialize_elapsed,
            );
        }
        if is_batch {
            self.metrics.repl_bytes_shipped.add(encoded.len() as u64);
        }
        if encoded.len() > self.body_cap(version) {
            // A pathological record blew the frame cap; the error frame
            // terminates the reply (the follower resubscribes from its
            // high-water mark, so nothing is lost — but it cannot make
            // progress past this record without a smaller batch_rows).
            self.queue_error(
                conn,
                version,
                reply.stream_id,
                reply.accept_compressed,
                QueryError::Internal(format!(
                    "an epoch batch of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame \
                     cap; lower batch_rows",
                    encoded.len()
                )),
            );
            return StepOutcome::Finished;
        }
        self.queue_body(
            conn,
            version,
            reply.stream_id,
            reply.accept_compressed,
            &encoded,
        );
        outcome
    }

    /// Precompute the next page of `cursor` as serialized v2 batch
    /// bodies (connection-agnostic: compression and the envelope are
    /// applied at queue time, so a cross-connection fetch serves them
    /// unchanged). Serialize time is recorded under the parking
    /// request's exec span — the prefetch is that request's work.
    fn build_prefetch(
        &self,
        version: u16,
        reply: &ReplyStream,
        mut cursor: PlanCursor,
    ) -> (PlanCursor, Vec<(Vec<u8>, u32)>) {
        if !self.prefetch {
            return (cursor, Vec::new());
        }
        let mut prefetched: Vec<(Vec<u8>, u32)> = Vec::new();
        let mut rows = 0usize;
        while rows < reply.page_rows {
            let want = reply.batch_rows.min(reply.page_rows - rows);
            let Some(batch) = cursor.next_batch(want, BATCH_BYTE_BUDGET) else {
                break;
            };
            let batch_rows = batch.len() as u32;
            rows += batch.len();
            let serialize_start = Instant::now();
            let encoded = QueryResponse::Batch(batch).encode_versioned(version);
            let serialize_elapsed = serialize_start.elapsed();
            self.metrics
                .batch_serialize_ns
                .record_duration(serialize_elapsed);
            if let Some(exec) = &reply.exec {
                self.metrics.traces.buffer().record_past(
                    exec.trace(),
                    Some(exec.id()),
                    "prefetch_serialize",
                    serialize_start,
                    serialize_elapsed,
                );
            }
            prefetched.push((encoded, batch_rows));
        }
        if !prefetched.is_empty() {
            self.metrics.prefetch_pages_built.inc();
        }
        (cursor, prefetched)
    }
}

/// Outcome of one reply production step.
enum StepOutcome {
    /// A frame was queued; the reply stays active.
    Progress,
    /// The terminator (or terminal error) was queued.
    Finished,
}
