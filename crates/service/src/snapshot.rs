//! The owned, immutable, **layered** query snapshot.
//!
//! A [`QuerySnapshot`] is a cheap composition of immutable
//! [`SnapshotLayer`]s, one per committed epoch (plus one base layer for
//! everything recovered at startup). Each layer owns its records and
//! the indexes queries need — per-job posting lists, the pre-parsed
//! `FILE_H` fuzzy corpus, and the n-gram candidate index
//! ([`siren_fuzzy::FuzzyIndex`]) — all built once at commit time.
//!
//! Committing epoch `N` therefore costs O(epoch `N`): the new layer is
//! built from the epoch's records alone and the published snapshot
//! reuses every earlier layer by `Arc` (`with_epoch`). The monolithic
//! predecessor rebuilt all indexes from a clone of the *entire* history
//! on every commit, so commit cost grew with total records, not epoch
//! size.
//!
//! Unbounded layer counts would tax every query (each one visits each
//! layer), so fan-out is bounded two ways:
//!
//! * a **background merge** (`daemon::SnapshotMaintainer`) folds the
//!   smallest adjacent pair whenever the count exceeds
//!   [`SOFT_MAX_LAYERS`], off the commit path;
//! * `with_epoch` merges **inline** past [`HARD_MAX_LAYERS`], the
//!   safety valve for commit rates that outrun the background thread.
//!
//! Merging concatenates adjacent layers (commit order is preserved by
//! adjacency) and rebuilds their indexes, so a merged snapshot answers
//! every query identically — the layered/merged/monolithic equivalence
//! is property-tested in `tests/snapshot_layers.rs`.
//!
//! Because a snapshot is immutable and `Arc`-shared, any number of
//! query threads read it with no locking while the daemon ingests and
//! commits the next epoch — commit publishes a *new* snapshot;
//! in-flight queries keep the one they started with (see
//! `daemon::SharedState`).

use crate::daemon::EpochRecord;
use siren_analysis::{library_usage, usage_table, LibraryUsageRow, UsageRow};
use siren_consolidate::ProcessRecord;
use siren_fuzzy::{FuzzyHash, FuzzyIndex};
use siren_proto::{NeighborRow, QueryRequest, QueryResponse, RecordRow, Selection, StatusInfo};
use std::collections::HashMap;
use std::sync::Arc;

/// Above this many layers the background maintainer starts merging.
pub const SOFT_MAX_LAYERS: usize = 8;
/// Above this many layers `with_epoch` merges inline before publishing.
pub const HARD_MAX_LAYERS: usize = 16;

/// One nearest-neighbor hit, borrowing the matching record from the
/// snapshot it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighbor<'a> {
    /// Similarity score, 0–100.
    pub score: u32,
    /// Epoch the matching record was committed under.
    pub epoch: u64,
    /// The matching record.
    pub record: &'a ProcessRecord,
}

/// One immutable slab of committed records with its query indexes,
/// built once (at epoch commit, recovery, or merge) and shared by every
/// snapshot that contains it.
#[derive(Debug, Default)]
pub struct SnapshotLayer {
    records: Vec<EpochRecord>,
    by_job: HashMap<u64, Vec<u32>>,
    /// Pre-parsed `FILE_H` hashes, in record order.
    corpus: Vec<FuzzyHash>,
    corpus_owners: Vec<u32>,
    /// N-gram candidate index over `corpus`.
    index: FuzzyIndex,
    /// Distinct epochs present, ascending.
    epochs: Vec<u64>,
}

impl SnapshotLayer {
    /// Index `records` (one pass; `FILE_H` hashes parsed and gram-
    /// indexed up front).
    pub fn build(records: Vec<EpochRecord>) -> Self {
        // Indexes are u32 (halves posting memory); refuse wrap-around
        // rather than silently mis-addressing records past 4 billion.
        u32::try_from(records.len()).expect("layer exceeds u32 records");
        let mut by_job: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut corpus = Vec::new();
        let mut corpus_owners = Vec::new();
        let mut epochs: Vec<u64> = Vec::new();
        for (i, er) in records.iter().enumerate() {
            by_job
                .entry(er.record.key.job_id)
                .or_default()
                .push(i as u32);
            if let Some(h) = &er.record.file_hash {
                if let Ok(parsed) = FuzzyHash::parse(h) {
                    corpus.push(parsed);
                    corpus_owners.push(i as u32);
                }
            }
            epochs.push(er.epoch);
        }
        epochs.sort_unstable();
        epochs.dedup();
        let index = FuzzyIndex::build(&corpus);
        Self {
            records,
            by_job,
            corpus,
            corpus_owners,
            index,
            epochs,
        }
    }

    /// Records in this layer.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the layer holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fold adjacent layers into one (commit order is their
    /// concatenation order), rebuilding the merged indexes.
    fn merge(layers: &[Arc<SnapshotLayer>]) -> SnapshotLayer {
        let total = layers.iter().map(|l| l.len()).sum();
        let mut records = Vec::with_capacity(total);
        for layer in layers {
            records.extend(layer.records.iter().cloned());
        }
        SnapshotLayer::build(records)
    }

    /// The layer's records, in commit order.
    pub(crate) fn layer_records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Distinct epochs present in this layer, ascending — what the
    /// plan executor prunes epoch-slice scans with.
    pub(crate) fn layer_epochs(&self) -> &[u64] {
        &self.epochs
    }
}

/// An immutable, index-carrying view of every committed record: an
/// ordered stack of `Arc`-shared [`SnapshotLayer`]s.
#[derive(Debug, Default, Clone)]
pub struct QuerySnapshot {
    /// Non-empty layers in commit order.
    layers: Vec<Arc<SnapshotLayer>>,
    /// `offsets[i]` = records in layers before layer `i`.
    offsets: Vec<usize>,
    /// Global corpus offset per layer (nearest-neighbor tie-breaking
    /// must reproduce the monolithic corpus order).
    corpus_offsets: Vec<usize>,
    total: usize,
    /// Distinct epochs across layers, ascending.
    epochs: Vec<u64>,
}

impl QuerySnapshot {
    /// Index `records` as a single layer — the from-scratch build used
    /// at recovery (and as the reference path in tests and benches).
    pub fn build(records: Vec<EpochRecord>) -> Self {
        Self::from_layers(vec![Arc::new(SnapshotLayer::build(records))])
    }

    /// The snapshot of an empty store.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Compose existing layers (empty ones are dropped; they answer no
    /// query — committed-but-empty epochs are tracked by the daemon's
    /// seal markers, not the snapshot, exactly as before).
    pub fn from_layers(layers: Vec<Arc<SnapshotLayer>>) -> Self {
        let layers: Vec<Arc<SnapshotLayer>> =
            layers.into_iter().filter(|l| !l.is_empty()).collect();
        let mut offsets = Vec::with_capacity(layers.len());
        let mut corpus_offsets = Vec::with_capacity(layers.len());
        let mut total = 0;
        let mut corpus_total = 0;
        let mut epochs: Vec<u64> = Vec::new();
        for layer in &layers {
            offsets.push(total);
            corpus_offsets.push(corpus_total);
            total += layer.len();
            corpus_total += layer.corpus.len();
            epochs.extend_from_slice(&layer.epochs);
        }
        epochs.sort_unstable();
        epochs.dedup();
        Self {
            layers,
            offsets,
            corpus_offsets,
            total,
            epochs,
        }
    }

    /// The successor snapshot after committing one epoch: every
    /// existing layer is reused by `Arc`, only the new epoch is
    /// indexed — O(epoch), not O(history). Merges inline past
    /// [`HARD_MAX_LAYERS`] (the background maintainer normally keeps
    /// fan-out at [`SOFT_MAX_LAYERS`] before that bites).
    pub fn with_epoch(&self, records: Vec<EpochRecord>) -> Self {
        let mut layers = self.layers.clone();
        let layer = SnapshotLayer::build(records);
        if !layer.is_empty() {
            layers.push(Arc::new(layer));
        }
        let mut next = Self::from_layers(layers);
        while next.layers.len() > HARD_MAX_LAYERS {
            next = next
                .merged_once_at(HARD_MAX_LAYERS)
                .expect("over the bound");
        }
        next
    }

    /// One background-merge step: fold the smallest adjacent layer pair
    /// if more than [`SOFT_MAX_LAYERS`] layers are stacked. `None` when
    /// fan-out is already within bounds — the maintainer's stop signal.
    pub fn merged_once(&self) -> Option<Self> {
        self.merged_once_at(SOFT_MAX_LAYERS)
    }

    fn merged_once_at(&self, max_layers: usize) -> Option<Self> {
        if self.layers.len() <= max_layers.max(1) {
            return None;
        }
        // Cheapest merge first: the adjacent pair with the fewest
        // records. Only adjacent layers may fold (commit order).
        let (i, _) = self
            .layers
            .windows(2)
            .map(|w| w[0].len() + w[1].len())
            .enumerate()
            .min_by_key(|&(_, combined)| combined)
            .expect("at least two layers");
        let merged = Arc::new(SnapshotLayer::merge(&self.layers[i..=i + 1]));
        let mut layers = Vec::with_capacity(self.layers.len() - 1);
        layers.extend(self.layers[..i].iter().cloned());
        layers.push(merged);
        layers.extend(self.layers[i + 2..].iter().cloned());
        Some(Self::from_layers(layers))
    }

    /// Layers currently stacked (fan-out diagnostic).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total records across epochs.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no epoch has committed records.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Every record, epoch-tagged, in commit order.
    pub fn iter(&self) -> impl Iterator<Item = &EpochRecord> + '_ {
        self.layers.iter().flat_map(|l| l.records.iter())
    }

    /// The record at commit-order position `i`.
    pub fn get(&self, i: usize) -> Option<&EpochRecord> {
        if i >= self.total {
            return None;
        }
        let layer = self.offsets.partition_point(|&off| off <= i) - 1;
        self.layers[layer].records.get(i - self.offsets[layer])
    }

    /// Distinct epochs present, ascending.
    pub fn epochs(&self) -> Vec<u64> {
        self.epochs.clone()
    }

    /// Every record of one job, across epochs, in commit order.
    pub fn job_records(&self, job_id: u64) -> Vec<&EpochRecord> {
        let mut out = Vec::new();
        for layer in &self.layers {
            if let Some(idxs) = layer.by_job.get(&job_id) {
                out.extend(idxs.iter().map(|&i| &layer.records[i as usize]));
            }
        }
        out
    }

    /// All records of one epoch, in consolidation order.
    pub fn epoch_records(&self, epoch: u64) -> Vec<&ProcessRecord> {
        self.layers
            .iter()
            .filter(|l| l.epochs.binary_search(&epoch).is_ok())
            .flat_map(|l| l.records.iter())
            .filter(|r| r.epoch == epoch)
            .map(|r| &r.record)
            .collect()
    }

    /// Records passing `selection`, in commit order.
    pub fn filtered(&self, selection: &Selection) -> Vec<&ProcessRecord> {
        self.iter()
            .filter(|er| selection.matches(er.epoch, &er.record))
            .map(|er| &er.record)
            .collect()
    }

    /// Start building a filtered selection.
    pub fn select(&self) -> SnapshotSelection<'_> {
        SnapshotSelection {
            snapshot: self,
            selection: Selection::all(),
        }
    }

    /// Fuzzy-hash nearest neighbors of `hash` (an SSDeep-style
    /// `block:sig1:sig2` string) over the records' `FILE_H` column.
    /// Returns up to `k` hits scoring at least `min_score`, best first.
    ///
    /// Each layer's n-gram index prunes its candidates before the
    /// edit-distance scoring; per-layer hits merge on (score desc,
    /// corpus position asc), reproducing the monolithic scan's order
    /// exactly because the layer corpora concatenate to the monolithic
    /// corpus.
    pub fn nearest_neighbors(&self, hash: &str, k: usize, min_score: u32) -> Vec<Neighbor<'_>> {
        self.neighbor_hits(hash, k, min_score)
            .0
            .into_iter()
            .map(|(score, li, owner)| {
                let er = &self.layers[li as usize].records[owner as usize];
                Neighbor {
                    score,
                    epoch: er.epoch,
                    record: &er.record,
                }
            })
            .collect()
    }

    /// The hit list behind [`nearest_neighbors`](Self::nearest_neighbors)
    /// as owned `(score, layer, record-index)` descriptors — the form a
    /// plan cursor can park across replies without borrowing the
    /// snapshot it already pins by `Arc` — plus the number of layers
    /// whose n-gram index fell back to a full corpus scan (the
    /// `query.fuzzy_scan_fallbacks` telemetry signal).
    pub(crate) fn neighbor_hits(
        &self,
        hash: &str,
        k: usize,
        min_score: u32,
    ) -> (Vec<(u32, u32, u32)>, u64) {
        let Ok(baseline) = FuzzyHash::parse(hash) else {
            return (Vec::new(), 0);
        };
        // (score, global corpus position, layer, local record index)
        let mut hits: Vec<(u32, usize, usize, u32)> = Vec::new();
        let mut scan_fallbacks = 0u64;
        for (li, layer) in self.layers.iter().enumerate() {
            let (layer_hits, fell_back) =
                layer
                    .index
                    .search_counted(&layer.corpus, &baseline, min_score);
            scan_fallbacks += u64::from(fell_back);
            for hit in layer_hits {
                hits.push((
                    hit.score,
                    self.corpus_offsets[li] + hit.index,
                    li,
                    layer.corpus_owners[hit.index],
                ));
            }
        }
        hits.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let hits = hits
            .into_iter()
            .take(k)
            .map(|(score, _, li, owner)| (score, li as u32, owner))
            .collect();
        (hits, scan_fallbacks)
    }

    /// The layer stack (plan execution walks layers directly so
    /// epoch-slice plans can skip non-matching layers wholesale).
    pub(crate) fn layer_stack(&self) -> &[Arc<SnapshotLayer>] {
        &self.layers
    }

    /// Answer one protocol request against this snapshot. `status`
    /// carries the live daemon counters (the snapshot itself only knows
    /// committed state); its store-shape fields are overwritten from the
    /// snapshot so a `Status` answer is always self-consistent.
    pub fn respond(&self, mut status: StatusInfo, request: &QueryRequest) -> QueryResponse {
        match request {
            QueryRequest::Status => {
                status.committed_epochs = self.epochs();
                status.records = self.len() as u64;
                QueryResponse::Status(status)
            }
            QueryRequest::ByJob { job_id } => QueryResponse::Rows(
                self.job_records(*job_id)
                    .into_iter()
                    .map(|er| RecordRow {
                        epoch: er.epoch,
                        record: er.record.clone(),
                    })
                    .collect(),
            ),
            QueryRequest::LibraryUsage { selection } => {
                QueryResponse::LibraryUsage(library_usage(self.filtered(selection)))
            }
            QueryRequest::Neighbors { hash, k, min_score } => QueryResponse::Neighbors(
                self.nearest_neighbors(hash, *k as usize, *min_score)
                    .into_iter()
                    .map(|n| NeighborRow {
                        score: n.score,
                        epoch: n.epoch,
                        record: n.record.clone(),
                    })
                    .collect(),
            ),
            // Streaming requests never reach the one-frame answer
            // path: the server routes them through `PlanCursor` (see
            // `plan.rs`), and in-process callers use
            // [`QuerySnapshot::plan_rows`].
            // `Metrics` and `Traces` likewise: only the server holds
            // the registry and the flight recorder.
            // `SubscribeEpochs` streams through the server's epoch
            // shipper the same way.
            QueryRequest::Plan(_)
            | QueryRequest::FetchCursor { .. }
            | QueryRequest::CloseCursor { .. }
            | QueryRequest::Metrics
            | QueryRequest::Traces(_)
            | QueryRequest::SubscribeEpochs { .. } => {
                QueryResponse::Error(siren_proto::QueryError::Internal(
                    "streaming requests are answered by the plan executor, not respond()".into(),
                ))
            }
        }
    }
}

/// Fluent filter over a [`QuerySnapshot`].
#[derive(Debug)]
pub struct SnapshotSelection<'s> {
    snapshot: &'s QuerySnapshot,
    selection: Selection,
}

impl<'s> SnapshotSelection<'s> {
    /// Restrict to one epoch.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.selection = self.selection.epoch(epoch);
        self
    }

    /// Restrict to one host.
    pub fn host(mut self, host: &str) -> Self {
        self.selection = self.selection.host(host);
        self
    }

    /// Restrict to `start ..= end` collection timestamps.
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.selection = self.selection.between(start, end);
        self
    }

    /// The accumulated filter (e.g. to send over the wire instead).
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Matching records.
    pub fn records(self) -> Vec<&'s ProcessRecord> {
        self.snapshot.filtered(&self.selection)
    }

    /// Library usage over the selection (`siren-analysis` aggregation —
    /// the same computation behind the paper's library tables).
    pub fn library_usage(self) -> Vec<LibraryUsageRow> {
        library_usage(self.snapshot.filtered(&self.selection))
    }

    /// The paper's Table-2 usage breakdown over the selection.
    pub fn usage_table(self) -> Vec<UsageRow> {
        usage_table(self.snapshot.filtered(&self.selection))
    }
}
