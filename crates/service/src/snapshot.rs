//! The owned, immutable query snapshot.
//!
//! A [`QuerySnapshot`] is built once per committed epoch: it owns the
//! full epoch-tagged record set plus the indexes queries need (per-job
//! posting lists, the pre-parsed fuzzy-hash corpus). Because it is
//! immutable and `Arc`-shared, any number of query threads can read it
//! with no locking at all while the daemon ingests and commits the next
//! epoch — commit simply publishes a *new* snapshot; in-flight queries
//! keep the one they started with (see `daemon::SharedState`).

use crate::daemon::EpochRecord;
use siren_analysis::{library_usage, usage_table, LibraryUsageRow, UsageRow};
use siren_consolidate::ProcessRecord;
use siren_fuzzy::{similarity_search, FuzzyHash};
use siren_proto::{NeighborRow, QueryRequest, QueryResponse, RecordRow, Selection, StatusInfo};
use std::collections::HashMap;

/// One nearest-neighbor hit, borrowing the matching record from the
/// snapshot it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighbor<'a> {
    /// Similarity score, 0–100.
    pub score: u32,
    /// Epoch the matching record was committed under.
    pub epoch: u64,
    /// The matching record.
    pub record: &'a ProcessRecord,
}

/// An immutable, index-carrying view of every committed record.
#[derive(Debug, Default)]
pub struct QuerySnapshot {
    records: Vec<EpochRecord>,
    by_job: HashMap<u64, Vec<usize>>,
    /// Pre-parsed `FILE_H` hashes (built once here instead of on every
    /// nearest-neighbor request, which the borrowing engine used to do).
    corpus: Vec<FuzzyHash>,
    corpus_owners: Vec<usize>,
}

impl QuerySnapshot {
    /// Index `records` (one pass; FILE_H hashes parsed up front).
    pub fn build(records: Vec<EpochRecord>) -> Self {
        let mut by_job: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut corpus = Vec::new();
        let mut corpus_owners = Vec::new();
        for (i, er) in records.iter().enumerate() {
            by_job.entry(er.record.key.job_id).or_default().push(i);
            if let Some(h) = &er.record.file_hash {
                if let Ok(parsed) = FuzzyHash::parse(h) {
                    corpus.push(parsed);
                    corpus_owners.push(i);
                }
            }
        }
        Self {
            records,
            by_job,
            corpus,
            corpus_owners,
        }
    }

    /// The snapshot of an empty store.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Total records across epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no epoch has committed records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Every record, epoch-tagged, in commit order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Distinct epochs present, ascending.
    pub fn epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> = self.records.iter().map(|r| r.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
    }

    /// Every record of one job, across epochs, in commit order.
    pub fn job_records(&self, job_id: u64) -> Vec<&EpochRecord> {
        self.by_job
            .get(&job_id)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// All records of one epoch, in consolidation order.
    pub fn epoch_records(&self, epoch: u64) -> Vec<&ProcessRecord> {
        self.records
            .iter()
            .filter(|r| r.epoch == epoch)
            .map(|r| &r.record)
            .collect()
    }

    /// Records passing `selection`, in commit order.
    pub fn filtered(&self, selection: &Selection) -> Vec<&ProcessRecord> {
        self.records
            .iter()
            .filter(|er| selection.matches(er.epoch, &er.record))
            .map(|er| &er.record)
            .collect()
    }

    /// Start building a filtered selection.
    pub fn select(&self) -> SnapshotSelection<'_> {
        SnapshotSelection {
            snapshot: self,
            selection: Selection::all(),
        }
    }

    /// Fuzzy-hash nearest neighbors of `hash` (an SSDeep-style
    /// `block:sig1:sig2` string) over the records' `FILE_H` column.
    /// Returns up to `k` hits scoring at least `min_score`, best first.
    pub fn nearest_neighbors(&self, hash: &str, k: usize, min_score: u32) -> Vec<Neighbor<'_>> {
        let Ok(baseline) = FuzzyHash::parse(hash) else {
            return Vec::new();
        };
        similarity_search(&baseline, &self.corpus, min_score)
            .into_iter()
            .take(k)
            .map(|hit| {
                let er = &self.records[self.corpus_owners[hit.index]];
                Neighbor {
                    score: hit.score,
                    epoch: er.epoch,
                    record: &er.record,
                }
            })
            .collect()
    }

    /// Answer one protocol request against this snapshot. `status`
    /// carries the live daemon counters (the snapshot itself only knows
    /// committed state); its store-shape fields are overwritten from the
    /// snapshot so a `Status` answer is always self-consistent.
    pub fn respond(&self, mut status: StatusInfo, request: &QueryRequest) -> QueryResponse {
        match request {
            QueryRequest::Status => {
                status.committed_epochs = self.epochs();
                status.records = self.len() as u64;
                QueryResponse::Status(status)
            }
            QueryRequest::ByJob { job_id } => QueryResponse::Rows(
                self.job_records(*job_id)
                    .into_iter()
                    .map(|er| RecordRow {
                        epoch: er.epoch,
                        record: er.record.clone(),
                    })
                    .collect(),
            ),
            QueryRequest::LibraryUsage { selection } => {
                QueryResponse::LibraryUsage(library_usage(self.filtered(selection)))
            }
            QueryRequest::Neighbors { hash, k, min_score } => QueryResponse::Neighbors(
                self.nearest_neighbors(hash, *k as usize, *min_score)
                    .into_iter()
                    .map(|n| NeighborRow {
                        score: n.score,
                        epoch: n.epoch,
                        record: n.record.clone(),
                    })
                    .collect(),
            ),
        }
    }
}

/// Fluent filter over a [`QuerySnapshot`].
#[derive(Debug)]
pub struct SnapshotSelection<'s> {
    snapshot: &'s QuerySnapshot,
    selection: Selection,
}

impl<'s> SnapshotSelection<'s> {
    /// Restrict to one epoch.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.selection = self.selection.epoch(epoch);
        self
    }

    /// Restrict to one host.
    pub fn host(mut self, host: &str) -> Self {
        self.selection = self.selection.host(host);
        self
    }

    /// Restrict to `start ..= end` collection timestamps.
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.selection = self.selection.between(start, end);
        self
    }

    /// The accumulated filter (e.g. to send over the wire instead).
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Matching records.
    pub fn records(self) -> Vec<&'s ProcessRecord> {
        self.snapshot.filtered(&self.selection)
    }

    /// Library usage over the selection (`siren-analysis` aggregation —
    /// the same computation behind the paper's library tables).
    pub fn library_usage(self) -> Vec<LibraryUsageRow> {
        library_usage(self.snapshot.filtered(&self.selection))
    }

    /// The paper's Table-2 usage breakdown over the selection.
    pub fn usage_table(self) -> Vec<UsageRow> {
        let records: Vec<ProcessRecord> = self
            .snapshot
            .filtered(&self.selection)
            .into_iter()
            .cloned()
            .collect();
        usage_table(&records)
    }
}
