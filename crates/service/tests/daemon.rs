//! Daemon lifecycle tests: epoch commits, sentinel-driven closes,
//! crash-resume, and cross-epoch queries — all against the reference
//! serial consolidation of the same message streams.

use siren_cluster::{Campaign, CampaignConfig, FleetConfig};
use siren_collector::{Collector, PolicyMode, SENTINEL_BURST};
use siren_consolidate::{consolidate, ProcessRecord};
use siren_db::Database;
use siren_net::{SimChannel, SimConfig};
use siren_service::{ServiceConfig, SirenDaemon};
use siren_store::SegmentedOptions;
use siren_wire::{Message, MessageType, Reassembler};
use std::path::PathBuf;

fn fleet() -> FleetConfig {
    FleetConfig {
        clusters: 2,
        base: CampaignConfig {
            scale: 0.001,
            ..CampaignConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Collect one cluster campaign into a message vector (losslessly or
/// with injected datagram loss), ending with epoch-tagged sentinels.
fn campaign_messages(cluster: usize, epoch: u64, loss: f64, seed: u64) -> Vec<Message> {
    let cfg = fleet().campaign_config(cluster);
    let channel = if loss > 0.0 {
        SimConfig::with_loss(loss, seed)
    } else {
        SimConfig::perfect()
    };
    let (tx, rx) = SimChannel::create(channel);
    let mut collector = Collector::new(&tx, PolicyMode::Selective)
        .with_sender_id(cluster as u32)
        .with_epoch(epoch);
    Campaign::new(cfg).run(|ctx| collector.observe(&ctx));
    collector.end_campaign();
    rx.drain_messages().0
}

/// The reference: one serial reassembler + database + consolidation.
fn serial_reference(messages: &[Message]) -> Vec<ProcessRecord> {
    let mut reasm = Reassembler::new();
    let db = Database::in_memory();
    for msg in messages {
        if msg.header.mtype == MessageType::End {
            continue;
        }
        if let Some(done) = reasm.push(msg.clone()) {
            db.insert_message(done).unwrap();
        }
    }
    consolidate(&db).records
}

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tight_store() -> SegmentedOptions {
    SegmentedOptions {
        rotate_bytes: 16 * 1024,
        compact_min_files: 2,
        background_compaction: false,
    }
}

#[test]
fn sentinels_close_epochs_and_queries_span_them() {
    let dir = temp_data_dir("epochs");
    let cfg = ServiceConfig {
        store: tight_store(),
        shards: 2,
        ..ServiceConfig::at(&dir)
    };
    let (mut daemon, recovery) = SirenDaemon::open(cfg).unwrap();
    assert_eq!(recovery, Default::default());

    let mut references = Vec::new();
    for epoch in 0..2u64 {
        let messages = campaign_messages(epoch as usize, epoch, 0.0, 0);
        references.push(serial_reference(&messages));
        let mut summary = None;
        for msg in messages {
            if let Some(s) = daemon.push(msg).unwrap() {
                summary = Some(s);
            }
        }
        let summary = summary.expect("sentinel burst must close the epoch");
        assert_eq!(summary.epoch, epoch);
        assert_eq!(summary.records as usize, references[epoch as usize].len());
        assert_eq!(summary.senders_closed, 1);
        // First END copy closes; later copies fall outside the epoch.
        assert_eq!(summary.sentinels_seen as usize, 1);
        assert_eq!(summary.epoch_tag_mismatches, 0);
        assert_eq!(daemon.open_epoch(), None);
    }
    assert_eq!(daemon.committed_epochs(), vec![0, 1]);

    // Cross-epoch queries.
    let query = daemon.snapshot();
    assert_eq!(query.epochs(), vec![0, 1]);
    for (epoch, reference) in references.iter().enumerate() {
        let got: Vec<ProcessRecord> = query
            .epoch_records(epoch as u64)
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(&got, reference, "epoch {epoch} records");
    }
    // Per-job lookups agree with the reference.
    let probe = &references[1][0];
    let hits = query.job_records(probe.key.job_id);
    assert!(hits.iter().any(|er| &er.record == probe));
    assert!(hits
        .iter()
        .all(|er| er.record.key.job_id == probe.key.job_id));

    // Library usage over a host/time selection matches a hand filter.
    let host = probe.key.host.clone();
    let rows = query.select().host(&host).library_usage();
    let hand: Vec<&ProcessRecord> = references
        .iter()
        .flatten()
        .filter(|r| r.key.host == host)
        .collect();
    let hand_rows = siren_analysis::library_usage(hand);
    assert_eq!(rows, hand_rows);

    // Fuzzy nearest neighbors: probing with a record's own FILE_H must
    // return that record with score 100.
    if let Some((hash, owner)) = references
        .iter()
        .flatten()
        .find_map(|r| r.file_hash.clone().map(|h| (h, r.clone())))
    {
        let snapshot = daemon.snapshot();
        let neighbors = snapshot.nearest_neighbors(&hash, 5, 50);
        assert!(!neighbors.is_empty());
        assert_eq!(neighbors[0].score, 100);
        assert_eq!(
            neighbors[0].record.file_hash.as_deref(),
            Some(hash.as_str())
        );
        let _ = owner;
    } else {
        panic!("campaign must produce at least one FILE_H record");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restart_between_epochs_recovers_committed_records() {
    let dir = temp_data_dir("restart");
    let cfg = || ServiceConfig {
        store: tight_store(),
        ..ServiceConfig::at(&dir)
    };

    let messages = campaign_messages(0, 0, 0.0, 1);
    let reference = serial_reference(&messages);
    {
        let (mut daemon, _) = SirenDaemon::open(cfg()).unwrap();
        for msg in messages {
            daemon.push(msg).unwrap();
        }
        assert_eq!(daemon.committed_epochs(), vec![0]);
    }
    let (daemon, recovery) = SirenDaemon::open(cfg()).unwrap();
    assert_eq!(recovery.committed_epochs, vec![0]);
    assert_eq!(recovery.consolidated_records as usize, reference.len());
    assert_eq!(recovery.resumed_epoch, None);
    let got: Vec<ProcessRecord> = daemon
        .snapshot()
        .epoch_records(0)
        .into_iter()
        .cloned()
        .collect();
    assert_eq!(got, reference);
    // The next campaign lands in a fresh epoch — even when it commits
    // zero records (every datagram lost), its seal marker must survive
    // the next restart so the id is never reused.
    let (mut daemon, _) = (daemon, ());
    let next = daemon.begin_epoch().unwrap();
    assert_eq!(next, 1);
    let summary = daemon.close_epoch().unwrap();
    assert_eq!(summary.records, 0);
    drop(daemon);

    let (mut daemon, recovery) = SirenDaemon::open(cfg()).unwrap();
    assert_eq!(
        recovery.committed_epochs,
        vec![0, 1],
        "empty epoch's commit survives restart via its seal"
    );
    assert_eq!(daemon.begin_epoch().unwrap(), 2, "id not reused");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_mid_epoch_resumes_and_converges_on_resend() {
    let dir = temp_data_dir("crash");
    let cfg = || ServiceConfig {
        store: tight_store(),
        shards: 2,
        ..ServiceConfig::at(&dir)
    };

    let epoch0 = campaign_messages(0, 0, 0.0, 2);
    let epoch1 = campaign_messages(1, 1, 0.0, 3);
    let ref0 = serial_reference(&epoch0);
    let ref1 = serial_reference(&epoch1);

    // Run epoch 0 to completion, then die partway through epoch 1.
    {
        let (mut daemon, _) = SirenDaemon::open(cfg()).unwrap();
        for msg in &epoch0 {
            daemon.push(msg.clone()).unwrap();
        }
        let split = epoch1.len() / 3;
        for msg in &epoch1[..split] {
            daemon.push(msg.clone()).unwrap();
        }
        daemon.simulate_crash().unwrap();
    }
    // Harsher: tear the tail off one of the epoch's shard WALs.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if name.contains(".msgs.shard0") {
            let data = std::fs::read(&path).unwrap();
            std::fs::write(&path, &data[..data.len() - data.len() / 7]).unwrap();
        }
    }

    // Restart: epoch 0 is back from the consolidated store, epoch 1
    // resumes from its WALs; a full re-send converges.
    let (mut daemon, recovery) = SirenDaemon::open(cfg()).unwrap();
    assert_eq!(recovery.committed_epochs, vec![0]);
    assert_eq!(recovery.resumed_epoch, Some(1));
    assert_eq!(daemon.open_epoch(), Some(1));
    let mut summary = None;
    for msg in &epoch1 {
        if let Some(s) = daemon.push(msg.clone()).unwrap() {
            summary = Some(s);
        }
    }
    let summary = summary.expect("re-sent sentinel closes the resumed epoch");
    assert_eq!(summary.epoch, 1);
    assert!(
        summary
            .shard_stats
            .iter()
            .map(|s| s.replayed_records)
            .sum::<u64>()
            > 0,
        "resume must replay persisted rows"
    );

    let query = daemon.snapshot();
    assert_eq!(query.epochs(), vec![0, 1]);
    let got0: Vec<ProcessRecord> = query.epoch_records(0).into_iter().cloned().collect();
    let got1: Vec<ProcessRecord> = query.epoch_records(1).into_iter().cloned().collect();
    assert_eq!(got0, ref0);
    assert_eq!(got1, ref1, "crash + resend must equal the crash-free run");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stray_and_mismatched_sentinels_are_tolerated() {
    let dir = temp_data_dir("stray");
    let (mut daemon, _) = SirenDaemon::open(ServiceConfig {
        store: tight_store(),
        ..ServiceConfig::at(&dir)
    })
    .unwrap();

    // Sentinels with no open epoch are dropped.
    for _ in 0..SENTINEL_BURST {
        assert!(daemon
            .push(siren_wire::sentinel_message(9, 0))
            .unwrap()
            .is_none());
    }

    // A campaign whose sender believes it is epoch 7 must NOT close the
    // daemon's epoch 0 — a mismatched tag is a straggler from another
    // campaign, counted and ignored (trusting it would commit a torn
    // epoch mid-stream).
    let messages = campaign_messages(0, 7, 0.0, 4);
    for msg in messages {
        assert!(
            daemon.push(msg).unwrap().is_none(),
            "mismatched sentinel tag must never close the epoch"
        );
    }
    assert_eq!(daemon.open_epoch(), Some(0), "epoch stays open");
    let summary = daemon.close_epoch().unwrap();
    assert_eq!(summary.epoch, 0);
    assert_eq!(summary.epoch_tag_mismatches, SENTINEL_BURST as u64);
    assert_eq!(summary.senders_closed, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_loss_streams_consolidate_like_serial() {
    let dir = temp_data_dir("loss");
    let (mut daemon, _) = SirenDaemon::open(ServiceConfig {
        store: tight_store(),
        shards: 3,
        ..ServiceConfig::at(&dir)
    })
    .unwrap();

    for epoch in 0..2u64 {
        let messages = campaign_messages(epoch as usize, epoch, 0.05, 40 + epoch);
        let reference = serial_reference(&messages);
        for msg in &messages {
            daemon.push(msg.clone()).unwrap();
        }
        // Loss may have eaten every sentinel copy; the operator-driven
        // close covers that path.
        if daemon.open_epoch().is_some() {
            daemon.close_epoch().unwrap();
        }
        let got: Vec<ProcessRecord> = daemon
            .snapshot()
            .epoch_records(epoch)
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(got, reference, "epoch {epoch} under loss");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
