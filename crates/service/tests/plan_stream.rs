//! Protocol-v2 end-to-end tests: composable plans answered as batch
//! streams with resumable, snapshot-pinned cursors.
//!
//! The acceptance bar: a v2 client paginating an epoch-slice plan
//! **while epochs commit mid-cursor** returns exactly the rows a
//! one-shot v1 query saw on the pinned snapshot; a v1 client works
//! unchanged against the same server; and the property suite fuzzes
//! plans (slices, filters, orders, limits, projections, batch/page
//! geometry) against a hand-computed oracle.

use proptest::test_runner::rng_for;
use siren_consolidate::ProcessRecord;
use siren_db::Record;
use siren_proto::{
    ClientError, Order, PlanRow, Projection, QueryError, QueryPlan, RecordRow, Selection,
    SirenClient,
};
use siren_service::{ServiceConfig, SirenDaemon};
use siren_store::SegmentedOptions;
use siren_wire::{Layer, MessageType};
use std::path::PathBuf;
use std::time::Duration;

fn record(i: u64, jobs: u64) -> ProcessRecord {
    let row = Record {
        job_id: i % jobs,
        step_id: 0,
        pid: i as u32,
        exe_hash: format!("{i:032x}"),
        host: format!("nid{:06}", i % 7),
        time: 1_700_000_000 + (i * 37) % 1000,
        layer: Layer::SelfExe,
        mtype: MessageType::Meta,
        content: String::new(),
    };
    let mut rec = ProcessRecord::new(&row);
    rec.meta.insert("user".into(), format!("user_{}", i % 5));
    rec.meta
        .insert("path".into(), format!("/opt/app/bin{}", i % 16));
    rec.objects = Some(vec!["/lib64/libc.so.6".into()]);
    rec.file_hash = Some(format!("12:abcdef{i:04}ghijkl:mnopqr{i:04}stuvwx"));
    rec
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-plan-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig {
        store: SegmentedOptions {
            rotate_bytes: 64 * 1024,
            compact_min_files: 4,
            background_compaction: false,
        },
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::at(dir)
    }
}

/// The headline guarantee: a cursor opened before an epoch commits
/// keeps answering from the snapshot it pinned — pagination mid-ingest
/// returns exactly what a one-shot v1 `ByJob` returned *before* the
/// commits, and a fresh plan afterwards sees the new epochs.
#[test]
fn pagination_is_snapshot_consistent_across_mid_cursor_commits() {
    let dir = temp_dir("pinned");
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();

    // A 3-epoch corpus where job 3 has rows in every epoch.
    for epoch in 0..3u64 {
        let records: Vec<ProcessRecord> = (epoch * 200..(epoch + 1) * 200)
            .map(|i| record(i, 10))
            .collect();
        assert_eq!(daemon.import_epoch(records).unwrap(), epoch);
    }
    let addr = daemon.query_addr().unwrap();

    // One-shot v1 answer on the current (to-be-pinned) snapshot, from a
    // connection pinned to v1.
    let mut v1 = SirenClient::connect_with_versions(addr, 1, 1, Duration::from_secs(5)).unwrap();
    assert_eq!(v1.negotiated_version(), 1);
    let one_shot: Vec<RecordRow> = v1.by_job(3).unwrap();
    assert!(!one_shot.is_empty());

    // Open the streamed cursor with a page far smaller than the answer,
    // so pagination spans many fetches. A default connection negotiates
    // the current protocol version.
    let mut v2 = SirenClient::connect(addr).unwrap();
    assert_eq!(v2.negotiated_version(), siren_proto::PROTOCOL_VERSION);
    let plan = QueryPlan::records()
        .filter(Selection::all().job(3).epochs(0, 2))
        .batch_rows(4)
        .page_rows(8);
    let mut stream = v2.query(plan).unwrap();

    // First page only, then let two more epochs commit mid-cursor.
    let mut streamed: Vec<RecordRow> = Vec::new();
    for _ in 0..8 {
        match stream.next() {
            Some(Ok(row)) => streamed.push(row.into_record().unwrap()),
            other => panic!("expected a row, got {other:?}"),
        }
    }
    for epoch in 3..5u64 {
        let records: Vec<ProcessRecord> = (epoch * 200..(epoch + 1) * 200)
            .map(|i| record(i, 10))
            .collect();
        daemon.import_epoch(records).unwrap();
    }

    // Drain the rest of the cursor: the mid-cursor commits must be
    // invisible (pinned snapshot), so rows == the pre-commit one-shot.
    for row in &mut stream {
        streamed.push(row.unwrap().into_record().unwrap());
    }
    drop(stream);
    assert_eq!(streamed, one_shot, "pagination tore across commits");

    // A *fresh* plan sees the new epochs (the pin is per-cursor, not a
    // stale server).
    let fresh: Vec<PlanRow> = v2
        .query(QueryPlan::records().filter(Selection::all().job(3)))
        .unwrap()
        .collect_rows()
        .unwrap();
    assert!(fresh.len() > one_shot.len());

    // And the epoch-slice plan still answers only the sliced epochs.
    let sliced: Vec<PlanRow> = v2
        .query(QueryPlan::records().filter(Selection::all().job(3).epochs(0, 2)))
        .unwrap()
        .collect_rows()
        .unwrap();
    assert_eq!(
        sliced
            .into_iter()
            .map(|r| r.into_record().unwrap())
            .collect::<Vec<_>>(),
        one_shot
    );

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Fuzzed plans over fuzzed corpora: the wire stream (batched and
/// paginated) must equal a hand-computed oracle — filter, order,
/// limit, projection — applied to the daemon's snapshot.
#[test]
fn fuzzed_plans_match_the_oracle_over_the_wire() {
    let dir = temp_dir("prop");
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    let mut rng = rng_for("fuzzed_plans_match_the_oracle");

    let epochs = 4u64;
    let per_epoch = 120u64;
    for epoch in 0..epochs {
        let records: Vec<ProcessRecord> = (epoch * per_epoch..(epoch + 1) * per_epoch)
            .map(|i| record(i, 13))
            .collect();
        daemon.import_epoch(records).unwrap();
    }
    let snapshot = daemon.snapshot();
    let addr = daemon.query_addr().unwrap();
    let mut client = SirenClient::connect(addr).unwrap();

    for _ in 0..40 {
        // Random selection over the corpus's actual value ranges.
        let mut sel = Selection::all();
        if rng.below(3) == 0 {
            sel = sel.job(rng.below(15));
        }
        if rng.below(3) == 0 {
            sel = sel.host(format!("nid{:06}", rng.below(8)));
        }
        if rng.below(3) == 0 {
            let lo = rng.below(epochs);
            sel = sel.epochs(lo, lo + rng.below(3));
        }
        if rng.below(3) == 0 {
            let lo = 1_700_000_000 + rng.below(800);
            sel = sel.between(lo, lo + rng.below(400));
        }
        let order = match rng.below(3) {
            0 => Order::Commit,
            1 => Order::TimeAsc,
            _ => Order::TimeDesc,
        };
        let projection = if rng.below(2) == 0 {
            Projection::Full
        } else {
            Projection::Keys
        };
        let mut plan = QueryPlan::records()
            .filter(sel.clone())
            .order_by(order)
            .project(projection)
            .batch_rows(1 + rng.below(7) as u32)
            .page_rows(1 + rng.below(40) as u32);
        let limit = if rng.below(2) == 0 {
            let l = rng.below(200);
            plan = plan.limit(l);
            Some(l as usize)
        } else {
            None
        };

        // Oracle: filter in commit order, stable-sort, limit, project.
        let mut expected: Vec<RecordRow> = snapshot
            .iter()
            .filter(|er| sel.matches(er.epoch, &er.record))
            .map(|er| RecordRow {
                epoch: er.epoch,
                record: er.record.clone(),
            })
            .collect();
        match order {
            Order::Commit => {}
            Order::TimeAsc => expected.sort_by_key(|r| r.record.key.time),
            Order::TimeDesc => expected.sort_by_key(|r| std::cmp::Reverse(r.record.key.time)),
        }
        if let Some(l) = limit {
            expected.truncate(l);
        }
        for row in &mut expected {
            projection.apply(&mut row.record);
        }

        let got: Vec<RecordRow> = client
            .query(plan.clone())
            .unwrap()
            .collect_rows()
            .unwrap()
            .into_iter()
            .map(|r| r.into_record().unwrap())
            .collect();
        if got != expected {
            eprintln!("PLAN: {plan:?}");
            eprintln!("got {} rows, expected {}", got.len(), expected.len());
            for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
                if g != e {
                    eprintln!(
                        "first mismatch at {i}:\n  got {:?} {:?}\n  exp {:?} {:?}",
                        g.epoch, g.record.key, e.epoch, e.record.key
                    );
                    break;
                }
            }
            panic!("plan answered wrong rows");
        }
    }

    // Aggregation source: the usage table over a fuzzed selection must
    // equal the snapshot's own aggregation.
    for _ in 0..5 {
        let sel = if rng.below(2) == 0 {
            Selection::all()
        } else {
            Selection::all().epochs(0, rng.below(epochs))
        };
        let expected = {
            let records: Vec<ProcessRecord> = snapshot
                .iter()
                .filter(|er| sel.matches(er.epoch, &er.record))
                .map(|er| er.record.clone())
                .collect();
            siren_analysis::usage_table(&records)
        };
        let got: Vec<_> = client
            .query(QueryPlan::usage_table().filter(sel).batch_rows(3))
            .unwrap()
            .collect_rows()
            .unwrap()
            .into_iter()
            .map(|r| r.into_usage().unwrap())
            .collect();
        assert_eq!(got, expected);
    }

    // Neighbor source: scores and order must match the snapshot search.
    let probe = snapshot
        .iter()
        .find_map(|er| er.record.file_hash.clone())
        .unwrap();
    let got: Vec<_> = client
        .query(QueryPlan::neighbors(&probe, 50).limit(10).batch_rows(3))
        .unwrap()
        .collect_rows()
        .unwrap()
        .into_iter()
        .map(|r| r.into_neighbor().unwrap())
        .collect();
    let expected: Vec<(u32, u64)> = snapshot
        .nearest_neighbors(&probe, 10, 50)
        .into_iter()
        .map(|n| (n.score, n.epoch))
        .collect();
    assert_eq!(
        got.iter().map(|n| (n.score, n.epoch)).collect::<Vec<_>>(),
        expected
    );
    assert_eq!(got[0].score, 100);

    // A *filtered* neighbor plan ranks over the selection — filter
    // first, then limit — so in-selection hits shadowed by better
    // out-of-selection ones still surface. (The probe's exact match
    // lives in some epoch E; slicing to a different epoch must still
    // return that epoch's own best hits, not an empty set.)
    for slice in 0..epochs {
        let sel = Selection::all().epochs(slice, slice);
        let got: Vec<_> = client
            .query(
                QueryPlan::neighbors(&probe, 30)
                    .filter(sel.clone())
                    .limit(4),
            )
            .unwrap()
            .collect_rows()
            .unwrap()
            .into_iter()
            .map(|r| r.into_neighbor().unwrap())
            .collect();
        let expected: Vec<(u32, u64)> = snapshot
            .nearest_neighbors(&probe, usize::MAX, 30)
            .into_iter()
            .filter(|n| sel.matches(n.epoch, n.record))
            .take(4)
            .map(|n| (n.score, n.epoch))
            .collect();
        assert_eq!(
            got.iter().map(|n| (n.score, n.epoch)).collect::<Vec<_>>(),
            expected,
            "epoch slice {slice}"
        );
        assert!(got.iter().all(|n| n.epoch == slice));
        assert!(!got.is_empty(), "every epoch has in-slice hits");
    }

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The in-process `plan_rows` surface and the wire stream are the same
/// executor; spot-check they agree (the wire side is already oracle-
/// checked above).
#[test]
fn in_process_plan_rows_equals_wire_stream() {
    let dir = temp_dir("inproc");
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    daemon
        .import_epoch((0..300).map(|i| record(i, 9)).collect())
        .unwrap();
    daemon
        .import_epoch((300..500).map(|i| record(i, 9)).collect())
        .unwrap();
    let addr = daemon.query_addr().unwrap();
    let mut client = SirenClient::connect(addr).unwrap();

    let plan = QueryPlan::records()
        .filter(Selection::all().epochs(1, 1).host("nid000003"))
        .order_by(Order::TimeDesc)
        .project(Projection::Keys)
        .batch_rows(5)
        .page_rows(11);
    let local = daemon.snapshot().plan_rows(plan.clone()).unwrap();
    let wire = client.query(plan).unwrap().collect_rows().unwrap();
    assert!(!local.is_empty());
    assert_eq!(local, wire);

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// v1 clients work unchanged against the v2 server, and the v1
/// fallback in the typed client answers expressible plans.
#[test]
fn v1_clients_and_fallback_work_against_the_v2_server() {
    let dir = temp_dir("v1compat");
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    daemon
        .import_epoch((0..200).map(|i| record(i, 6)).collect())
        .unwrap();
    let addr = daemon.query_addr().unwrap();
    let snapshot = daemon.snapshot();

    let mut v1 = SirenClient::connect_with_versions(addr, 1, 1, Duration::from_secs(5)).unwrap();
    assert_eq!(v1.negotiated_version(), 1);

    // The whole v1 surface answers as before.
    let status = v1.status().unwrap();
    assert_eq!(status.protocol_version, 1);
    assert_eq!(status.records, snapshot.len() as u64);
    // …and the v2-only counters stay at their defaults on a v1 answer.
    assert_eq!(status.open_cursors, 0);
    assert!(status.version_connections.is_empty());
    let rows = v1.by_job(2).unwrap();
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.record.key.job_id == 2));
    assert!(!v1
        .library_usage(Selection::all().host("nid000001"))
        .unwrap()
        .is_empty());

    // A v2-only selection is refused client-side on a v1 connection.
    assert!(matches!(
        v1.library_usage(Selection::all().job(1)),
        Err(ClientError::Unsupported(_))
    ));

    // The v1 fallback answers a job-keyed record plan identically to a
    // v2 connection's stream.
    let plan = QueryPlan::records()
        .filter(Selection::all().job(2))
        .order_by(Order::TimeAsc)
        .limit(20)
        .project(Projection::Keys);
    let via_v1 = v1.query(plan.clone()).unwrap().collect_rows().unwrap();
    let mut v2 = SirenClient::connect(addr).unwrap();
    let via_v2 = v2.query(plan).unwrap().collect_rows().unwrap();
    assert_eq!(via_v1, via_v2);
    assert!(!via_v1.is_empty());

    // Inexpressible plans fail typed, not silently.
    assert!(matches!(
        v1.query(QueryPlan::usage_table()),
        Err(ClientError::Unsupported(_))
    ));
    assert!(matches!(
        v1.query(QueryPlan::records()),
        Err(ClientError::Unsupported(_))
    ));

    // A raw v2 Plan tag on the v1 connection draws UnknownRequest and
    // the connection survives (same posture as any unknown tag).
    assert!(matches!(
        v1.call(&siren_proto::QueryRequest::FetchCursor { cursor: 1 }),
        Err(ClientError::Server(QueryError::UnknownRequest(5)))
    ));
    assert!(v1.status().is_ok(), "connection must survive unknown tag");

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Inverted ranges draw the typed `InvalidPlan` error on v2 paths
/// (plan open and v2 LibraryUsage), while a v1 connection keeps the
/// historical silently-empty answer.
#[test]
fn inverted_ranges_are_rejected_with_typed_errors_on_v2() {
    let dir = temp_dir("inverted");
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    daemon
        .import_epoch((0..50).map(|i| record(i, 4)).collect())
        .unwrap();
    let addr = daemon.query_addr().unwrap();

    let mut v2 = SirenClient::connect(addr).unwrap();
    // Client-side validation fires first…
    assert!(matches!(
        v2.query(QueryPlan::records().filter(Selection::all().between(9, 3))),
        Err(ClientError::Server(QueryError::InvalidPlan(_)))
    ));
    // …and the server rejects a hand-rolled inverted LibraryUsage too.
    assert!(matches!(
        v2.call(&siren_proto::QueryRequest::LibraryUsage {
            selection: Selection::all().between(9, 3),
        }),
        Err(ClientError::Server(QueryError::InvalidPlan(_)))
    ));
    // The connection survives the typed error.
    assert!(v2.status().is_ok());

    // v1 keeps its historical behavior: empty rows, no error.
    let mut v1 = SirenClient::connect_with_versions(addr, 1, 1, Duration::from_secs(5)).unwrap();
    assert!(v1
        .library_usage(Selection::all().between(9, 3))
        .unwrap()
        .is_empty());

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Cursor lifecycle: TTL eviction, explicit close, capacity bound, and
/// the Status gauges that surface it all.
#[test]
fn cursor_ttl_capacity_and_status_gauges() {
    let dir = temp_dir("cursors");
    let cfg = ServiceConfig {
        cursor_ttl: Duration::from_millis(400),
        query_max_cursors: 2,
        ..server_config(&dir)
    };
    let (mut daemon, _) = SirenDaemon::open(cfg).unwrap();
    daemon
        .import_epoch((0..400).map(|i| record(i, 3)).collect())
        .unwrap();
    let addr = daemon.query_addr().unwrap();

    let paged = || {
        QueryPlan::records()
            .filter(Selection::all().job(1))
            .batch_rows(4)
            .page_rows(4)
    };

    // 1. TTL: a parked cursor expires and a late fetch draws the typed
    //    UnknownCursor error (stream surfaces it as a server error).
    {
        let mut client = SirenClient::connect(addr).unwrap();
        let mut stream = client.query(paged()).unwrap();
        for _ in 0..4 {
            stream.next().unwrap().unwrap();
        }
        // The server parks the cursor right after flushing the page;
        // give its worker a beat before reading the gauge.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(daemon.open_cursors(), 1);
        assert_eq!(daemon.status().open_cursors, 1);
        std::thread::sleep(Duration::from_millis(1000));
        assert_eq!(daemon.open_cursors(), 0, "TTL must evict the cursor");
        match stream.next() {
            Some(Err(ClientError::Server(QueryError::UnknownCursor(_)))) => {}
            other => panic!("expected UnknownCursor, got {other:?}"),
        }
        drop(stream);
        // A typed server error arrives on a frame boundary: the
        // connection stays usable — dropping the failed stream must
        // not poison the client.
        assert!(
            client.status().is_ok(),
            "client must survive a clean typed stream error"
        );
    }

    // 2. Capacity: parking a third cursor evicts the stalest.
    {
        let mut c1 = SirenClient::connect(addr).unwrap();
        let mut c2 = SirenClient::connect(addr).unwrap();
        let mut c3 = SirenClient::connect(addr).unwrap();
        let mut s1 = c1.query(paged()).unwrap();
        s1.next().unwrap().unwrap();
        let mut s2 = c2.query(paged()).unwrap();
        s2.next().unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(daemon.open_cursors(), 2);
        let mut s3 = c3.query(paged()).unwrap();
        s3.next().unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(daemon.open_cursors(), 2, "capacity bound must hold");
        // The stalest (s1) was evicted; draining it hits UnknownCursor.
        let r1: Result<Vec<_>, _> = s1.collect_rows();
        assert!(matches!(
            r1,
            Err(ClientError::Server(QueryError::UnknownCursor(_)))
        ));
        // The survivors drain fine.
        assert!(s2.collect_rows().is_ok());
        assert!(s3.collect_rows().is_ok());
    }

    // 3. Dropping a stream mid-page closes its cursor (explicit close)
    //    and the connection stays usable.
    {
        let mut client = SirenClient::connect(addr).unwrap();
        {
            let mut stream = client.query(paged()).unwrap();
            stream.next().unwrap().unwrap();
        } // drop mid-stream
        assert_eq!(daemon.open_cursors(), 0, "drop must close the cursor");
        let status = client.status().unwrap();
        assert_eq!(status.open_cursors, 0);
        // Histogram counts this test's current-version connections (the
        // daemon here is fresh, so only the default negotiation shows
        // up).
        assert!(status
            .version_connections
            .iter()
            .any(|&(v, n)| v == siren_proto::PROTOCOL_VERSION && n >= 1));
        assert_eq!(status.queries_refused, 0);
    }

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}
