//! End-to-end query-server tests: a daemon ingesting epochs over real
//! UDP loopback while concurrent clients query over TCP. At every
//! commit point the wire answers must equal the in-process
//! [`QuerySnapshot`] results — the acceptance bar for the versioned
//! query protocol. A second suite feeds the server hostile bytes
//! (truncated frames, bad checksums, unknown tags, absurd length
//! prefixes) and requires typed errors and clean closes, never panics.

use siren_cluster::{Campaign, CampaignConfig, FleetConfig};
use siren_collector::{Collector, PolicyMode};
use siren_net::{Sender as _, SimChannel, SimConfig, UdpReceiver, UdpSender};
use siren_proto::{
    encode_hello, read_frame, write_frame, ClientError, NeighborRow, QueryError, QueryRequest,
    QueryResponse, RecordRow, Selection, SirenClient, TraceFilter, TraceId, PROTOCOL_VERSION,
};
use siren_service::{ServiceConfig, SirenDaemon};
use siren_store::SegmentedOptions;
use siren_wire::Message;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn campaign_messages(cluster: usize, epoch: u64, seed: u64) -> Vec<Message> {
    let cfg = FleetConfig {
        clusters: 3,
        base: CampaignConfig {
            scale: 0.001,
            ..CampaignConfig::default()
        },
        ..FleetConfig::default()
    }
    .campaign_config(cluster);
    let (tx, rx) = SimChannel::create(SimConfig::perfect());
    let mut collector = Collector::new(&tx, PolicyMode::Selective)
        .with_sender_id(cluster as u32)
        .with_epoch(epoch);
    let _ = seed;
    Campaign::new(cfg).run(|ctx| collector.observe(&ctx));
    collector.end_campaign();
    rx.drain_messages().0
}

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-qserver-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig {
        store: SegmentedOptions {
            rotate_bytes: 16 * 1024,
            compact_min_files: 2,
            background_compaction: false,
        },
        shards: 2,
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        quiet_period: Duration::from_millis(400),
        ..ServiceConfig::at(dir)
    }
}

#[test]
fn tcp_answers_equal_in_process_snapshot_at_every_commit_point() {
    let dir = temp_data_dir("e2e");
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    let qaddr = daemon.query_addr().expect("query server must be up");

    // Concurrent chaos clients: hammer the server on their own
    // connections for the whole ingest run, asserting only invariants
    // that hold at *any* instant (snapshot consistency: the Status
    // answer's record count and epoch list must describe one committed
    // snapshot, never a half-commit).
    let stop = Arc::new(AtomicBool::new(false));
    let chaos: Vec<_> = (0..2u64)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = SirenClient::connect(qaddr).expect("chaos connect");
                assert_eq!(client.negotiated_version(), PROTOCOL_VERSION);
                let mut calls = 0u64;
                let mut last_records = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let status = client.status().expect("status during ingest");
                    // Commits only ever add records; a torn snapshot
                    // could show a regression.
                    assert!(
                        status.records >= last_records,
                        "records went backwards: {} -> {}",
                        last_records,
                        status.records
                    );
                    last_records = status.records;
                    let job = calls * 7 + i;
                    let rows = client.by_job(job).expect("by_job during ingest");
                    assert!(rows.iter().all(|row| row.record.key.job_id == job));
                    calls += 1;
                }
                calls
            })
        })
        .collect();

    // Ingest three epochs over real UDP loopback.
    let receiver = UdpReceiver::spawn(65_536).unwrap();
    let sender = UdpSender::connect(receiver.local_addr()).unwrap();
    for epoch in 0..3u64 {
        let messages = campaign_messages(epoch as usize, epoch, epoch);
        for msg in &messages {
            sender.send(&msg.encode());
        }
        let summaries = daemon.drain_udp(&receiver, 1).unwrap();
        assert_eq!(summaries.len(), 1, "epoch {epoch} must commit");
        assert_eq!(summaries[0].epoch, epoch);

        // ---- Commit point: wire answers must equal the snapshot. ----
        let snapshot = daemon.snapshot();
        let mut client = SirenClient::connect(qaddr).unwrap();

        let status = client.status().unwrap();
        assert_eq!(status.committed_epochs, snapshot.epochs());
        assert_eq!(status.records, snapshot.len() as u64);
        assert_eq!(status.open_epoch, None);
        assert_eq!(status.protocol_version, PROTOCOL_VERSION);

        // Every job present in the snapshot answers identically on the
        // wire (spot-check a handful to keep the test fast).
        let mut jobs: Vec<u64> = snapshot.iter().map(|er| er.record.key.job_id).collect();
        jobs.sort_unstable();
        jobs.dedup();
        for &job in jobs.iter().step_by(jobs.len() / 5 + 1) {
            let wire = client.by_job(job).unwrap();
            let local: Vec<RecordRow> = snapshot
                .job_records(job)
                .into_iter()
                .map(|er| RecordRow {
                    epoch: er.epoch,
                    record: er.record.clone(),
                })
                .collect();
            assert_eq!(wire, local, "job {job} at epoch {epoch}");
        }
        // And an absent job answers an empty row set.
        assert!(client.by_job(u64::MAX).unwrap().is_empty());

        // Library usage under a host + time-range selection.
        let probe = &snapshot.get(snapshot.len() / 2).unwrap().record;
        let selection = Selection::all()
            .host(probe.key.host.clone())
            .between(0, u64::MAX / 2);
        let wire_rows = client.library_usage(selection.clone()).unwrap();
        let local_rows = snapshot
            .select()
            .host(&probe.key.host)
            .between(0, u64::MAX / 2)
            .library_usage();
        assert_eq!(wire_rows, local_rows, "library usage at epoch {epoch}");

        // Nearest neighbors around a real FILE_H probe.
        let probe_hash = snapshot.iter().find_map(|er| er.record.file_hash.clone());
        if let Some(hash) = probe_hash {
            let wire = client.neighbors(&hash, 5, 50).unwrap();
            let local: Vec<NeighborRow> = snapshot
                .nearest_neighbors(&hash, 5, 50)
                .into_iter()
                .map(|n| NeighborRow {
                    score: n.score,
                    epoch: n.epoch,
                    record: n.record.clone(),
                })
                .collect();
            assert_eq!(wire, local, "neighbors at epoch {epoch}");
            assert_eq!(wire[0].score, 100);
        }
    }

    stop.store(true, Ordering::Relaxed);
    for handle in chaos {
        let calls = handle.join().expect("chaos client must not panic");
        assert!(calls > 0, "chaos client never got a query through");
    }
    assert!(daemon.queries_served() > 0);
    let (accepted, _refused) = daemon.query_connections();
    assert!(accepted > 0, "chaos clients must register as accepted");
    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn quiet_period_fallback_commits_and_is_surfaced_in_status() {
    let dir = temp_data_dir("quiet");
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    let qaddr = daemon.query_addr().unwrap();

    let receiver = UdpReceiver::spawn(65_536).unwrap();
    let sender = UdpSender::connect(receiver.local_addr()).unwrap();
    // Strip every sentinel: the epoch can only close via the fallback.
    for msg in campaign_messages(0, 0, 9) {
        if msg.header.mtype != siren_wire::MessageType::End {
            sender.send(&msg.encode());
        }
    }
    let summaries = daemon.drain_udp(&receiver, 1).unwrap();
    assert_eq!(summaries.len(), 1);
    assert_eq!(summaries[0].senders_closed, 0, "no sentinel ever arrived");

    let mut client = SirenClient::connect(qaddr).unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.quiet_period_fallbacks, 1);
    assert_eq!(status.epoch_tag_mismatches, 0);
    assert_eq!(status.committed_epochs, vec![0]);

    // Mismatched-tag sentinels are counted live and visible over TCP
    // while the epoch is still open.
    daemon.begin_epoch().unwrap();
    for _ in 0..3 {
        daemon
            .push(siren_wire::sentinel_message_with_epoch(7, 0, Some(99)))
            .unwrap();
    }
    let status = client.status().unwrap();
    assert_eq!(status.open_epoch, Some(1));
    assert_eq!(status.epoch_tag_mismatches, 3);
    daemon.close_epoch().unwrap();
    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metrics_request_returns_live_registry_snapshot() {
    let dir = temp_data_dir("metrics");
    let cfg = ServiceConfig {
        // Zero threshold: every streamed plan lands in the slow ring,
        // so the ring's wire surface is exercised deterministically.
        slow_query_threshold: Duration::ZERO,
        ..server_config(&dir)
    };
    let (mut daemon, _) = SirenDaemon::open(cfg).unwrap();
    let qaddr = daemon.query_addr().unwrap();

    // Ingest one epoch over real UDP loopback so the ingest and commit
    // spans measure real work, not synthetic increments.
    let receiver = UdpReceiver::spawn(65_536).unwrap();
    let sender = UdpSender::connect(receiver.local_addr()).unwrap();
    for msg in campaign_messages(0, 0, 1) {
        sender.send(&msg.encode());
    }
    let summaries = daemon.drain_udp(&receiver, 1).unwrap();
    assert_eq!(summaries.len(), 1, "the epoch must commit");

    let mut client = SirenClient::connect(qaddr).unwrap();
    // A paged plan walk: parks a cursor between pages, so the cursor
    // table's hit counter and open-gauge high-water both move.
    let plan = siren_proto::QueryPlan::records().batch_rows(4).page_rows(8);
    let fingerprint = plan.fingerprint();
    let shape = plan.shape();
    let rows = client.query(plan).unwrap().collect_rows().unwrap();
    assert!(rows.len() > 8, "need multiple pages to exercise cursors");
    let status = client.status().unwrap();

    let m = client.metrics().unwrap();
    // Ingest tier: every histogram the acceptance bar names is nonzero.
    assert!(m.counter("ingest.messages_received") > 0);
    assert!(m.counter("ingest.rows_stored") > 0);
    assert!(m.histogram("ingest.reassembly_ns").unwrap().count > 0);
    assert!(m.histogram("ingest.batch_insert_ns").unwrap().count > 0);
    // Commit tier.
    assert_eq!(m.counter("service.epochs_committed"), 1);
    assert_eq!(
        m.counter("service.records_committed"),
        daemon.snapshot().len() as u64
    );
    assert_eq!(m.histogram("service.commit_ns").unwrap().count, 1);
    assert_eq!(m.histogram("service.publish_ns").unwrap().count, 1);
    // Query tier: the plan walk and the status call above all recorded
    // execution and serialization spans.
    assert!(m.counter("query.requests") > 0);
    assert!(m.histogram("query.exec_ns").unwrap().count > 0);
    assert!(m.histogram("query.queue_wait_ns").unwrap().count > 0);
    assert!(m.histogram("query.batch_serialize_ns").unwrap().count > 0);
    assert!(m.counter("query.negotiated_v3") >= 1);
    // Cursor table: pages parked and resumed.
    assert!(m.counter("cursor.hits") >= 1);
    let open = m.gauge("cursor.open").unwrap();
    assert!(open.high_water >= 1, "a cursor must have been parked");
    assert_eq!(open.value, 0, "the exhausted cursor must have retired");
    // Slow-query ring: the zero threshold catches the paged plan, with
    // its fingerprint and value-free shape — never predicate values.
    assert!(!m.slow_queries.is_empty());
    let entry = m
        .slow_queries
        .iter()
        .find(|e| e.fingerprint == fingerprint)
        .expect("the paged plan must be in the slow ring");
    assert_eq!(entry.shape, shape);
    assert!(entry.rows > 0);
    // The Status answer is *derived from* this registry: no parallel
    // bookkeeping to drift.
    assert_eq!(
        status.queries_refused,
        m.counter("query.connections_refused")
    );
    assert_eq!(
        status.epoch_tag_mismatches,
        m.counter("service.epoch_tag_mismatches")
    );
    assert!(status
        .version_connections
        .iter()
        .any(|&(v, n)| v == PROTOCOL_VERSION && n >= 1));

    // A v1 connection gets UnknownRequest(7) for the Metrics tag — and
    // the connection survives, exactly like any other unknown tag.
    {
        let mut stream = TcpStream::connect(qaddr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, &encode_hello(1, 1)).unwrap();
        let ack = read_frame(&mut stream).unwrap();
        assert_eq!(siren_proto::decode_hello_ack(&ack), Some(1));
        write_frame(&mut stream, &QueryRequest::Metrics.encode_versioned(2)).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode_versioned(&payload, 1),
            Ok(QueryResponse::Error(QueryError::UnknownRequest(7)))
        ));
        write_frame(&mut stream, &QueryRequest::Status.encode_versioned(1)).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode_versioned(&payload, 1),
            Ok(QueryResponse::Status(_))
        ));
    }

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn traced_plan_reassembles_into_one_tree_across_cursor_fetches() {
    let dir = temp_data_dir("traces");
    let cfg = ServiceConfig {
        // Zero threshold: the traced plan is guaranteed a slow-ring
        // entry, so the entry→trace join can be asserted.
        slow_query_threshold: Duration::ZERO,
        ..server_config(&dir)
    };
    let (mut daemon, _) = SirenDaemon::open(cfg).unwrap();
    let qaddr = daemon.query_addr().unwrap();

    // Ingest one epoch over real UDP loopback so the epoch pipeline
    // records a real trace alongside the request traces.
    let receiver = UdpReceiver::spawn(65_536).unwrap();
    let sender = UdpSender::connect(receiver.local_addr()).unwrap();
    for msg in campaign_messages(0, 0, 1) {
        sender.send(&msg.encode());
    }
    let summaries = daemon.drain_udp(&receiver, 1).unwrap();
    assert_eq!(summaries.len(), 1, "the epoch must commit");

    // A client-supplied trace id on a paged plan: the whole walk —
    // however many cursor fetches — must reassemble into ONE tree.
    let mut client = SirenClient::connect(qaddr).unwrap();
    let trace = TraceId(0x5ca1_ab1e_0000_0001);
    let plan = siren_proto::QueryPlan::records().batch_rows(4).page_rows(8);
    let fingerprint = plan.fingerprint();
    let rows = client
        .query_traced(plan, trace)
        .unwrap()
        .collect_rows()
        .unwrap();
    assert!(
        rows.len() > 8,
        "need multiple pages to force cursor fetches"
    );

    let trees = client.traces(TraceFilter::recent().trace(trace)).unwrap();
    assert_eq!(trees.len(), 1, "one client trace id, one tree");
    let tree = &trees[0];
    assert_eq!(tree.trace, trace);
    let root = tree.root().expect("the plan request span is the root");
    assert_eq!(root.stage, "request.plan");
    assert_eq!(
        root.annotation(siren_obs::FINGERPRINT_ANNOTATION),
        Some(format!("{fingerprint:016x}").as_str()),
        "the root carries the plan fingerprint annotation"
    );
    for stage in ["queue_wait", "exec", "serialize", "request.fetch"] {
        assert!(tree.contains_stage(stage), "missing {stage} span: {tree:?}");
    }
    let fetches = tree
        .spans
        .iter()
        .filter(|s| s.stage == "request.fetch")
        .count();
    assert!(fetches >= 2, "multiple cursor fetches rejoin the same tree");
    let serializes = tree.spans.iter().filter(|s| s.stage == "serialize").count();
    assert!(serializes >= 2, "one serialize span per row batch");
    // Every span reassembled under the one trace id.
    assert!(tree.spans.iter().all(|s| s.trace == trace));

    // The slow-query ring entry for that plan carries the trace id, and
    // the id resolves over the wire to that same tree.
    let m = client.metrics().unwrap();
    let entry = m
        .slow_queries
        .iter()
        .find(|e| e.fingerprint == fingerprint)
        .expect("zero threshold puts the traced plan in the slow ring");
    assert_eq!(entry.trace_id, trace.0, "slow entry joins to the trace");
    let resolved = client
        .traces(TraceFilter::recent().trace(TraceId(entry.trace_id)))
        .unwrap();
    assert_eq!(resolved.len(), 1);
    assert_eq!(
        &resolved[0], tree,
        "the slow entry resolves to the same tree"
    );

    // The ingest epoch recorded its own pipeline trace: recv,
    // per-shard reassembly and WAL inserts, then commit and publish,
    // all under the `epoch.ingest` root.
    let epochs = client
        .traces(TraceFilter::recent().stage("epoch.ingest"))
        .unwrap();
    let epoch_tree = epochs.first().expect("the committed epoch has a trace");
    assert_eq!(epoch_tree.root().unwrap().stage, "epoch.ingest");
    for stage in ["recv", "reassembly", "wal_insert", "commit", "publish"] {
        assert!(
            epoch_tree.contains_stage(stage),
            "epoch trace missing {stage}: {epoch_tree:?}"
        );
    }
    // The wire answer and the in-process accessor read the same ring.
    let in_process = daemon.traces(&TraceFilter::recent().trace(trace));
    assert_eq!(in_process.len(), 1);
    assert_eq!(&in_process[0], tree);

    // A v1 connection gets UnknownRequest(8) for the Traces tag — and
    // the connection survives, exactly like any other unknown tag.
    {
        let mut stream = TcpStream::connect(qaddr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, &encode_hello(1, 1)).unwrap();
        let ack = read_frame(&mut stream).unwrap();
        assert_eq!(siren_proto::decode_hello_ack(&ack), Some(1));
        let traces_req = QueryRequest::Traces(TraceFilter::recent()).encode_versioned(2);
        write_frame(&mut stream, &traces_req).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode_versioned(&payload, 1),
            Ok(QueryResponse::Error(QueryError::UnknownRequest(8)))
        ));
        write_frame(&mut stream, &QueryRequest::Status.encode_versioned(1)).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode_versioned(&payload, 1),
            Ok(QueryResponse::Status(_))
        ));
    }

    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ------------------------------------------------ hostile inputs --

fn hostile_daemon(tag: &str) -> (SirenDaemon, std::net::SocketAddr, PathBuf) {
    let dir = temp_data_dir(tag);
    let (daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    let addr = daemon.query_addr().unwrap();
    (daemon, addr, dir)
}

/// Raw TCP connection that has completed the hello exchange, pinned to
/// v2: these hostile cases drive the legacy plain-frame layout byte by
/// byte (a v3 connection wraps frames in the stream envelope — its
/// hostile-envelope cases live in the reactor E2E suite).
fn negotiated_stream(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut stream, &encode_hello(1, 2)).unwrap();
    let ack = read_frame(&mut stream).unwrap();
    assert_eq!(siren_proto::decode_hello_ack(&ack), Some(2));
    stream
}

fn expect_error_then_close(mut stream: TcpStream) -> QueryError {
    let payload = read_frame(&mut stream).expect("server must answer before closing");
    let err = match QueryResponse::decode(&payload) {
        Ok(QueryResponse::Error(err)) => err,
        other => panic!("expected error response, got {other:?}"),
    };
    // …and then a clean close.
    assert!(matches!(
        read_frame(&mut stream),
        Err(siren_proto::FrameError::Closed)
    ));
    err
}

#[test]
fn hostile_protocol_input_draws_typed_errors_and_clean_closes() {
    let (daemon, addr, dir) = hostile_daemon("hostile");

    // 1. Oversized length prefix: refused before allocation, typed
    //    error. (Only the 5 header bytes are sent, so the server-side
    //    close is a clean FIN rather than an unread-data RST.)
    {
        let mut stream = negotiated_stream(addr);
        let mut evil = vec![0xD8u8];
        evil.extend_from_slice(&(u32::MAX).to_le_bytes());
        stream.write_all(&evil).unwrap();
        assert!(matches!(
            expect_error_then_close(stream),
            QueryError::FrameTooLarge(_)
        ));
    }

    // 2. Bad checksum: Malformed error, close.
    {
        let mut stream = negotiated_stream(addr);
        let mut frame = siren_store::encode_frame(&QueryRequest::Status.encode());
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        stream.write_all(&frame).unwrap();
        assert!(matches!(
            expect_error_then_close(stream),
            QueryError::Malformed(_)
        ));
    }

    // 3. Garbage magic (a single wrong byte, again to avoid unread
    //    bytes at close time): Malformed error, close.
    {
        let mut stream = negotiated_stream(addr);
        stream.write_all(&[0x00u8]).unwrap();
        assert!(matches!(
            expect_error_then_close(stream),
            QueryError::Malformed(_)
        ));
    }

    // 4. Unknown request tag inside an intact frame: typed error and
    //    the connection SURVIVES for the next (valid) request.
    {
        let mut stream = negotiated_stream(addr);
        write_frame(&mut stream, &[0xEEu8, 1, 2, 3]).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        assert!(matches!(
            QueryResponse::decode(&payload),
            Ok(QueryResponse::Error(QueryError::UnknownRequest(0xEE)))
        ));
        write_frame(&mut stream, &QueryRequest::Status.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        // Decode at the negotiated version: the v3 Status body carries
        // replication fields a v2 answer legitimately lacks.
        assert!(matches!(
            QueryResponse::decode_versioned(&payload, 2),
            Ok(QueryResponse::Status(_))
        ));
    }

    // 5. Truncated frame then abrupt client close: server just closes.
    {
        let mut stream = negotiated_stream(addr);
        let frame = siren_store::encode_frame(&QueryRequest::Status.encode());
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(stream);
    }

    // 6. A future-only client version is refused with the server range.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(
            &mut stream,
            &encode_hello(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 3),
        )
        .unwrap();
        assert!(matches!(
            expect_error_then_close(stream),
            QueryError::UnsupportedVersion { .. }
        ));
    }

    // 7. Client-side: connecting to a dead port surfaces a transport
    //    error, not a hang or panic.
    drop(daemon);
    assert!(matches!(
        SirenClient::connect_with_timeout(addr, Duration::from_millis(500)),
        Err(ClientError::Frame(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
