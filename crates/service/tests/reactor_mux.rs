//! Reactor serving-tier E2E: hundreds of concurrent TCP connections,
//! each running interleaved multiplexed (v3) cursor streams, against a
//! live daemon. Every stream's rows must be byte-identical to the same
//! plan executed in-process on the same snapshot — multiplexing,
//! server-side prefetch, and frame compression are transparent to
//! results. A second suite drives hostile v3 envelopes and pins the
//! connection-scoped (stream 0) error behavior.

use siren_cluster::{Campaign, CampaignConfig, FleetConfig};
use siren_collector::{Collector, PolicyMode};
use siren_net::{Sender as _, SimChannel, SimConfig, UdpReceiver, UdpSender};
use siren_proto::{
    decode_stream_frame, encode_hello, read_frame, write_frame, FrameError, PlanRow, QueryError,
    QueryPlan, QueryResponse, SirenClient, CONNECTION_STREAM, PROTOCOL_VERSION,
};
use siren_service::{ServiceConfig, SirenDaemon};
use siren_store::SegmentedOptions;
use siren_wire::Message;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Concurrent connections held open at once; the acceptance floor.
const CONNECTIONS: usize = 256;
/// Client threads; each drives `CONNECTIONS / THREADS` connections.
const THREADS: usize = 32;

fn campaign_messages(cluster: usize, epoch: u64) -> Vec<Message> {
    let cfg = FleetConfig {
        clusters: 3,
        base: CampaignConfig {
            scale: 0.001,
            ..CampaignConfig::default()
        },
        ..FleetConfig::default()
    }
    .campaign_config(cluster);
    let (tx, rx) = SimChannel::create(SimConfig::perfect());
    let mut collector = Collector::new(&tx, PolicyMode::Selective)
        .with_sender_id(cluster as u32)
        .with_epoch(epoch);
    Campaign::new(cfg).run(|ctx| collector.observe(&ctx));
    collector.end_campaign();
    rx.drain_messages().0
}

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-reactor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig {
        store: SegmentedOptions {
            rotate_bytes: 16 * 1024,
            compact_min_files: 2,
            background_compaction: false,
        },
        shards: 2,
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        // Hundreds of connections are held open while a small thread
        // pool round-robins them: registration bursts must not be
        // refused, parked streams must not be deadline-dropped, and
        // one parked cursor per stream must fit the table.
        query_backlog: 2 * CONNECTIONS,
        query_deadline: Duration::from_secs(120),
        query_max_cursors: 4 * CONNECTIONS,
        quiet_period: Duration::from_millis(400),
        ..ServiceConfig::at(dir)
    }
}

/// Start a daemon and commit one epoch so plans have rows to stream.
fn daemon_with_data(tag: &str) -> SirenDaemon {
    let dir = temp_data_dir(tag);
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    let receiver = UdpReceiver::spawn(65_536).unwrap();
    let sender = UdpSender::connect(receiver.local_addr()).unwrap();
    for msg in campaign_messages(0, 0) {
        sender.send(&msg.encode());
    }
    let summaries = daemon.drain_udp(&receiver, 1).unwrap();
    assert_eq!(summaries.len(), 1, "the epoch must commit");
    daemon
}

/// The acceptance scenario: 256 connections open simultaneously, each
/// interleaving two multiplexed cursor streams with different paging
/// shapes (so their FetchCursor cadences collide on the wire), a
/// quarter of them with compressed replies enabled. Every stream must
/// reproduce the in-process oracle exactly, and every parked cursor
/// must be retired by the time the streams are drained.
#[test]
fn hundreds_of_multiplexed_connections_match_the_oracle() {
    let daemon = daemon_with_data("mux");
    let qaddr = daemon.query_addr().unwrap();
    let snapshot = daemon.snapshot();

    // Small batches and mismatched page sizes force multi-page
    // streams: cursors park, prefetch fires, stream ids interleave.
    let plan_a = QueryPlan::records().batch_rows(3).page_rows(6);
    let plan_b = QueryPlan::usage_table().batch_rows(2).page_rows(4);
    let expected_a = snapshot.plan_rows(plan_a.clone()).unwrap();
    let expected_b = snapshot.plan_rows(plan_b.clone()).unwrap();
    assert!(
        expected_a.len() > 12,
        "records plan must span multiple pages (got {} rows)",
        expected_a.len()
    );
    assert!(!expected_b.is_empty(), "usage plan must produce rows");

    let per_thread = CONNECTIONS / THREADS;
    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let plan_a = plan_a.clone();
            let plan_b = plan_b.clone();
            let expected_a = expected_a.clone();
            let expected_b = expected_b.clone();
            std::thread::spawn(move || {
                // Open this thread's connections first, then rendezvous:
                // all 256 are registered with the reactor at once.
                let muxes: Vec<_> = (0..per_thread)
                    .map(|c| {
                        let mut client = SirenClient::connect(qaddr).expect("connect");
                        assert_eq!(client.negotiated_version(), PROTOCOL_VERSION);
                        if (t * per_thread + c).is_multiple_of(4) {
                            client.set_accept_compressed(true);
                        }
                        client.into_mux().expect("v3 connection")
                    })
                    .collect();
                barrier.wait();
                for mux in &muxes {
                    let mut a = mux.query(plan_a.clone()).expect("open stream a");
                    let mut b = mux.query(plan_b.clone()).expect("open stream b");
                    assert_ne!(a.stream_id(), b.stream_id());
                    // Interleave: one row from each in turn, so both
                    // streams are mid-flight on the connection at once.
                    let mut rows_a: Vec<PlanRow> = Vec::new();
                    let mut rows_b: Vec<PlanRow> = Vec::new();
                    loop {
                        let next_a = a.next().transpose().expect("stream a row");
                        let next_b = b.next().transpose().expect("stream b row");
                        if let Some(row) = next_a {
                            rows_a.push(row);
                        }
                        if let Some(row) = next_b {
                            rows_b.push(row);
                        }
                        if a.is_done() && b.is_done() {
                            break;
                        }
                    }
                    assert_eq!(rows_a, expected_a, "stream a diverged from oracle");
                    assert_eq!(rows_b, expected_b, "stream b diverged from oracle");
                }
                // Keep every connection open until all threads have
                // drained theirs, so peak concurrency is the full set.
                barrier.wait();
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("mux worker");
    }

    // Cursor hygiene: every stream ran to exhaustion, so nothing may
    // still be parked.
    assert_eq!(
        daemon.open_cursors(),
        0,
        "drained streams must retire cursors"
    );

    // The gauge saw all connections alive at once, and compression
    // actually engaged for the opted-in quarter.
    let mut probe = SirenClient::connect(qaddr).unwrap();
    let m = probe.metrics().unwrap();
    let gauge = m.gauge("net.active_connections").unwrap();
    assert!(
        gauge.high_water >= CONNECTIONS as i64,
        "high-water {} must cover the {} simultaneous connections",
        gauge.high_water,
        CONNECTIONS
    );
    assert!(m.counter("query.negotiated_v3") >= CONNECTIONS as u64);
}

/// Compression is negotiated per request and transparent: the same
/// plan with replies compressed yields identical rows, and the frame
/// counters prove compression actually happened.
#[test]
fn compressed_replies_are_byte_identical_and_counted() {
    let daemon = daemon_with_data("compress");
    let qaddr = daemon.query_addr().unwrap();
    let snapshot = daemon.snapshot();

    // One big page: the batch body comfortably clears the compression
    // threshold (default 4 KiB) so the reply arrives compressed.
    let plan = QueryPlan::records().batch_rows(512).page_rows(4096);
    let expected = snapshot.plan_rows(plan.clone()).unwrap();

    let mut client = SirenClient::connect(qaddr).unwrap();
    client.set_accept_compressed(true);
    let rows = client.query(plan).unwrap().collect_rows().unwrap();
    assert_eq!(rows, expected, "compressed stream diverged from oracle");

    let m = client.metrics().unwrap();
    assert!(
        m.counter("stream.compressed_frames") >= 1,
        "a large batch reply must have been compressed"
    );
    assert!(m.counter("stream.compressed_bytes_saved") > 0);
}

/// Dropping a multiplexed stream mid-page must drain it to its frame
/// boundary and synchronously close the parked cursor — the shared
/// connection stays usable and the cursor table ends empty.
#[test]
fn dropped_mux_stream_closes_its_cursor_and_connection_survives() {
    let daemon = daemon_with_data("drop");
    let qaddr = daemon.query_addr().unwrap();
    let snapshot = daemon.snapshot();

    let plan = QueryPlan::records().batch_rows(2).page_rows(4);
    let expected = snapshot.plan_rows(plan.clone()).unwrap();
    assert!(expected.len() > 8, "need a multi-page plan");

    let client = SirenClient::connect(qaddr).unwrap().into_mux().unwrap();
    {
        let mut doomed = client.query(plan.clone()).expect("open stream");
        let first = doomed.next().expect("first row").expect("row ok");
        assert_eq!(first, expected[0]);
        // Dropped here, mid-page with a cursor parked server-side.
    }
    assert_eq!(
        daemon.open_cursors(),
        0,
        "dropping the stream must close its parked cursor"
    );
    // Same handle still streams correctly after the abandoned sibling.
    let rows = client
        .query(plan)
        .expect("reuse connection")
        .collect_rows()
        .expect("drain rows");
    assert_eq!(rows, expected);
}

/// Prefetch is on by default and serves whole pages it precomputed at
/// park time; with it disabled the same plan must stream identically.
#[test]
fn prefetch_toggle_does_not_change_results() {
    let dir = temp_data_dir("noprefetch");
    let cfg = ServiceConfig {
        query_prefetch: false,
        ..server_config(&dir)
    };
    let (mut daemon, _) = SirenDaemon::open(cfg).unwrap();
    let receiver = UdpReceiver::spawn(65_536).unwrap();
    let sender = UdpSender::connect(receiver.local_addr()).unwrap();
    for msg in campaign_messages(0, 0) {
        sender.send(&msg.encode());
    }
    daemon.drain_udp(&receiver, 1).unwrap();
    let qaddr = daemon.query_addr().unwrap();
    let snapshot = daemon.snapshot();

    let plan = QueryPlan::records().batch_rows(3).page_rows(6);
    let expected = snapshot.plan_rows(plan.clone()).unwrap();
    let mut client = SirenClient::connect(qaddr).unwrap();
    let rows = client.query(plan).unwrap().collect_rows().unwrap();
    assert_eq!(rows, expected);

    let m = client.metrics().unwrap();
    assert_eq!(
        m.counter("prefetch.pages_built"),
        0,
        "prefetch disabled must build nothing"
    );
}

/// Hostile v3 envelopes: a post-negotiation frame too short to carry
/// the stream header is a connection-scoped fault — the server answers
/// with a typed error on stream 0 and closes. (The plain-frame hostile
/// suite pins the v1/v2 behaviors byte for byte; this is its v3
/// counterpart.)
#[test]
fn undersized_v3_envelope_draws_stream_zero_error_and_close() {
    let daemon = daemon_with_data("hostile");
    let qaddr = daemon.query_addr().unwrap();

    let mut stream = TcpStream::connect(qaddr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut stream, &encode_hello(1, PROTOCOL_VERSION)).unwrap();
    let ack = read_frame(&mut stream).unwrap();
    assert_eq!(siren_proto::decode_hello_ack(&ack), Some(PROTOCOL_VERSION));

    // Four bytes: a valid *frame*, but not a valid v3 envelope (the
    // stream header alone is five). On v2 this exact payload was an
    // UnknownRequest the connection survived; on v3 the envelope is
    // unattributable, so the failure is connection-scoped.
    write_frame(&mut stream, &[0xEE, 1, 2, 3]).unwrap();
    let payload = read_frame(&mut stream).expect("error reply before close");
    let frame = decode_stream_frame(&payload).expect("reply must carry an envelope");
    assert_eq!(
        frame.stream_id, CONNECTION_STREAM,
        "unattributable faults answer on stream 0"
    );
    match QueryResponse::decode_versioned(&frame.body, PROTOCOL_VERSION) {
        Ok(QueryResponse::Error(QueryError::Malformed(_))) => {}
        other => panic!("expected Malformed on stream 0, got {other:?}"),
    }
    match read_frame(&mut stream) {
        Err(FrameError::Closed) => {}
        other => panic!("expected clean close after stream-0 error, got {other:?}"),
    }
}
