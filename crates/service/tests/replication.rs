//! Fault-injected replication convergence suite.
//!
//! A leader daemon commits epochs; a follower daemon replicates them
//! over the wire through [`Replicator`], optionally via a seeded
//! [`FaultProxy`] that severs connections at fuzzed byte offsets. The
//! properties pinned here:
//!
//! 1. Once lag reaches zero, the follower's wire answers to a fixed
//!    `QueryPlan` set are identical to the leader's — replication is
//!    invisible to queries.
//! 2. Killing the leader mid-replication (`simulate_crash`) and
//!    restarting it converges the follower with no duplicated or lost
//!    records.
//! 3. Killing the follower at fuzzed apply points resumes from its
//!    durable high-water mark (the seal markers in its own store).
//! 4. v1/v2 connections asking for a subscription draw a typed error
//!    and the connection survives — the old wire dialect is untouched.

use siren_cluster::{Campaign, CampaignConfig, FleetConfig};
use siren_collector::{Collector, PolicyMode};
use siren_net::{
    FaultConfig, FaultProxy, Sender as _, SimChannel, SimConfig, UdpReceiver, UdpSender,
};
use siren_proto::{
    decode_hello_ack, encode_hello, read_frame, write_frame, QueryError, QueryPlan, QueryRequest,
    QueryResponse, RetryPolicy, Selection,
};
use siren_proto::{FrameError, SirenClient};
use siren_service::{Replicator, ReplicatorConfig, ServiceConfig, SirenDaemon};
use siren_store::SegmentedOptions;
use siren_wire::Message;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const CONVERGE_TIMEOUT: Duration = Duration::from_secs(30);

fn campaign_messages(cluster: usize, epoch: u64) -> Vec<Message> {
    let cfg = FleetConfig {
        clusters: 3,
        base: CampaignConfig {
            scale: 0.001,
            ..CampaignConfig::default()
        },
        ..FleetConfig::default()
    }
    .campaign_config(cluster);
    let (tx, rx) = SimChannel::create(SimConfig::perfect());
    let mut collector = Collector::new(&tx, PolicyMode::Selective)
        .with_sender_id(cluster as u32)
        .with_epoch(epoch);
    Campaign::new(cfg).run(|ctx| collector.observe(&ctx));
    collector.end_campaign();
    rx.drain_messages().0
}

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig {
        store: SegmentedOptions {
            rotate_bytes: 16 * 1024,
            compact_min_files: 2,
            background_compaction: false,
        },
        shards: 2,
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        quiet_period: Duration::from_millis(400),
        ..ServiceConfig::at(dir)
    }
}

/// A leader with one UDP-ingested epoch plus `extra` imported epochs
/// (each re-importing epoch 0's records, so every epoch has rows).
fn leader_with_epochs(tag: &str, extra: u64) -> SirenDaemon {
    let dir = temp_data_dir(tag);
    let (mut daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    let receiver = UdpReceiver::spawn(65_536).unwrap();
    let sender = UdpSender::connect(receiver.local_addr()).unwrap();
    for msg in campaign_messages(0, 0) {
        sender.send(&msg.encode());
    }
    let summaries = daemon.drain_udp(&receiver, 1).unwrap();
    assert_eq!(summaries.len(), 1, "the seed epoch must commit");
    for _ in 0..extra {
        commit_extra_epoch(&mut daemon);
    }
    daemon
}

/// Commit one more epoch on `daemon` by re-importing epoch 0's records.
fn commit_extra_epoch(daemon: &mut SirenDaemon) -> u64 {
    let records: Vec<_> = daemon
        .snapshot()
        .epoch_records(0)
        .into_iter()
        .cloned()
        .collect();
    assert!(!records.is_empty());
    daemon.import_epoch(records).unwrap()
}

/// An empty follower at its own data dir, serving queries.
fn fresh_follower(tag: &str) -> SirenDaemon {
    let dir = temp_data_dir(tag);
    let (daemon, _) = SirenDaemon::open(server_config(&dir)).unwrap();
    daemon
}

/// Fast-cadence replication config for tests.
fn fast_config(leader: SocketAddr) -> ReplicatorConfig {
    ReplicatorConfig {
        poll_interval: Duration::from_millis(10),
        retry: RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            jitter: true,
        },
        ..ReplicatorConfig::to(leader)
    }
}

/// The fixed plan set both sides answer for the byte-identity oracle.
fn oracle_plans() -> Vec<QueryPlan> {
    vec![
        QueryPlan::records().batch_rows(3).page_rows(64),
        QueryPlan::usage_table().batch_rows(2).page_rows(64),
    ]
}

/// Assert the follower's wire answers equal the leader's: plan streams
/// row-for-row, one-shot replies byte-for-byte.
fn assert_wire_identical(leader_addr: SocketAddr, follower_addr: SocketAddr) {
    let mut leader = SirenClient::connect(leader_addr).unwrap();
    let mut follower = SirenClient::connect(follower_addr).unwrap();
    for plan in oracle_plans() {
        let from_leader = leader.query(plan.clone()).unwrap().collect_rows().unwrap();
        let from_follower = follower.query(plan).unwrap().collect_rows().unwrap();
        assert_eq!(from_leader, from_follower, "plan rows must match");
        assert!(!from_leader.is_empty(), "oracle plans must return rows");
    }
    // One-shot replies must be byte-identical (Status is excluded: its
    // live traffic counters legitimately differ between daemons).
    let usage = QueryRequest::LibraryUsage {
        selection: Selection::default(),
    };
    let from_leader = leader.call(&usage).unwrap().encode_versioned(3);
    let from_follower = follower.call(&usage).unwrap().encode_versioned(3);
    assert_eq!(
        from_leader, from_follower,
        "one-shot reply bytes must match"
    );
}

/// Property 1: a follower converges and its answers are
/// indistinguishable from the leader's; lag and apply metrics land.
#[test]
fn follower_converges_and_answers_match_the_leader() {
    let leader = leader_with_epochs("conv-leader", 2);
    let leader_addr = leader.query_addr().unwrap();
    let follower = fresh_follower("conv-follower");
    let follower_addr = follower.query_addr().unwrap();

    let repl = Replicator::spawn(follower, fast_config(leader_addr)).unwrap();
    assert!(repl.wait_for_epoch(2, CONVERGE_TIMEOUT), "must catch up");
    assert!(repl.wait_caught_up(CONVERGE_TIMEOUT));

    assert_wire_identical(leader_addr, follower_addr);

    // The follower's own Status reports its replication posture.
    let mut client = SirenClient::connect(follower_addr).unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.repl_high_water, 3, "applied through epoch 2");
    assert_eq!(status.repl_lag_epochs, 0);
    assert!(status.repl_reconnects >= 1);
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.counter("repl.epochs_applied"), 3);
    assert!(metrics.counter("repl.records_applied") > 0);
    drop(client);

    // The leader counted the shipping side.
    let mut client = SirenClient::connect(leader_addr).unwrap();
    let metrics = client.metrics().unwrap();
    assert!(metrics.counter("repl.subscriptions") >= 1);
    assert!(metrics.counter("repl.epochs_shipped") >= 3);
    assert!(metrics.counter("repl.bytes_shipped") > 0);
    drop(client);

    let follower = repl.shutdown();
    assert_eq!(follower.committed_epochs(), vec![0, 1, 2]);
    assert_eq!(follower.snapshot().len(), leader.snapshot().len());
}

/// Property 1 under fire: the follower reaches the same state through a
/// proxy that severs its connections at fuzzed byte offsets.
#[test]
fn follower_converges_through_severing_proxy() {
    let leader = leader_with_epochs("sever-leader", 3);
    let leader_addr = leader.query_addr().unwrap();
    let proxy = FaultProxy::spawn(
        leader_addr,
        FaultConfig {
            seed: 42,
            // An epoch is ~400 KB on this wire. Some draws cut
            // mid-epoch (no progress that exchange), some let one or
            // more whole epochs through — progress interleaves with
            // teardowns, which is the property under test.
            cut_bytes: Some((50_000, 1_500_000)),
            ..FaultConfig::default()
        },
    )
    .unwrap();

    let follower = fresh_follower("sever-follower");
    let follower_addr = follower.query_addr().unwrap();
    let mut cfg = fast_config(proxy.local_addr());
    cfg.batch_rows = 4; // small frames: cuts land mid-epoch, not mid-noop
    let repl = Replicator::spawn(follower, cfg).unwrap();

    assert!(
        repl.wait_for_epoch(3, CONVERGE_TIMEOUT),
        "must converge despite severed connections (applied {} epochs)",
        repl.epochs_applied()
    );
    assert!(repl.wait_caught_up(CONVERGE_TIMEOUT));
    assert!(proxy.cuts() >= 1, "the proxy must actually have cut");

    assert_wire_identical(leader_addr, follower_addr);

    let follower = repl.shutdown();
    assert_eq!(follower.committed_epochs(), vec![0, 1, 2, 3]);
    assert_eq!(follower.snapshot().len(), leader.snapshot().len());
    // Torn subscriptions were retried and re-dialed.
    let metrics = follower.metrics_snapshot();
    assert!(metrics.counter("repl.retries") >= 1);
    assert!(metrics.counter("repl.reconnects") >= 2);
}

/// Property 2: kill the leader mid-replication, restart it from its own
/// store, repoint the proxy — the follower converges with no
/// duplicated or lost records.
#[test]
fn leader_crash_and_restart_converges_without_loss_or_duplication() {
    let leader = leader_with_epochs("failover-leader", 1);
    let leader_dir = leader.data_dir().to_path_buf();
    let leader_addr = leader.query_addr().unwrap();
    let proxy = FaultProxy::spawn(
        leader_addr,
        FaultConfig {
            // A per-chunk delay keeps epochs in flight long enough that
            // the crash below lands mid-stream.
            delay: Some(Duration::from_millis(2)),
            ..FaultConfig::default()
        },
    )
    .unwrap();

    let follower = fresh_follower("failover-follower");
    let follower_addr = follower.query_addr().unwrap();
    let repl = Replicator::spawn(follower, fast_config(proxy.local_addr())).unwrap();
    assert!(repl.wait_for_epoch(1, CONVERGE_TIMEOUT));

    // Commit one more epoch, then kill the leader before the follower
    // can be sure of having it.
    let mut leader = leader;
    commit_extra_epoch(&mut leader);
    leader.simulate_crash().unwrap();

    // Restart from the same store; the embedded server binds a fresh
    // port, so repoint the proxy — the follower keeps dialing one
    // stable address throughout.
    let (leader, recovery) = SirenDaemon::open(server_config(&leader_dir)).unwrap();
    assert_eq!(recovery.committed_epochs, vec![0, 1, 2]);
    proxy.set_target(leader.query_addr().unwrap());

    assert!(
        repl.wait_for_epoch(2, CONVERGE_TIMEOUT),
        "follower must converge past the failover"
    );
    assert!(repl.wait_caught_up(CONVERGE_TIMEOUT));
    assert_wire_identical(leader.query_addr().unwrap(), follower_addr);

    let follower = repl.shutdown();
    assert_eq!(follower.committed_epochs(), vec![0, 1, 2]);
    assert_eq!(
        follower.snapshot().len(),
        leader.snapshot().len(),
        "no records lost or duplicated across the failover"
    );
}

/// Property 3: kill the follower at fuzzed apply points; each restart
/// resumes from the durable high-water mark and re-delivered epochs
/// apply idempotently.
#[test]
fn follower_crash_at_fuzzed_apply_points_resumes_from_high_water() {
    let leader = leader_with_epochs("fuzz-leader", 3);
    let leader_addr = leader.query_addr().unwrap();

    for crash_after in 1..=3u64 {
        let tag = format!("fuzz-follower-{crash_after}");
        let follower = fresh_follower(&tag);
        let follower_dir = follower.data_dir().to_path_buf();

        // Phase 1: replicate until the crash hook fires mid-catch-up.
        let mut cfg = fast_config(leader_addr);
        cfg.crash_after_applies = Some(crash_after);
        let repl = Replicator::spawn(follower, cfg).unwrap();
        let deadline = std::time::Instant::now() + CONVERGE_TIMEOUT;
        while !repl.crashed() {
            assert!(std::time::Instant::now() < deadline, "crash hook must fire");
            std::thread::sleep(Duration::from_millis(5));
        }
        let follower = repl.shutdown();
        assert_eq!(follower.committed_epochs().len() as u64, crash_after);
        follower.simulate_crash().unwrap();

        // Phase 2: reopen from disk — the committed set *is* the
        // high-water mark — and converge the rest of the way.
        let (follower, recovery) = SirenDaemon::open(server_config(&follower_dir)).unwrap();
        assert_eq!(
            recovery.committed_epochs,
            (0..crash_after).collect::<Vec<_>>(),
            "recovery must resume exactly at the crash point"
        );
        let repl = Replicator::spawn(follower, fast_config(leader_addr)).unwrap();
        assert_eq!(repl.high_water(), crash_after, "resume from high water");
        assert!(repl.wait_for_epoch(3, CONVERGE_TIMEOUT));
        assert!(repl.wait_caught_up(CONVERGE_TIMEOUT));
        let follower = repl.shutdown();
        assert_eq!(follower.committed_epochs(), vec![0, 1, 2, 3]);
        assert_eq!(follower.snapshot().len(), leader.snapshot().len());
    }
}

/// Property 4: v1/v2 connections issuing the v3-only subscription tag
/// draw a typed error and the connection survives for valid requests —
/// old clients observe byte-identical behavior everywhere else.
#[test]
fn old_protocol_versions_refuse_subscriptions_and_survive() {
    let leader = leader_with_epochs("old-proto", 0);
    let addr = leader.query_addr().unwrap();

    for version in [1u16, 2] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, &encode_hello(version, version)).unwrap();
        let ack = read_frame(&mut stream).unwrap();
        assert_eq!(decode_hello_ack(&ack), Some(version));

        // The subscription request draws the unknown-tag error…
        let req = QueryRequest::SubscribeEpochs {
            from_epoch: 0,
            batch_rows: 0,
        };
        write_frame(&mut stream, &req.encode_versioned(version)).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        assert!(
            matches!(
                QueryResponse::decode_versioned(&payload, version),
                Ok(QueryResponse::Error(QueryError::UnknownRequest(9)))
            ),
            "v{version} must refuse the subscription with a typed error"
        );

        // …and the connection then answers a valid request normally.
        write_frame(&mut stream, &QueryRequest::Status.encode_versioned(version)).unwrap();
        let payload = read_frame(&mut stream).unwrap();
        match QueryResponse::decode_versioned(&payload, version) {
            Ok(QueryResponse::Status(status)) => {
                assert_eq!(status.protocol_version, version);
            }
            other => panic!("v{version} Status after refusal failed: {other:?}"),
        }
    }
}

/// Satellite: dropping the daemon while a replication subscriber and
/// several multiplexed row streams are mid-flight closes every
/// connection cleanly (no hang, no leaked loop threads).
#[test]
fn dropping_the_daemon_closes_subscribers_and_streams_mid_flight() {
    let leader = leader_with_epochs("shutdown", 2);
    let addr = leader.query_addr().unwrap();

    // A replication subscriber mid-stream: read exactly one epoch of
    // the three available, leaving the rest queued or unproduced.
    let mut subscriber = SirenClient::connect(addr).unwrap();
    let mut stream = subscriber.subscribe_epochs(0, 1).unwrap();
    let first = stream.next_event().unwrap().expect("first epoch");
    match first {
        siren_proto::EpochStreamEvent::Epoch { epoch, .. } => assert_eq!(epoch, 0),
        other => panic!("expected an epoch, got {other:?}"),
    }

    // Several mux connections each holding a paged row stream open.
    let mut row_clients: Vec<SirenClient> = Vec::new();
    for _ in 0..4 {
        let mut client = SirenClient::connect(addr).unwrap();
        let mut rows = client
            .query(QueryPlan::records().batch_rows(2).page_rows(4))
            .unwrap();
        let _ = rows.next().expect("first row").unwrap();
        std::mem::forget(rows); // leave the stream genuinely mid-flight
        row_clients.push(client);
    }

    // Drop the daemon: the reactor must unwind without hanging…
    drop(leader);

    // …and every client must observe its connection closing. Frames
    // already queued in socket buffers may drain first — the stream is
    // allowed to finish off buffered bytes, but the connection must
    // then be dead.
    let torn = loop {
        match stream.next_event() {
            Ok(Some(_)) => continue, // buffered frames drain
            Ok(None) => break false, // whole reply was already in flight
            Err(err) => {
                assert!(
                    matches!(
                        err,
                        siren_proto::ClientError::Frame(FrameError::Closed | FrameError::Io(_))
                    ),
                    "subscriber must see a transport close, got {err:?}"
                );
                break true;
            }
        }
    };
    drop(stream);
    if !torn {
        assert!(
            subscriber.status().is_err(),
            "subscriber connection must be closed after the drop"
        );
    }
    for client in &mut row_clients {
        let res = client.status();
        assert!(res.is_err(), "row-stream connection must be closed");
    }
}
