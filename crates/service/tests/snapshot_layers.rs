//! The layered-snapshot contract, fuzzed: a snapshot grown one epoch at
//! a time through `with_epoch` (the delta commit path), with any number
//! of background-style `merged_once` folds applied along the way, must
//! answer every query byte-identically to a monolithic
//! `QuerySnapshot::build` over the same records — and its indexed
//! `Neighbors` answers must equal a hand-rolled linear scan of the full
//! fuzzy corpus. A daemon-level pass covers `import_epoch` bulk commits
//! and crash-resume (reopen), where the recovered base layer meets
//! freshly stacked delta layers.

use proptest::test_runner::{rng_for, TestRng};
use siren_consolidate::ProcessRecord;
use siren_db::Record;
use siren_fuzzy::{similarity_search, FuzzyHash};
use siren_proto::Selection;
use siren_service::{EpochRecord, QuerySnapshot, ServiceConfig, SirenDaemon};
use siren_wire::{Layer, MessageType};

// ---------------------------------------------------- generators --

/// A record with fuzzed identity and a `FILE_H` drawn from shapes that
/// stress the candidate index: absent, unparseable, low-entropy (runs
/// the comparison collapses), high-entropy, or duplicated across
/// records (the identity rule).
fn arb_record(rng: &mut TestRng, shared_hashes: &[String]) -> ProcessRecord {
    let row = Record {
        job_id: rng.below(12),
        step_id: rng.below(3) as u32,
        pid: rng.next_u64() as u32,
        exe_hash: format!("{:016x}", rng.next_u64()),
        host: format!("nid{:06}", rng.below(5)),
        time: 1_700_000_000 + rng.below(1_000),
        layer: Layer::SelfExe,
        mtype: MessageType::Meta,
        content: String::new(),
    };
    let mut rec = ProcessRecord::new(&row);
    rec.file_hash = match rng.below(6) {
        0 => None,
        1 => Some("not-a-fuzzy-hash".into()),
        2 => Some(format!(
            "96:{:016x}00000000:{:08x}",
            rng.next_u64(),
            rng.below(1 << 20)
        )),
        3 if !shared_hashes.is_empty() => {
            Some(shared_hashes[rng.below(shared_hashes.len() as u64) as usize].clone())
        }
        _ => {
            let sig: String = (0..24)
                .map(|_| b"ABCDEFabcdef0123456789+/"[rng.below(24) as usize] as char)
                .collect();
            Some(format!("48:{sig}:{}", &sig[..12]))
        }
    };
    rec
}

/// `epochs` batches of records; epoch ids are consecutive from 0.
fn arb_epochs(rng: &mut TestRng) -> Vec<Vec<ProcessRecord>> {
    let shared: Vec<String> = (0..3)
        .map(|i| {
            format!(
                "96:{:032x}:{:016x}",
                rng.next_u64() as u128 * 31 + i,
                rng.next_u64()
            )
        })
        .collect();
    let n_epochs = rng.below(6) as usize + 1;
    (0..n_epochs)
        .map(|_| {
            let n = rng.below(30) as usize; // empty epochs included
            (0..n).map(|_| arb_record(rng, &shared)).collect()
        })
        .collect()
}

fn tag(epoch: u64, records: &[ProcessRecord]) -> Vec<EpochRecord> {
    records
        .iter()
        .map(|record| EpochRecord {
            epoch,
            record: record.clone(),
        })
        .collect()
}

// ---------------------------------------------------- references --

/// The linear-scan `Neighbors` oracle: parse every `FILE_H` in commit
/// order (the monolithic corpus) and run the unindexed batch search.
fn scan_neighbors(
    all: &[EpochRecord],
    hash: &str,
    k: usize,
    min_score: u32,
) -> Vec<(u32, u64, ProcessRecord)> {
    let Ok(baseline) = FuzzyHash::parse(hash) else {
        return Vec::new();
    };
    let mut corpus = Vec::new();
    let mut owners = Vec::new();
    for (i, er) in all.iter().enumerate() {
        if let Some(h) = &er.record.file_hash {
            if let Ok(parsed) = FuzzyHash::parse(h) {
                corpus.push(parsed);
                owners.push(i);
            }
        }
    }
    similarity_search(&baseline, &corpus, min_score)
        .into_iter()
        .take(k)
        .map(|hit| {
            let er = &all[owners[hit.index]];
            (hit.score, er.epoch, er.record.clone())
        })
        .collect()
}

/// Assert `snapshot` answers exactly like the monolithic rebuild of
/// `all` — every query kind the protocol serves.
fn assert_equivalent(case: usize, snapshot: &QuerySnapshot, all: &[EpochRecord]) {
    let reference = QuerySnapshot::build(all.to_vec());

    assert_eq!(snapshot.len(), reference.len(), "case {case}: len");
    assert_eq!(snapshot.epochs(), reference.epochs(), "case {case}: epochs");
    let got: Vec<&EpochRecord> = snapshot.iter().collect();
    let want: Vec<&EpochRecord> = reference.iter().collect();
    assert_eq!(got, want, "case {case}: commit-order iteration");
    for i in [0, all.len() / 2, all.len().saturating_sub(1), all.len()] {
        assert_eq!(snapshot.get(i), reference.get(i), "case {case}: get({i})");
    }

    for job in 0..12u64 {
        assert_eq!(
            snapshot.job_records(job),
            reference.job_records(job),
            "case {case}: job {job}"
        );
    }
    assert_eq!(snapshot.job_records(u64::MAX), Vec::<&EpochRecord>::new());

    for epoch in snapshot.epochs() {
        assert_eq!(
            snapshot.epoch_records(epoch),
            reference.epoch_records(epoch),
            "case {case}: epoch {epoch}"
        );
    }

    for selection in [
        Selection::all(),
        Selection::all().host("nid000002"),
        Selection::all().between(1_700_000_000, 1_700_000_500),
        Selection::all().epoch(1).host("nid000000"),
    ] {
        assert_eq!(
            snapshot.filtered(&selection),
            reference.filtered(&selection),
            "case {case}: selection {selection:?}"
        );
    }

    // Neighbors: every distinct FILE_H probe (parseable or not) must
    // answer the linear scan's hits exactly, through both the layered
    // and the monolithic snapshot.
    let mut probes: Vec<String> = all
        .iter()
        .filter_map(|er| er.record.file_hash.clone())
        .collect();
    probes.sort();
    probes.dedup();
    probes.push("96:ZZZZZZZZZZZZZZZZ:YYYYYYYY".into()); // stranger
    for hash in &probes {
        for (k, min_score) in [(5usize, 1u32), (3, 60), (100, 0)] {
            let scan = scan_neighbors(all, hash, k, min_score);
            for (label, snap) in [("layered", snapshot), ("monolithic", &reference)] {
                let got: Vec<(u32, u64, ProcessRecord)> = snap
                    .nearest_neighbors(hash, k, min_score)
                    .into_iter()
                    .map(|n| (n.score, n.epoch, n.record.clone()))
                    .collect();
                assert_eq!(
                    got, scan,
                    "case {case}: {label} neighbors of {hash} k={k} min={min_score}"
                );
            }
        }
    }
}

// --------------------------------------------------------- tests --

#[test]
fn delta_built_snapshot_equals_full_rebuild() {
    let mut rng = rng_for("snapshot-layers-delta");
    for case in 0..25 {
        let epochs = arb_epochs(&mut rng);
        let mut snapshot = QuerySnapshot::empty();
        let mut all: Vec<EpochRecord> = Vec::new();
        for (epoch, records) in epochs.iter().enumerate() {
            let rows = tag(epoch as u64, records);
            all.extend(rows.iter().cloned());
            snapshot = snapshot.with_epoch(rows);
            // Interleave background-style merges at fuzzed points.
            while rng.below(3) == 0 {
                match snapshot.merged_once() {
                    Some(merged) => snapshot = merged,
                    None => break,
                }
            }
        }
        assert_equivalent(case, &snapshot, &all);
    }
}

#[test]
fn merging_to_one_layer_changes_no_answer() {
    let mut rng = rng_for("snapshot-layers-merge");
    let epochs = arb_epochs(&mut rng);
    let mut snapshot = QuerySnapshot::empty();
    let mut all: Vec<EpochRecord> = Vec::new();
    for (epoch, records) in epochs.iter().enumerate() {
        let rows = tag(epoch as u64, records);
        all.extend(rows.iter().cloned());
        snapshot = snapshot.with_epoch(rows);
    }
    // Drain every possible merge (the soft bound stops `merged_once`,
    // so fold manually through with_epoch-free recomposition too).
    while let Some(merged) = snapshot.merged_once() {
        snapshot = merged;
    }
    assert!(snapshot.layer_count() <= siren_service::SOFT_MAX_LAYERS);
    assert_equivalent(1000, &snapshot, &all);
}

#[test]
fn daemon_import_and_crash_resume_preserve_equivalence() {
    let mut rng = rng_for("snapshot-layers-daemon");
    for case in 0..3 {
        let dir = std::env::temp_dir().join(format!(
            "siren-snapshot-layers-{case}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let epochs = arb_epochs(&mut rng);
        let mut all: Vec<EpochRecord> = Vec::new();

        // First half of the epochs: bulk `import_epoch` commits.
        let split = epochs.len() / 2;
        {
            let (mut daemon, _) = SirenDaemon::open(ServiceConfig::at(&dir)).unwrap();
            for records in &epochs[..split] {
                let epoch = daemon.import_epoch(records.clone()).unwrap();
                all.extend(tag(epoch, records));
            }
            assert_equivalent(2000 + case, &daemon.snapshot(), &all);
        }

        // Reopen (commit-then-stop is the crash-resume commit path:
        // recovery rebuilds the base layer from the store) and stack
        // the remaining epochs as fresh delta layers on top of it.
        let (mut daemon, recovery) = SirenDaemon::open(ServiceConfig::at(&dir)).unwrap();
        assert_eq!(recovery.consolidated_records as usize, all.len());
        for records in &epochs[split..] {
            let epoch = daemon.import_epoch(records.clone()).unwrap();
            all.extend(tag(epoch, records));
        }
        assert_equivalent(3000 + case, &daemon.snapshot(), &all);
        drop(daemon);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn background_merger_bounds_layer_fanout() {
    let dir = std::env::temp_dir().join(format!("siren-layer-fanout-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = rng_for("snapshot-layers-fanout");
    let (mut daemon, _) = SirenDaemon::open(ServiceConfig::at(&dir)).unwrap();
    let mut all: Vec<EpochRecord> = Vec::new();
    for _ in 0..40 {
        let records: Vec<ProcessRecord> = (0..rng.below(8) + 1)
            .map(|_| arb_record(&mut rng, &[]))
            .collect();
        let epoch = daemon.import_epoch(records.clone()).unwrap();
        all.extend(tag(epoch, &records));
    }
    // 40 commits against a hard bound of 16 and a background target of
    // 8: the maintainer must have merged, and the fan-out must settle
    // at the soft bound once it catches up.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while daemon.snapshot_layers() > siren_service::SOFT_MAX_LAYERS
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        daemon.snapshot_layers() <= siren_service::SOFT_MAX_LAYERS,
        "fan-out stuck at {} layers",
        daemon.snapshot_layers()
    );
    assert!(daemon.snapshot_merges() > 0, "no background merge ran");
    assert_equivalent(4000, &daemon.snapshot(), &all);
    drop(daemon);
    std::fs::remove_dir_all(&dir).unwrap();
}
