//! The storage seam: a database keeps rows + indexes in memory and
//! delegates durability to a [`StorageBackend`].

use crate::wal::{WalReader, WalWriter};
use crate::{Persist, ReplayStats};
use std::path::Path;

/// What a persistence backend must provide at runtime. Recovery is a
/// constructor concern — each backend's `open` returns the records it
/// recovered alongside the backend itself.
///
/// `Send + Sync` because databases are shared across receiver and
/// analysis threads; all mutation goes through `&mut self` (the caller's
/// lock), so implementations need no interior locking of their own.
pub trait StorageBackend<T: Persist>: Send + Sync {
    /// Durably enqueue `items`, in order, after everything already
    /// appended. Durability is only guaranteed after [`Self::sync`].
    fn append_batch(&mut self, items: &[T]) -> std::io::Result<()>;

    /// Flush buffered appends to the OS.
    fn flush(&mut self) -> std::io::Result<()>;

    /// Flush and fsync to stable storage.
    fn sync(&mut self) -> std::io::Result<()> {
        self.flush()
    }

    /// Human-readable backend kind, for reports.
    fn kind(&self) -> &'static str;
}

/// Volatile no-op backend: persists nothing. The backend behind
/// `Database::in_memory` — the database's own row vector is the only
/// copy, exactly as in the seed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBackend;

impl<T: Persist> StorageBackend<T> for NullBackend {
    fn append_batch(&mut self, _items: &[T]) -> std::io::Result<()> {
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "null"
    }
}

/// In-memory buffer backend: keeps every appended item in a vector.
/// Useful standalone (tests, staging pipelines) where the caller wants
/// backend semantics without a filesystem.
#[derive(Debug, Default)]
pub struct MemoryBackend<T> {
    items: Vec<T>,
}

impl<T: Persist + Clone> MemoryBackend<T> {
    /// Empty buffer.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Everything appended so far, in order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume the backend, yielding its buffer.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Persist + Clone> StorageBackend<T> for MemoryBackend<T> {
    fn append_batch(&mut self, items: &[T]) -> std::io::Result<()> {
        self.items.extend_from_slice(items);
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "memory"
    }
}

/// Single flat write-ahead-log backend — the seed's persistence model,
/// now expressed through the backend seam. Suited to campaign-scoped
/// runs where the log is bounded and replayed whole.
#[derive(Debug)]
pub struct WalBackend<T: Persist> {
    writer: WalWriter<T>,
}

impl<T: Persist> WalBackend<T> {
    /// Open (or create) the log at `path`, replaying existing records.
    /// A corrupt tail is truncated away and reported in [`ReplayStats`].
    pub fn open(path: &Path) -> std::io::Result<(Self, Vec<T>, ReplayStats)> {
        let (items, stats) = if path.exists() {
            WalReader::<T>::open(path)?.replay()?
        } else {
            (Vec::new(), ReplayStats::default())
        };
        Ok((
            Self {
                writer: WalWriter::append_to(path)?,
            },
            items,
            stats,
        ))
    }
}

impl<T: Persist> StorageBackend<T> for WalBackend<T> {
    fn append_batch(&mut self, items: &[T]) -> std::io::Result<()> {
        for item in items {
            self.writer.append(item)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.writer.sync()
    }

    fn kind(&self) -> &'static str {
        "wal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testitem::{temp_dir, TestItem};

    #[test]
    fn memory_backend_buffers_in_order() {
        let mut b = MemoryBackend::new();
        let items: Vec<TestItem> = (0..10).map(TestItem::new).collect();
        StorageBackend::append_batch(&mut b, &items[..5]).unwrap();
        StorageBackend::append_batch(&mut b, &items[5..]).unwrap();
        assert_eq!(b.items(), &items[..]);
        assert_eq!(b.into_items(), items);
    }

    #[test]
    fn wal_backend_round_trips_and_reports_replay() {
        let dir = temp_dir("backend-wal");
        let path = dir.join("b.wal");
        {
            let (mut b, items, stats) = WalBackend::<TestItem>::open(&path).unwrap();
            assert!(items.is_empty());
            assert_eq!(stats, ReplayStats::default());
            let batch: Vec<TestItem> = (0..20).map(TestItem::new).collect();
            b.append_batch(&batch).unwrap();
            b.sync().unwrap();
        }
        let (_b, items, stats) = WalBackend::<TestItem>::open(&path).unwrap();
        assert_eq!(items.len(), 20);
        assert_eq!(stats.records, 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
