//! Shared length-prefixed binary codec helpers for [`Persist`] payloads:
//! little-endian integers, `u32`-length-prefixed UTF-8 strings, and the
//! option/list/map composites built from them. Every `get_*` returns
//! `None` on any structural inconsistency (truncation, bad UTF-8,
//! absurd lengths) and never panics — the contract [`Persist::decode`]
//! requires.
//!
//! (`siren_db::Record`'s WAL payload predates this module and keeps its
//! legacy `u16` string lengths for on-disk compatibility; new codecs
//! should build on these helpers instead of hand-rolling framing.)
//!
//! [`Persist`]: crate::Persist
//! [`Persist::decode`]: crate::Persist::decode

use std::collections::HashMap;

/// Append a `u32`-length-prefixed string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Append a `u32`-length-prefixed raw byte payload (nested codecs).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Read a [`put_bytes`] payload as a borrowed slice.
pub fn get_bytes<'d>(data: &'d [u8], pos: &mut usize) -> Option<&'d [u8]> {
    let len = u32::from_le_bytes(take(data, pos, 4)?.try_into().ok()?) as usize;
    take(data, pos, len)
}

/// Append an optional string (`0` tag, or `1` tag + string).
pub fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Append an optional string list (`0` tag, or `1` tag + count + items).
pub fn put_opt_list(out: &mut Vec<u8>, list: &Option<Vec<String>>) {
    match list {
        None => out.push(0),
        Some(items) => {
            out.push(1);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                put_str(out, item);
            }
        }
    }
}

/// Append a string map in sorted key order, so equal maps encode to
/// equal bytes.
pub fn put_map(out: &mut Vec<u8>, map: &HashMap<String, String>) {
    let mut keys: Vec<&String> = map.keys().collect();
    keys.sort();
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for key in keys {
        put_str(out, key);
        put_str(out, &map[key]);
    }
}

/// Take `n` raw bytes, advancing `pos`.
pub fn take<'d>(data: &'d [u8], pos: &mut usize, n: usize) -> Option<&'d [u8]> {
    let slice = data.get(*pos..*pos + n)?;
    *pos += n;
    Some(slice)
}

/// Read a [`put_str`] string.
pub fn get_str(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(take(data, pos, 4)?.try_into().ok()?) as usize;
    String::from_utf8(take(data, pos, len)?.to_vec()).ok()
}

/// Read a [`put_opt_str`] optional string.
pub fn get_opt_str(data: &[u8], pos: &mut usize) -> Option<Option<String>> {
    match take(data, pos, 1)?[0] {
        0 => Some(None),
        1 => Some(Some(get_str(data, pos)?)),
        _ => None,
    }
}

/// Read a [`put_opt_list`] optional list.
pub fn get_opt_list(data: &[u8], pos: &mut usize) -> Option<Option<Vec<String>>> {
    match take(data, pos, 1)?[0] {
        0 => Some(None),
        1 => {
            let n = u32::from_le_bytes(take(data, pos, 4)?.try_into().ok()?) as usize;
            // Guard against absurd lengths before allocating.
            if n > data.len() {
                return None;
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_str(data, pos)?);
            }
            Some(Some(items))
        }
        _ => None,
    }
}

/// Read a [`put_map`] map.
pub fn get_map(data: &[u8], pos: &mut usize) -> Option<HashMap<String, String>> {
    let n = u32::from_le_bytes(take(data, pos, 4)?.try_into().ok()?) as usize;
    if n > data.len() {
        return None;
    }
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let key = get_str(data, pos)?;
        let value = get_str(data, pos)?;
        map.insert(key, value);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_canonical_map_order() {
        let mut out = Vec::new();
        put_str(&mut out, "hello");
        put_opt_str(&mut out, &None);
        put_opt_str(&mut out, &Some("x".into()));
        put_opt_list(&mut out, &Some(vec!["a".into(), String::new()]));
        let map: HashMap<String, String> = [("k2", "v2"), ("k1", "v1")]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        put_map(&mut out, &map);

        let mut pos = 0;
        assert_eq!(get_str(&out, &mut pos).as_deref(), Some("hello"));
        assert_eq!(get_opt_str(&out, &mut pos), Some(None));
        assert_eq!(get_opt_str(&out, &mut pos), Some(Some("x".into())));
        assert_eq!(
            get_opt_list(&out, &mut pos),
            Some(Some(vec!["a".into(), String::new()]))
        );
        assert_eq!(get_map(&out, &mut pos), Some(map.clone()));
        assert_eq!(pos, out.len());

        // Same map, different construction order, identical bytes.
        let mut again = Vec::new();
        let reordered: HashMap<String, String> = map.into_iter().collect();
        put_map(&mut again, &reordered);
        let mut reference = Vec::new();
        let mut sorted = Vec::new();
        put_map(&mut sorted, &reordered);
        reference.extend_from_slice(&sorted);
        assert_eq!(again, reference);
    }

    #[test]
    fn truncation_never_panics() {
        let mut out = Vec::new();
        put_str(&mut out, "payload");
        put_opt_list(&mut out, &Some(vec!["item".into()]));
        for cut in 0..out.len() {
            let mut pos = 0;
            let _ = get_str(&out[..cut], &mut pos);
            let mut pos = 0;
            let _ = get_opt_list(&out[..cut], &mut pos);
        }
    }
}
