//! Background compaction: merge contiguous sealed files into one sorted
//! run.
//!
//! The compactor only ever reads immutable files and performs one atomic
//! rename, so it needs the catalog lock only to snapshot the input set
//! and to swap in the result — reads and the merge itself run unlocked.
//! Crash safety comes from the supersession rule (see the crate docs),
//! not from locking.

use crate::metrics::StoreMetrics;
use crate::segment::{read_segment, write_segment, SegmentRead};
use crate::segmented::{run_path, Catalog, FileKind, SealedFile};
use crate::Persist;
use siren_obs::TraceId;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// When the oldest file is a run more than this factor larger than all
/// newer files combined, compaction merges only the newer files.
const TIER_FACTOR: u64 = 4;

pub(crate) enum Msg {
    Notify,
    Shutdown,
}

/// Handle to the background compaction worker.
pub(crate) struct Compactor {
    tx: Sender<Msg>,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    pub(crate) fn spawn<T: Persist + Clone>(
        catalog: Arc<Mutex<Catalog>>,
        min_files: usize,
        metrics: StoreMetrics,
    ) -> Self {
        let (tx, rx) = channel::<Msg>();
        let handle = std::thread::Builder::new()
            .name("siren-store-compact".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Shutdown => break,
                        Msg::Notify => {
                            // Drain queued notifications; one pass covers
                            // them all.
                            // I/O errors leave the inputs untouched; the
                            // next pass (or recovery) retries.
                            let _ = compact_pass::<T>(&catalog, min_files, &metrics);
                        }
                    }
                }
            })
            .expect("spawn compactor thread");
        Self {
            tx,
            handle: Some(handle),
        }
    }

    pub(crate) fn notify(&self) {
        let _ = self.tx.send(Msg::Notify);
    }

    pub(crate) fn shutdown(mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One compaction pass: if at least `min_files` sealed files are live,
/// merge them all into a single sorted run. Returns whether a merge
/// happened.
pub(crate) fn compact_pass<T: Persist + Clone>(
    catalog: &Arc<Mutex<Catalog>>,
    min_files: usize,
    metrics: &StoreMetrics,
) -> std::io::Result<bool> {
    let pass_start = Instant::now();
    // Snapshot the input set under the lock.
    let (dir, mut inputs): (std::path::PathBuf, Vec<SealedFile>) = {
        let catalog = catalog.lock().expect("catalog lock");
        if catalog.files.len() < min_files.max(2) {
            return Ok(false);
        }
        (
            catalog.dir.clone(),
            catalog.files.values().cloned().collect(),
        )
    };

    // Tiering: leave a dominant oldest run out of the merge. Without
    // this, every pass reads and rewrites the entire store — a daemon
    // with a 10 GB historical run would pay 10 GB of I/O per few MiB of
    // fresh data, quadratic write amplification over its lifetime. The
    // newer files still merge among themselves (their generation range
    // stays disjoint from the kept run's, so the supersession rule is
    // untouched), and the big run is only rewritten once the newcomers
    // reach a constant fraction of its size.
    if inputs[0].kind == FileKind::Run {
        let size = |f: &SealedFile| std::fs::metadata(&f.path).map(|m| m.len()).unwrap_or(0);
        let head = size(&inputs[0]);
        let tail: u64 = inputs[1..].iter().map(size).sum();
        if tail.saturating_mul(TIER_FACTOR) < head {
            inputs.remove(0);
            if inputs.len() < 2 {
                return Ok(false);
            }
        }
    }

    // Read and merge outside the lock — inputs are immutable.
    let mut merged: Vec<T> = Vec::new();
    for file in &inputs {
        match read_segment::<T>(&file.path)? {
            SegmentRead::Valid(items) => merged.extend(items),
            SegmentRead::Partial(_) => {
                // A live catalog entry must be valid; bail out and let
                // recovery adjudicate on the next open.
                return Ok(false);
            }
        }
    }
    merged.sort_by(T::order); // stable: equal records keep arrival order

    let start = inputs.first().expect("non-empty input set").start;
    let end = inputs.last().expect("non-empty input set").end;
    let out = run_path(&dir, start, end);
    write_segment(&out, &merged)?;
    metrics
        .compaction_bytes
        .add(std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0));

    // Swap the run in for its inputs, then unlink them. A crash before
    // the unlinks is fine: the run supersedes them on recovery.
    {
        let mut catalog = catalog.lock().expect("catalog lock");
        for file in &inputs {
            catalog.files.remove(&file.start);
        }
        catalog.files.insert(
            start,
            SealedFile {
                start,
                end,
                path: out,
                kind: FileKind::Run,
            },
        );
    }
    for file in &inputs {
        // Survivable: a superseded input left behind is re-recognized
        // (and re-unlinked) by the next recovery; only count it.
        if std::fs::remove_file(&file.path).is_err() {
            metrics.io_errors.inc();
        }
    }
    let pass_elapsed = pass_start.elapsed();
    metrics.compaction_ns.record_duration(pass_elapsed);
    metrics.compaction_passes.inc();
    if let Some(spans) = &metrics.spans {
        spans.record_past(
            TraceId::generate(),
            None,
            "store.compaction",
            pass_start,
            pass_elapsed,
        );
    }
    Ok(true)
}
