//! # siren-store — segmented, compacting persistent storage
//!
//! The paper's receiver is a *continuously running* service writing to
//! SQLite; a single flat write-ahead log cannot serve that shape of
//! deployment. This crate is the storage subsystem the long-running
//! service tier builds on:
//!
//! * [`Persist`] — binary codec + total order for any storable item
//!   (message rows, consolidated records, …).
//! * [`WalWriter`] / [`WalReader`] — checksummed, corruption-tolerant
//!   frame log (a torn tail costs at most the final record).
//! * [`StorageBackend`] — the seam the database caches over, with four
//!   implementations: [`NullBackend`] (volatile), [`MemoryBackend`]
//!   (in-memory buffer), [`WalBackend`] (one flat log — the seed's
//!   behavior), and [`SegmentedBackend`] (the production shape).
//! * [`SegmentedBackend`] — appends to an active WAL, rotates it into
//!   immutable checksummed segments at a size threshold, background-
//!   compacts segments into sorted record runs, and recovers
//!   crash-consistently from any interleaving of those steps.
//!
//! ## On-disk layout of a segmented store
//!
//! ```text
//! store/
//!   wal-0000000007.wal        active WAL (exactly one after recovery)
//!   seg-0000000004.seg        sealed segment, generation 4, arrival order
//!   seg-0000000005.seg
//!   run-0000000000-0000000003.run   sorted run covering generations 0..=3
//! ```
//!
//! ## Crash-consistency contract
//!
//! Every mutation is ordered so that a kill at any instant loses at most
//! the unsynced tail of the active WAL and never duplicates a record:
//!
//! 1. **Rotation**: seal `wal-N` → write `seg-N.tmp`, fsync, rename to
//!    `seg-N.seg` → create `wal-N+1` → delete `wal-N`. Recovery treats a
//!    `seg-N` + `wal-N` pair as a completed seal (the WAL is dropped),
//!    a lone `wal-N` as pending (replayed and sealed), and a `*.tmp` as
//!    garbage.
//! 2. **Compaction**: merge whole contiguous files into `run-A-B.tmp`,
//!    fsync, rename → delete inputs. A valid `run-A-B` *supersedes* every
//!    segment or narrower run inside `[A, B]`; recovery deletes the
//!    leftovers, so a kill between rename and input deletion cannot
//!    double-count.
//! 3. **Sealed appends** ([`SegmentedBackend::append_sealed`]): one
//!    atomic segment per call — either the whole batch is present after
//!    restart or none of it, which is what the service tier's per-epoch
//!    commits require.
//!
//! The property tests in this crate fuzz kill points (torn WAL tails,
//! partial segment files, interrupted rotations and compactions) and
//! assert the recovered record multiset is exactly the durable prefix.

pub mod backend;
pub mod codec;
pub mod compact;
pub mod metrics;
pub mod segment;
pub mod segmented;
pub mod wal;

pub use backend::{MemoryBackend, NullBackend, StorageBackend, WalBackend};
pub use metrics::StoreMetrics;
pub use segment::{read_segment, write_segment, SegmentRead};
pub use segmented::{RecoveryStats, SegmentedBackend, SegmentedOptions};
pub use wal::{encode_frame, WalReader, WalWriter, FRAME_MAGIC, MAX_PAYLOAD};

/// Binary codec + total order for storable items.
///
/// `decode` must reject structurally inconsistent payloads with `None`
/// (never panic), and `order` must be a total order — compaction sorts
/// runs by it, and partitioned consumers merge by it.
pub trait Persist: Sized + Send + Sync + 'static {
    /// Encode to a self-contained payload.
    fn encode(&self) -> Vec<u8>;
    /// Decode a payload; `None` on any structural inconsistency.
    fn decode(data: &[u8]) -> Option<Self>;
    /// The total order compaction sorts runs by.
    fn order(a: &Self, b: &Self) -> std::cmp::Ordering;
}

/// Statistics from replaying one WAL file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records successfully replayed.
    pub records: u64,
    /// Bytes discarded from a corrupt or torn tail.
    pub corrupt_tail_bytes: u64,
}

impl ReplayStats {
    /// Fold another replay's counters into this one (multi-file stores).
    pub fn absorb(&mut self, other: ReplayStats) {
        self.records += other.records;
        self.corrupt_tail_bytes += other.corrupt_tail_bytes;
    }
}

#[cfg(test)]
pub(crate) mod testitem {
    use super::Persist;

    /// Minimal Persist implementor for the crate's own tests.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct TestItem {
        pub key: u64,
        pub body: String,
    }

    impl TestItem {
        pub fn new(key: u64) -> Self {
            Self {
                key,
                body: format!("body-{key}"),
            }
        }
    }

    impl Persist for TestItem {
        fn encode(&self) -> Vec<u8> {
            let mut out = Vec::with_capacity(12 + self.body.len());
            out.extend_from_slice(&self.key.to_le_bytes());
            out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
            out.extend_from_slice(self.body.as_bytes());
            out
        }

        fn decode(data: &[u8]) -> Option<Self> {
            let key = u64::from_le_bytes(data.get(..8)?.try_into().ok()?);
            let len = u32::from_le_bytes(data.get(8..12)?.try_into().ok()?) as usize;
            let body = data.get(12..12 + len)?;
            if 12 + len != data.len() {
                return None;
            }
            Some(Self {
                key,
                body: String::from_utf8(body.to_vec()).ok()?,
            })
        }

        fn order(a: &Self, b: &Self) -> std::cmp::Ordering {
            a.cmp(b)
        }
    }

    pub fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("siren-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
