//! Storage-layer metric handles.
//!
//! One bundle of `Arc` handles covering the segmented store's span
//! points: WAL fsync latency, segment seal latency, and compaction
//! duration/volume. Registered under `store.*` when the caller shares a
//! [`Registry`]; a detached bundle (private, unregistered atomics)
//! otherwise, so the instrumented paths never branch on an `Option`.

use siren_obs::{Counter, Histogram, Registry, SpanBuffer};
use std::sync::Arc;

/// `Arc` handles for every `store.*` metric.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// When set, each completed compaction pass records a root
    /// `store.compaction` span into this flight recorder (attached via
    /// [`StoreMetrics::with_spans`]; detached bundles record none).
    pub spans: Option<Arc<SpanBuffer>>,
    /// `store.wal_fsync_ns` — flush+fsync latency of the active WAL.
    pub wal_fsync_ns: Arc<Histogram>,
    /// `store.segment_seal_ns` — time to write and catalog one sealed
    /// segment (rotation or sealed batch append).
    pub segment_seal_ns: Arc<Histogram>,
    /// `store.segments_sealed` — sealed segments written.
    pub segments_sealed: Arc<Counter>,
    /// `store.compaction_ns` — duration of completed compaction passes.
    pub compaction_ns: Arc<Histogram>,
    /// `store.compaction_bytes` — bytes written into sorted runs.
    pub compaction_bytes: Arc<Counter>,
    /// `store.compaction_passes` — completed passes that merged files.
    pub compaction_passes: Arc<Counter>,
    /// `store.io_errors` — survivable filesystem failures the store
    /// absorbed (superseded-file unlinks, tmp cleanup). Deliberate
    /// aborts — fsync or segment-write failure on the commit path —
    /// are *not* counted here: those propagate as errors (see
    /// DESIGN.md, "Deliberate aborts").
    pub io_errors: Arc<Counter>,
}

impl StoreMetrics {
    /// Register the `store.*` handles in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            spans: None,
            wal_fsync_ns: registry.histogram("store.wal_fsync_ns"),
            segment_seal_ns: registry.histogram("store.segment_seal_ns"),
            segments_sealed: registry.counter("store.segments_sealed"),
            compaction_ns: registry.histogram("store.compaction_ns"),
            compaction_bytes: registry.counter("store.compaction_bytes"),
            compaction_passes: registry.counter("store.compaction_passes"),
            io_errors: registry.counter("store.io_errors"),
        }
    }

    /// Attach a span flight recorder: completed compaction passes will
    /// record root `store.compaction` spans into it.
    pub fn with_spans(mut self, spans: Arc<SpanBuffer>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Detached handles: same recording behavior, visible to nobody.
    pub fn detached() -> Self {
        Self {
            spans: None,
            wal_fsync_ns: Arc::new(Histogram::new()),
            segment_seal_ns: Arc::new(Histogram::new()),
            segments_sealed: Arc::new(Counter::new()),
            compaction_ns: Arc::new(Histogram::new()),
            compaction_bytes: Arc::new(Counter::new()),
            compaction_passes: Arc::new(Counter::new()),
            io_errors: Arc::new(Counter::new()),
        }
    }
}

impl Default for StoreMetrics {
    fn default() -> Self {
        Self::detached()
    }
}
