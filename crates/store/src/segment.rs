//! Immutable checksummed segment files.
//!
//! A segment is written once, atomically (to `<name>.tmp`, fsynced,
//! renamed into place), and never modified. Layout:
//!
//! ```text
//! [b"SIRNSEG1"][frame]*[0xD9][count: u64 LE][checksum: u64 LE]
//! ```
//!
//! Frames use the WAL framing (per-record checksums); the footer checksum
//! is FNV-1a/64 over every byte before the footer magic, so a truncated
//! or bit-flipped segment is detected as a whole even when each surviving
//! frame checks out individually.

use crate::wal::{encode_frame, walk_frames};
use crate::Persist;
use siren_hash::fnv1a64;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Leading magic of every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"SIRNSEG1";
/// First byte of the footer (never a valid frame magic).
const FOOTER_MAGIC: u8 = 0xD9;

/// Outcome of reading a segment file.
#[derive(Debug)]
pub enum SegmentRead<T> {
    /// Footer present and consistent: the complete item vector.
    Valid(Vec<T>),
    /// Torn or corrupt: the salvageable prefix of intact frames.
    Partial(Vec<T>),
}

impl<T> SegmentRead<T> {
    /// The items regardless of validity.
    pub fn items(self) -> Vec<T> {
        match self {
            SegmentRead::Valid(v) | SegmentRead::Partial(v) => v,
        }
    }

    /// True for [`SegmentRead::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, SegmentRead::Valid(_))
    }
}

/// Write `items` as a segment at `path`, atomically: the content goes to
/// `<path>.tmp`, is fsynced, and renamed into place. Returns the file
/// size in bytes.
pub fn write_segment<T: Persist>(path: &Path, items: &[T]) -> std::io::Result<u64> {
    let mut buf = Vec::with_capacity(64 + items.len() * 64);
    buf.extend_from_slice(SEG_MAGIC);
    for item in items {
        buf.extend_from_slice(&encode_frame(&item.encode()));
    }
    let checksum = fnv1a64(&buf);
    buf.push(FOOTER_MAGIC);
    buf.extend_from_slice(&(items.len() as u64).to_le_bytes());
    buf.extend_from_slice(&checksum.to_le_bytes());

    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(buf.len() as u64)
}

/// Read a segment at `path`, classifying it as valid or partial.
pub fn read_segment<T: Persist>(path: &Path) -> std::io::Result<SegmentRead<T>> {
    let data = std::fs::read(path)?;
    if data.len() < SEG_MAGIC.len() || &data[..SEG_MAGIC.len()] != SEG_MAGIC {
        return Ok(SegmentRead::Partial(Vec::new()));
    }
    let (ranges, end, clean) = walk_frames(&data, SEG_MAGIC.len(), Some(FOOTER_MAGIC));

    let mut items = Vec::with_capacity(ranges.len());
    let mut decoded_ok = true;
    for &(start, len) in &ranges {
        match T::decode(&data[start..start + len]) {
            Some(item) => items.push(item),
            None => {
                decoded_ok = false;
                break;
            }
        }
    }

    // Footer: exactly 17 bytes after the frame region, nothing else.
    let valid = clean
        && decoded_ok
        && data.len() == end + 17
        && data[end] == FOOTER_MAGIC
        && u64::from_le_bytes(data[end + 1..end + 9].try_into().unwrap()) == items.len() as u64
        && u64::from_le_bytes(data[end + 9..end + 17].try_into().unwrap()) == fnv1a64(&data[..end]);

    Ok(if valid {
        SegmentRead::Valid(items)
    } else {
        SegmentRead::Partial(items)
    })
}

/// The temporary sibling a segment is staged at before its atomic rename.
pub(crate) fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Best-effort fsync of the containing directory so the rename itself is
/// durable (POSIX requires it for crash safety of the directory entry).
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testitem::{temp_dir, TestItem};

    #[test]
    fn round_trip_valid() {
        let dir = temp_dir("seg-rt");
        let path = dir.join("a.seg");
        let items: Vec<TestItem> = (0..50).map(TestItem::new).collect();
        let bytes = write_segment(&path, &items).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        match read_segment::<TestItem>(&path).unwrap() {
            SegmentRead::Valid(got) => assert_eq!(got, items),
            SegmentRead::Partial(_) => panic!("fresh segment must be valid"),
        }
        // No .tmp left behind.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_segment_is_valid() {
        let dir = temp_dir("seg-empty");
        let path = dir.join("e.seg");
        write_segment::<TestItem>(&path, &[]).unwrap();
        assert!(read_segment::<TestItem>(&path).unwrap().is_valid());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_truncation_is_partial_with_intact_prefix() {
        let dir = temp_dir("seg-trunc");
        let path = dir.join("t.seg");
        let items: Vec<TestItem> = (0..20).map(TestItem::new).collect();
        write_segment(&path, &items).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 3, 9, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let read = read_segment::<TestItem>(&path).unwrap();
            assert!(!read.is_valid(), "cut {cut} must invalidate");
            let got = read.items();
            assert!(got.len() <= items.len());
            assert_eq!(got[..], items[..got.len()], "prefix intact at cut {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_in_footer_region_detected() {
        let dir = temp_dir("seg-flip");
        let path = dir.join("f.seg");
        let items: Vec<TestItem> = (0..5).map(TestItem::new).collect();
        write_segment(&path, &items).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 3] ^= 0x01; // inside the footer checksum
        std::fs::write(&path, &data).unwrap();
        assert!(!read_segment::<TestItem>(&path).unwrap().is_valid());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_junk_after_footer_invalidates() {
        let dir = temp_dir("seg-junk");
        let path = dir.join("j.seg");
        write_segment(&path, &[TestItem::new(1)]).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data.push(0xAB);
        std::fs::write(&path, &data).unwrap();
        assert!(!read_segment::<TestItem>(&path).unwrap().is_valid());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
