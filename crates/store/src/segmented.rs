//! The segmented backend: active WAL → sealed segments → sorted runs.

use crate::backend::StorageBackend;
use crate::compact::{compact_pass, Compactor};
use crate::metrics::StoreMetrics;
use crate::segment::{read_segment, sync_parent_dir, write_segment, SegmentRead};
use crate::wal::{WalReader, WalWriter};
use crate::Persist;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning knobs for a segmented store.
#[derive(Debug, Clone, Copy)]
pub struct SegmentedOptions {
    /// Rotate the active WAL into a sealed segment once it exceeds this
    /// many bytes.
    pub rotate_bytes: u64,
    /// Compact once at least this many sealed files (segments + runs)
    /// are live.
    pub compact_min_files: usize,
    /// Run compaction on a background thread. When `false`, call
    /// [`SegmentedBackend::compact_now`] explicitly (deterministic mode
    /// for tests and benchmarks).
    pub background_compaction: bool,
}

impl Default for SegmentedOptions {
    fn default() -> Self {
        Self {
            rotate_bytes: 1 << 20,
            compact_min_files: 4,
            background_compaction: true,
        }
    }
}

/// What recovery found and did while opening a segmented store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records loaded into memory across all live files and WALs.
    pub records_loaded: u64,
    /// Records replayed out of leftover WAL files.
    pub wal_records_replayed: u64,
    /// Bytes dropped from torn WAL tails.
    pub wal_tail_bytes_discarded: u64,
    /// Valid sealed segments adopted.
    pub segments_loaded: usize,
    /// Valid sorted runs adopted.
    pub runs_loaded: usize,
    /// Partial files discarded (`*.tmp` leftovers, torn segments).
    pub partial_files_discarded: usize,
    /// Files deleted because a wider run superseded them.
    pub superseded_files_removed: usize,
    /// Rotations that had sealed their segment but not yet removed the
    /// source WAL when the process died; recovery finished them.
    pub interrupted_rotations_completed: usize,
}

/// Kind of a sealed (immutable) file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FileKind {
    /// Arrival-order segment from one WAL generation.
    Segment,
    /// Sorted run covering a contiguous generation range.
    Run,
}

/// One immutable file in the store, covering generations `start..=end`.
#[derive(Debug, Clone)]
pub(crate) struct SealedFile {
    pub start: u64,
    pub end: u64,
    pub path: PathBuf,
    pub kind: FileKind,
}

/// The live-file catalog shared with the compactor thread.
#[derive(Debug)]
pub(crate) struct Catalog {
    pub dir: PathBuf,
    /// Keyed by range start; ranges are disjoint and sorted.
    pub files: BTreeMap<u64, SealedFile>,
}

pub(crate) fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:010}.wal"))
}

pub(crate) fn seg_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("seg-{generation:010}.seg"))
}

pub(crate) fn run_path(dir: &Path, start: u64, end: u64) -> PathBuf {
    dir.join(format!("run-{start:010}-{end:010}.run"))
}

/// Parse a store file name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreFile {
    Wal(u64),
    Seg(u64),
    Run(u64, u64),
    Tmp,
}

fn parse_name(name: &str) -> Option<StoreFile> {
    if name.ends_with(".tmp") {
        return Some(StoreFile::Tmp);
    }
    if let Some(n) = name
        .strip_prefix("wal-")
        .and_then(|s| s.strip_suffix(".wal"))
    {
        return n.parse().ok().map(StoreFile::Wal);
    }
    if let Some(n) = name
        .strip_prefix("seg-")
        .and_then(|s| s.strip_suffix(".seg"))
    {
        return n.parse().ok().map(StoreFile::Seg);
    }
    if let Some(ab) = name
        .strip_prefix("run-")
        .and_then(|s| s.strip_suffix(".run"))
    {
        let (a, b) = ab.split_once('-')?;
        return Some(StoreFile::Run(a.parse().ok()?, b.parse().ok()?));
    }
    None
}

/// Segmented, compacting persistent store for `T`.
///
/// See the crate docs for the on-disk layout and the crash-consistency
/// contract. All appends go through an active WAL; [`Self::append_sealed`]
/// bypasses it to commit a batch as one atomic segment.
pub struct SegmentedBackend<T: Persist + Clone> {
    opts: SegmentedOptions,
    catalog: Arc<Mutex<Catalog>>,
    active: WalWriter<T>,
    active_gen: u64,
    /// In-memory mirror of the active WAL, bounded by `rotate_bytes`;
    /// sealing re-encodes from here instead of re-reading the file.
    active_items: Vec<T>,
    compactor: Option<Compactor>,
    metrics: StoreMetrics,
}

impl<T: Persist + Clone> SegmentedBackend<T> {
    /// Open (or create) the store in `dir`, running full crash recovery.
    /// Returns the backend, every record it holds (file order: sorted
    /// runs, then segments, then replayed WALs by generation), and the
    /// recovery report. Metrics record into a detached bundle; use
    /// [`Self::open_with_metrics`] to surface them in a shared registry.
    pub fn open(
        dir: &Path,
        opts: SegmentedOptions,
    ) -> std::io::Result<(Self, Vec<T>, RecoveryStats)> {
        Self::open_with_metrics(dir, opts, StoreMetrics::detached())
    }

    /// [`Self::open`], recording `store.*` metrics into `metrics` —
    /// including the background compactor's pass durations and bytes.
    pub fn open_with_metrics(
        dir: &Path,
        opts: SegmentedOptions,
        metrics: StoreMetrics,
    ) -> std::io::Result<(Self, Vec<T>, RecoveryStats)> {
        std::fs::create_dir_all(dir)?;
        let mut stats = RecoveryStats::default();

        let mut wals: Vec<u64> = Vec::new();
        let mut segs: Vec<u64> = Vec::new();
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            match parse_name(name) {
                Some(StoreFile::Tmp) => {
                    // Interrupted atomic write: never renamed, never live.
                    std::fs::remove_file(entry.path())?;
                    stats.partial_files_discarded += 1;
                }
                Some(StoreFile::Wal(n)) => wals.push(n),
                Some(StoreFile::Seg(n)) => segs.push(n),
                Some(StoreFile::Run(a, b)) => runs.push((a, b)),
                None => {}
            }
        }
        wals.sort_unstable();
        segs.sort_unstable();
        runs.sort_unstable();

        // 1. Validate runs; keep the widest, discard contained ones.
        let mut valid_runs: Vec<(u64, u64, Vec<T>)> = Vec::new();
        for (a, b) in runs {
            let path = run_path(dir, a, b);
            match read_segment::<T>(&path)? {
                SegmentRead::Valid(items) => valid_runs.push((a, b, items)),
                SegmentRead::Partial(_) => {
                    // A run is only renamed into place after fsync; a
                    // torn one is pre-rename garbage that escaped the
                    // .tmp convention. Its inputs are still live.
                    std::fs::remove_file(&path)?;
                    stats.partial_files_discarded += 1;
                }
            }
        }
        valid_runs.sort_by_key(|&(a, b, _)| (std::cmp::Reverse(b - a), a));
        let mut kept_runs: Vec<(u64, u64, Vec<T>)> = Vec::new();
        for (a, b, items) in valid_runs {
            if kept_runs.iter().any(|&(ka, kb, _)| ka <= a && b <= kb) {
                std::fs::remove_file(run_path(dir, a, b))?;
                stats.superseded_files_removed += 1;
            } else {
                kept_runs.push((a, b, items));
            }
        }
        let covered =
            |g: u64, kept: &[(u64, u64, Vec<T>)]| kept.iter().any(|&(a, b, _)| a <= g && g <= b);

        // 2. Segments: drop ones a run supersedes; salvage torn ones.
        let mut live_segs: Vec<(u64, Vec<T>)> = Vec::new();
        for n in segs {
            let path = seg_path(dir, n);
            if covered(n, &kept_runs) {
                std::fs::remove_file(&path)?;
                stats.superseded_files_removed += 1;
                continue;
            }
            match read_segment::<T>(&path)? {
                SegmentRead::Valid(items) => live_segs.push((n, items)),
                SegmentRead::Partial(prefix) => {
                    stats.partial_files_discarded += 1;
                    if wals.contains(&n) {
                        // The seal never completed; the WAL still holds
                        // everything. Drop the partial segment.
                        std::fs::remove_file(&path)?;
                    } else {
                        // No WAL to fall back to (it was already removed,
                        // so the segment *was* fully written once and has
                        // since been damaged). Keep the intact prefix and
                        // rewrite the file so it is valid again.
                        write_segment(&path, &prefix)?;
                        live_segs.push((n, prefix));
                    }
                }
            }
        }

        // 3. WALs: a sibling segment or covering run means the seal
        //    completed — drop the WAL. Otherwise replay and seal it now.
        let mut max_gen: Option<u64> = None;
        for &g in wals
            .iter()
            .chain(live_segs.iter().map(|(n, _)| n))
            .chain(kept_runs.iter().map(|(_, b, _)| b))
        {
            max_gen = Some(max_gen.map_or(g, |m: u64| m.max(g)));
        }
        for n in wals {
            let path = wal_path(dir, n);
            if covered(n, &kept_runs) || live_segs.iter().any(|&(s, _)| s == n) {
                std::fs::remove_file(&path)?;
                stats.interrupted_rotations_completed += 1;
                continue;
            }
            let (items, replay) = WalReader::<T>::open(&path)?.replay()?;
            stats.wal_records_replayed += replay.records;
            stats.wal_tail_bytes_discarded += replay.corrupt_tail_bytes;
            if !items.is_empty() {
                write_segment(&seg_path(dir, n), &items)?;
                live_segs.push((n, items));
            }
            std::fs::remove_file(&path)?;
        }
        live_segs.sort_by_key(|&(n, _)| n);

        // 4. Build the catalog and the in-memory record image.
        stats.runs_loaded = kept_runs.len();
        stats.segments_loaded = live_segs.len();
        let mut files: BTreeMap<u64, SealedFile> = BTreeMap::new();
        let mut loaded: BTreeMap<u64, Vec<T>> = BTreeMap::new();
        for (a, b, items) in kept_runs {
            files.insert(
                a,
                SealedFile {
                    start: a,
                    end: b,
                    path: run_path(dir, a, b),
                    kind: FileKind::Run,
                },
            );
            loaded.insert(a, items);
        }
        for (n, items) in live_segs {
            files.insert(
                n,
                SealedFile {
                    start: n,
                    end: n,
                    path: seg_path(dir, n),
                    kind: FileKind::Segment,
                },
            );
            loaded.insert(n, items);
        }
        let records: Vec<T> = loaded.into_values().flatten().collect();
        stats.records_loaded = records.len() as u64;

        let active_gen = max_gen.map_or(0, |m| m + 1);
        let active = WalWriter::append_to(&wal_path(dir, active_gen))?;
        let catalog = Arc::new(Mutex::new(Catalog {
            dir: dir.to_path_buf(),
            files,
        }));
        let compactor = if opts.background_compaction {
            Some(Compactor::spawn::<T>(
                Arc::clone(&catalog),
                opts.compact_min_files,
                metrics.clone(),
            ))
        } else {
            None
        };

        let backend = Self {
            opts,
            catalog,
            active,
            active_gen,
            active_items: Vec::new(),
            compactor,
            metrics,
        };
        backend.notify_compactor();
        Ok((backend, records, stats))
    }

    fn notify_compactor(&self) {
        if let Some(c) = &self.compactor {
            c.notify();
        }
    }

    fn dir(&self) -> PathBuf {
        self.catalog.lock().expect("catalog lock").dir.clone()
    }

    /// Seal the active WAL into `seg-<gen>.seg` and start a fresh WAL.
    /// No-op when the active WAL is empty.
    fn rotate(&mut self) -> std::io::Result<()> {
        if self.active_items.is_empty() {
            return Ok(());
        }
        let dir = self.dir();
        let gen = self.active_gen;
        // Make the WAL itself durable first: until the segment rename
        // lands, the WAL is the only copy.
        let fsync_start = Instant::now();
        self.active.sync()?;
        self.metrics
            .wal_fsync_ns
            .record_duration(fsync_start.elapsed());
        let seal_start = Instant::now();
        write_segment(&seg_path(&dir, gen), &self.active_items)?;
        {
            let mut catalog = self.catalog.lock().expect("catalog lock");
            catalog.files.insert(
                gen,
                SealedFile {
                    start: gen,
                    end: gen,
                    path: seg_path(&dir, gen),
                    kind: FileKind::Segment,
                },
            );
        }
        self.metrics
            .segment_seal_ns
            .record_duration(seal_start.elapsed());
        self.metrics.segments_sealed.inc();
        // Segment is durable: swap in a fresh WAL, then drop the old
        // one. A failed unlink is survivable — recovery drops a WAL
        // superseded by its sibling segment — so it must not fail a
        // rotation whose segment already landed.
        self.active_gen += 1;
        self.active = WalWriter::append_to(&wal_path(&dir, self.active_gen))?;
        self.active_items.clear();
        if std::fs::remove_file(wal_path(&dir, gen)).is_err() {
            self.metrics.io_errors.inc();
        }
        sync_parent_dir(&wal_path(&dir, gen));
        self.notify_compactor();
        Ok(())
    }

    /// Commit `items` as one atomic sealed segment: after a crash either
    /// the entire batch is recovered or none of it. Any pending active-WAL
    /// content is rotated out first so global record order is preserved.
    /// Returns the generation the batch was sealed under.
    pub fn append_sealed(&mut self, items: &[T]) -> std::io::Result<u64> {
        self.rotate()?;
        let dir = self.dir();
        let gen = self.active_gen;
        let seal_start = Instant::now();
        write_segment(&seg_path(&dir, gen), items)?;
        {
            let mut catalog = self.catalog.lock().expect("catalog lock");
            catalog.files.insert(
                gen,
                SealedFile {
                    start: gen,
                    end: gen,
                    path: seg_path(&dir, gen),
                    kind: FileKind::Segment,
                },
            );
        }
        self.metrics
            .segment_seal_ns
            .record_duration(seal_start.elapsed());
        self.metrics.segments_sealed.inc();
        // The sealed segment took over this generation; move the (empty)
        // active WAL past it. As in `rotate`, a failed unlink of the
        // superseded WAL is survivable and must not fail the commit.
        let old_wal = wal_path(&dir, gen);
        self.active_gen += 1;
        self.active = WalWriter::append_to(&wal_path(&dir, self.active_gen))?;
        if std::fs::remove_file(&old_wal).is_err() {
            self.metrics.io_errors.inc();
        }
        self.notify_compactor();
        Ok(gen)
    }

    /// Run one synchronous compaction pass (foreground mode). Returns
    /// whether anything was merged. With background compaction enabled
    /// this only nudges the worker instead (returns `false`).
    pub fn compact_now(&mut self) -> std::io::Result<bool> {
        if self.compactor.is_some() {
            self.notify_compactor();
            return Ok(false);
        }
        compact_pass::<T>(&self.catalog, self.opts.compact_min_files, &self.metrics)
    }

    /// Number of live `(segments, runs)` on disk.
    pub fn file_census(&self) -> (usize, usize) {
        let catalog = self.catalog.lock().expect("catalog lock");
        let segs = catalog
            .files
            .values()
            .filter(|f| f.kind == FileKind::Segment)
            .count();
        (segs, catalog.files.len() - segs)
    }

    /// Total bytes of live sealed files (segments + runs) on disk —
    /// the store's durable footprint. Files that vanish mid-walk
    /// (compaction racing the census) count as zero; this is an
    /// observability export, not an integrity check. Replication uses
    /// it as the leader/follower "bytes behind" yardstick.
    pub fn sealed_bytes(&self) -> u64 {
        let catalog = self.catalog.lock().expect("catalog lock");
        catalog
            .files
            .values()
            .filter_map(|f| std::fs::metadata(&f.path).ok())
            .map(|m| m.len())
            .sum()
    }

    /// Completed compaction passes (background and foreground), read
    /// from the `store.compaction_passes` metric.
    pub fn compaction_passes(&self) -> u64 {
        self.metrics.compaction_passes.get()
    }

    /// Bytes currently in the active (unsealed) WAL.
    pub fn active_wal_bytes(&self) -> u64 {
        self.active.bytes_written()
    }

    /// The store's options.
    pub fn options(&self) -> SegmentedOptions {
        self.opts
    }
}

impl<T: Persist + Clone> StorageBackend<T> for SegmentedBackend<T> {
    fn append_batch(&mut self, items: &[T]) -> std::io::Result<()> {
        for item in items {
            self.active.append(item)?;
            self.active_items.push(item.clone());
            if self.active.bytes_written() >= self.opts.rotate_bytes {
                self.rotate()?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.active.flush()
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let fsync_start = Instant::now();
        self.active.sync()?;
        self.metrics
            .wal_fsync_ns
            .record_duration(fsync_start.elapsed());
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "segmented"
    }
}

impl<T: Persist + Clone> Drop for SegmentedBackend<T> {
    fn drop(&mut self) {
        // Push buffered frames to the OS so a clean shutdown keeps
        // everything; a real crash is what recovery is for.
        let _ = self.active.flush();
        if let Some(compactor) = self.compactor.take() {
            compactor.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testitem::{temp_dir, TestItem};

    fn opts_foreground(rotate_bytes: u64, compact_min_files: usize) -> SegmentedOptions {
        SegmentedOptions {
            rotate_bytes,
            compact_min_files,
            background_compaction: false,
        }
    }

    fn items(range: std::ops::Range<u64>) -> Vec<TestItem> {
        range.map(TestItem::new).collect()
    }

    fn sorted(mut v: Vec<TestItem>) -> Vec<TestItem> {
        v.sort();
        v
    }

    #[test]
    fn append_rotate_reopen_round_trip() {
        let dir = temp_dir("segb-rt");
        let all = items(0..500);
        {
            let (mut b, recovered, _) =
                SegmentedBackend::<TestItem>::open(&dir, opts_foreground(256, usize::MAX)).unwrap();
            assert!(recovered.is_empty());
            for chunk in all.chunks(7) {
                b.append_batch(chunk).unwrap();
            }
            b.sync().unwrap();
            let (segs, runs) = b.file_census();
            assert!(segs > 1, "tiny rotate threshold must produce segments");
            assert_eq!(runs, 0);
        }
        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(256, usize::MAX)).unwrap();
        assert_eq!(sorted(recovered), all);
        assert_eq!(stats.records_loaded, 500);
        assert_eq!(stats.wal_tail_bytes_discarded, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_order_is_preserved_without_compaction() {
        let dir = temp_dir("segb-order");
        let all = items(0..200);
        {
            let (mut b, _, _) =
                SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, usize::MAX)).unwrap();
            b.append_batch(&all).unwrap();
            b.sync().unwrap();
        }
        let (_b, recovered, _) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, usize::MAX)).unwrap();
        // No compaction ran, so arrival order survives verbatim.
        assert_eq!(recovered, all);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreground_compaction_merges_to_one_sorted_run() {
        let dir = temp_dir("segb-compact");
        let all = items(0..300);
        let (mut b, _, _) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, 2)).unwrap();
        b.append_batch(&all).unwrap();
        b.sync().unwrap();
        let (segs_before, _) = b.file_census();
        assert!(segs_before >= 2);
        assert!(b.compact_now().unwrap());
        let (segs, runs) = b.file_census();
        assert_eq!((segs, runs), (0, 1));
        drop(b);

        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, 2)).unwrap();
        assert_eq!(stats.runs_loaded, 1);
        assert_eq!(sorted(recovered.clone()), all);
        // The run region is sorted by Persist::order.
        let run_len = recovered.len() - (stats.wal_records_replayed as usize);
        for w in recovered[..run_len].windows(2) {
            assert!(TestItem::order(&w[0], &w[1]) != std::cmp::Ordering::Greater);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_then_more_appends_then_compaction_again() {
        let dir = temp_dir("segb-recompact");
        let (mut b, _, _) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, 2)).unwrap();
        b.append_batch(&items(0..150)).unwrap();
        assert!(b.compact_now().unwrap());
        b.append_batch(&items(150..300)).unwrap();
        b.sync().unwrap();
        // Now: one run + fresh segments. Compact again merges run + segs.
        assert!(b.compact_now().unwrap());
        let (segs, runs) = b.file_census();
        assert_eq!((segs, runs), (0, 1));
        drop(b);
        let (_b, recovered, _) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, 2)).unwrap();
        assert_eq!(sorted(recovered), items(0..300));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_sealed_is_atomic_and_ordered() {
        let dir = temp_dir("segb-sealed");
        let (mut b, _, _) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1 << 20, usize::MAX)).unwrap();
        b.append_batch(&items(0..10)).unwrap();
        let gen = b.append_sealed(&items(10..20)).unwrap();
        assert!(gen > 0, "pending WAL content must rotate out first");
        b.append_batch(&items(20..30)).unwrap();
        b.sync().unwrap();
        drop(b);
        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1 << 20, usize::MAX)).unwrap();
        assert_eq!(recovered, items(0..30), "sealed batch keeps global order");
        assert!(stats.segments_loaded >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compaction_eventually_merges() {
        let dir = temp_dir("segb-bg");
        let opts = SegmentedOptions {
            rotate_bytes: 128,
            compact_min_files: 2,
            background_compaction: true,
        };
        let (mut b, _, _) = SegmentedBackend::<TestItem>::open(&dir, opts).unwrap();
        b.append_batch(&items(0..400)).unwrap();
        b.sync().unwrap();
        // Tiered compaction may legitimately leave a dominant run plus a
        // straggler or two; what must happen is that passes run and the
        // file count collapses well below the rotation count.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let (segs, runs) = b.file_census();
            if b.compaction_passes() >= 1 && segs + runs <= 3 && runs >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background compaction never converged: {segs} segs {runs} runs"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        drop(b);
        let (_b, recovered, _) = SegmentedBackend::<TestItem>::open(&dir, opts).unwrap();
        assert_eq!(sorted(recovered), items(0..400));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // ----------------------------------------------- crash scenarios --

    #[test]
    fn tiering_spares_a_dominant_run() {
        let dir = temp_dir("segb-tier");
        let (mut b, _, _) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, 2)).unwrap();
        // Build a large run…
        b.append_batch(&items(0..400)).unwrap();
        assert!(b.compact_now().unwrap());
        let (_, runs) = b.file_census();
        assert_eq!(runs, 1);
        let run_sizes = |dir: &std::path::Path| -> Vec<u64> {
            let mut sizes: Vec<u64> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|e| e == "run"))
                .map(|p| std::fs::metadata(p).unwrap().len())
                .collect();
            sizes.sort_unstable();
            sizes
        };
        let big_run_bytes = run_sizes(&dir)[0];
        // …then trickle in a little new data: the pass must merge only
        // the new segments, leaving the big run untouched.
        b.append_batch(&items(400..440)).unwrap();
        b.sync().unwrap();
        let (segs_before, _) = b.file_census();
        assert!(segs_before >= 2, "need at least two fresh segments");
        assert!(b.compact_now().unwrap());
        let (segs, runs) = b.file_census();
        assert_eq!(segs, 0, "fresh segments merged");
        assert_eq!(runs, 2, "dominant run left alone");
        assert_eq!(
            run_sizes(&dir).last().copied(),
            Some(big_run_bytes),
            "big run not rewritten"
        );
        drop(b);
        let (_b, recovered, _) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(128, 2)).unwrap();
        assert_eq!(sorted(recovered), items(0..440));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_interrupted_rotation_segment_and_wal_both_present() {
        let dir = temp_dir("segb-crash-rot");
        // Build a real store with one sealed segment, then recreate the
        // source WAL beside it — the state a kill between segment rename
        // and WAL unlink leaves behind.
        let all = items(0..50);
        {
            let (mut b, _, _) =
                SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1, usize::MAX)).unwrap();
            b.append_batch(&all).unwrap(); // rotates immediately (threshold 1)
        }
        // seg-0 exists; resurrect wal-0 with the same records.
        let mut w = WalWriter::<TestItem>::append_to(&wal_path(&dir, 0)).unwrap();
        for item in &all {
            w.append(item).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1, usize::MAX)).unwrap();
        assert_eq!(
            sorted(recovered),
            all,
            "completed seal + leftover WAL must not double-count"
        );
        assert!(stats.interrupted_rotations_completed >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_partial_segment_with_wal_falls_back_to_wal() {
        let dir = temp_dir("segb-crash-partial");
        let all = items(0..40);
        // WAL holds everything; the segment write died partway (simulated
        // as a truncated segment that *did* get renamed — harsher than
        // the .tmp convention ever produces).
        let mut w = WalWriter::<TestItem>::append_to(&wal_path(&dir, 0)).unwrap();
        for item in &all {
            w.append(item).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        write_segment(&seg_path(&dir, 0), &all).unwrap();
        let seg_bytes = std::fs::read(seg_path(&dir, 0)).unwrap();
        std::fs::write(seg_path(&dir, 0), &seg_bytes[..seg_bytes.len() / 3]).unwrap();

        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1 << 20, usize::MAX)).unwrap();
        assert_eq!(sorted(recovered), all, "WAL must cover the torn segment");
        assert_eq!(stats.partial_files_discarded, 1);
        assert_eq!(stats.wal_records_replayed, 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_interrupted_compaction_run_supersedes_inputs() {
        let dir = temp_dir("segb-crash-compact");
        let all = items(0..120);
        // Three sealed segments…
        write_segment(&seg_path(&dir, 0), &items(0..40)).unwrap();
        write_segment(&seg_path(&dir, 1), &items(40..80)).unwrap();
        write_segment(&seg_path(&dir, 2), &items(80..120)).unwrap();
        // …and a completed run over them whose inputs were never deleted.
        let mut merged = all.clone();
        merged.sort();
        write_segment(&run_path(&dir, 0, 2), &merged).unwrap();

        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1 << 20, usize::MAX)).unwrap();
        assert_eq!(recovered, merged, "run supersedes its inputs exactly once");
        assert_eq!(stats.superseded_files_removed, 3);
        assert_eq!(stats.runs_loaded, 1);
        assert!(!seg_path(&dir, 0).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_partial_run_keeps_inputs() {
        let dir = temp_dir("segb-crash-runtorn");
        write_segment(&seg_path(&dir, 0), &items(0..30)).unwrap();
        write_segment(&seg_path(&dir, 1), &items(30..60)).unwrap();
        let mut merged = items(0..60);
        merged.sort();
        write_segment(&run_path(&dir, 0, 1), &merged).unwrap();
        let run_bytes = std::fs::read(run_path(&dir, 0, 1)).unwrap();
        std::fs::write(run_path(&dir, 0, 1), &run_bytes[..run_bytes.len() / 2]).unwrap();

        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1 << 20, usize::MAX)).unwrap();
        assert_eq!(sorted(recovered), items(0..60));
        assert_eq!(stats.partial_files_discarded, 1);
        assert_eq!(stats.segments_loaded, 2);
        assert!(!run_path(&dir, 0, 1).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_tmp_files_are_deleted() {
        let dir = temp_dir("segb-crash-tmp");
        write_segment(&seg_path(&dir, 0), &items(0..10)).unwrap();
        std::fs::write(dir.join("seg-0000000001.seg.tmp"), b"half-written").unwrap();
        std::fs::write(dir.join("run-0000000000-0000000000.run.tmp"), b"junk").unwrap();
        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1 << 20, usize::MAX)).unwrap();
        assert_eq!(recovered, items(0..10));
        assert_eq!(stats.partial_files_discarded, 2);
        assert!(!dir.join("seg-0000000001.seg.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_nested_runs_keep_widest() {
        let dir = temp_dir("segb-crash-nested");
        let mut narrow = items(0..20);
        narrow.sort();
        write_segment(&run_path(&dir, 0, 1), &narrow).unwrap();
        let mut wide = items(0..40);
        wide.sort();
        write_segment(&run_path(&dir, 0, 3), &wide).unwrap();
        let (_b, recovered, stats) =
            SegmentedBackend::<TestItem>::open(&dir, opts_foreground(1 << 20, usize::MAX)).unwrap();
        assert_eq!(recovered, wide);
        assert_eq!(stats.superseded_files_removed, 1);
        assert_eq!(stats.runs_loaded, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
