//! Generic write-ahead log: checksummed, corruption-tolerant framing.
//!
//! Frame format, repeated to end of file:
//!
//! ```text
//! [0xD8 magic][len: u32 LE][payload: len bytes][checksum: u64 LE]
//! ```
//!
//! The checksum is FNV-1a/64 over the payload. Replay stops at the first
//! frame that is truncated, mis-magicked, or checksum-mismatched, and
//! reports how many tail bytes were discarded — a crash mid-append must
//! cost at most the final record.

use crate::{Persist, ReplayStats};
use siren_hash::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// First byte of every frame.
pub const FRAME_MAGIC: u8 = 0xD8;
/// Upper bound on a sane payload; anything larger is treated as corruption.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Encode one frame around `payload`. Public because the framing is a
/// shared seam: the WAL, sealed segments, and the network query
/// protocol (`siren-proto`) all speak exactly this frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 13);
    frame.push(FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame
}

/// Walk intact frames in `data` starting at `pos`, yielding payload
/// ranges. Returns `(payload_ranges, end_pos, clean)` where `clean`
/// means the walk consumed every byte from `pos` to the end (or up to
/// `stop_at` when the byte at a frame boundary matches it).
pub(crate) fn walk_frames(
    data: &[u8],
    mut pos: usize,
    stop_at: Option<u8>,
) -> (Vec<(usize, usize)>, usize, bool) {
    let mut payloads = Vec::new();
    loop {
        if pos == data.len() {
            return (payloads, pos, true);
        }
        if let Some(stop) = stop_at {
            if data[pos] == stop {
                return (payloads, pos, true);
            }
        }
        if data.len() - pos < 5 || data[pos] != FRAME_MAGIC {
            return (payloads, pos, false);
        }
        let len = u32::from_le_bytes(data[pos + 1..pos + 5].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return (payloads, pos, false);
        }
        let len = len as usize;
        if data.len() - pos < 5 + len + 8 {
            return (payloads, pos, false);
        }
        let start = pos + 5;
        let stored = u64::from_le_bytes(data[start + len..start + len + 8].try_into().unwrap());
        if fnv1a64(&data[start..start + len]) != stored {
            return (payloads, pos, false);
        }
        payloads.push((start, len));
        pos = start + len + 8;
    }
}

/// Appending writer.
#[derive(Debug)]
pub struct WalWriter<T: Persist> {
    out: BufWriter<File>,
    path: PathBuf,
    bytes: u64,
    _marker: PhantomData<fn(&T)>,
}

impl<T: Persist> WalWriter<T> {
    /// Open `path` for appending (creating it if needed).
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(Self {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            bytes,
            _marker: PhantomData,
        })
    }

    /// Append one item frame.
    pub fn append(&mut self, item: &T) -> std::io::Result<()> {
        let frame = encode_frame(&item.encode());
        self.bytes += frame.len() as u64;
        self.out.write_all(&frame)
    }

    /// Flush buffered frames to the OS.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    /// Flush and fsync to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_all()
    }

    /// Bytes written to this log so far (including pre-existing content).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Replaying reader.
#[derive(Debug)]
pub struct WalReader<T: Persist> {
    data: Vec<u8>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Persist> WalReader<T> {
    /// Read the whole log into memory (logs are bounded by the rotation
    /// threshold in segmented stores, and by campaign size otherwise).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(Self {
            data,
            _marker: PhantomData,
        })
    }

    /// Replay all intact frames; stop at the first corruption.
    pub fn replay(&self) -> std::io::Result<(Vec<T>, ReplayStats)> {
        let (ranges, end, clean) = walk_frames(&self.data, 0, None);
        let mut items = Vec::with_capacity(ranges.len());
        let mut corrupt_from = if clean { None } else { Some(end) };
        for &(start, len) in &ranges {
            match T::decode(&self.data[start..start + len]) {
                Some(item) => items.push(item),
                None => {
                    // A frame whose checksum holds but whose payload does
                    // not decode means the writer and reader disagree on
                    // the codec; treat it like corruption from the frame
                    // header on, exactly as the frame walk would.
                    corrupt_from = Some(corrupt_from.map_or(start - 5, |c| c.min(start - 5)));
                    break;
                }
            }
        }
        let stats = ReplayStats {
            records: items.len() as u64,
            corrupt_tail_bytes: corrupt_from.map_or(0, |c| (self.data.len() - c) as u64),
        };
        Ok((items, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testitem::{temp_dir, TestItem};

    #[test]
    fn write_replay_round_trip() {
        let dir = temp_dir("wal-rt");
        let path = dir.join("roundtrip.wal");
        {
            let mut w = WalWriter::<TestItem>::append_to(&path).unwrap();
            for i in 0..100 {
                w.append(&TestItem::new(i)).unwrap();
            }
            w.flush().unwrap();
            assert!(w.bytes_written() > 0);
        }
        let (items, stats) = WalReader::<TestItem>::open(&path)
            .unwrap()
            .replay()
            .unwrap();
        assert_eq!(items.len(), 100);
        assert_eq!(stats.records, 100);
        assert_eq!(stats.corrupt_tail_bytes, 0);
        assert_eq!(items[42], TestItem::new(42));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_stops_replay_at_prefix() {
        let dir = temp_dir("wal-flip");
        let path = dir.join("flip.wal");
        {
            let mut w = WalWriter::<TestItem>::append_to(&path).unwrap();
            for i in 0..10 {
                w.append(&TestItem::new(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let (items, stats) = WalReader::<TestItem>::open(&path)
            .unwrap()
            .replay()
            .unwrap();
        assert!(items.len() < 10);
        assert!(stats.corrupt_tail_bytes > 0);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(*item, TestItem::new(i as u64));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bytes_written_resumes_across_reopen() {
        let dir = temp_dir("wal-resume");
        let path = dir.join("resume.wal");
        let first = {
            let mut w = WalWriter::<TestItem>::append_to(&path).unwrap();
            w.append(&TestItem::new(1)).unwrap();
            w.flush().unwrap();
            w.bytes_written()
        };
        let w = WalWriter::<TestItem>::append_to(&path).unwrap();
        assert_eq!(w.bytes_written(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
