//! Crash-recovery property tests for the segmented store: kill the
//! process mid-rotation and mid-compaction at fuzzed offsets, reopen,
//! and assert no record is lost or duplicated beyond the torn tail of
//! the active WAL.

use proptest::prelude::*;
use siren_store::{
    read_segment, write_segment, Persist, SegmentedBackend, SegmentedOptions, StorageBackend,
};
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Item {
    seq: u64,
    body: String,
}

impl Persist for Item {
    fn encode(&self) -> Vec<u8> {
        let mut out = self.seq.to_le_bytes().to_vec();
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    fn decode(data: &[u8]) -> Option<Self> {
        let seq = u64::from_le_bytes(data.get(..8)?.try_into().ok()?);
        let len = u32::from_le_bytes(data.get(8..12)?.try_into().ok()?) as usize;
        if 12 + len != data.len() {
            return None;
        }
        Some(Self {
            seq,
            body: String::from_utf8(data.get(12..)?.to_vec()).ok()?,
        })
    }

    fn order(a: &Self, b: &Self) -> std::cmp::Ordering {
        a.cmp(b)
    }
}

fn item(seq: u64) -> Item {
    Item {
        seq,
        body: format!("payload-{seq}-{}", "x".repeat((seq % 23) as usize)),
    }
}

fn opts(rotate_bytes: u64) -> SegmentedOptions {
    SegmentedOptions {
        rotate_bytes,
        compact_min_files: 4,
        background_compaction: false, // compaction only when the test asks
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "siren-store-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Recovered sequence numbers, sorted.
fn recovered_seqs(dir: &Path, rotate_bytes: u64) -> (Vec<u64>, siren_store::RecoveryStats) {
    let (_b, recovered, stats) = SegmentedBackend::<Item>::open(dir, opts(rotate_bytes)).unwrap();
    let mut seqs: Vec<u64> = recovered.iter().map(|i| i.seq).collect();
    seqs.sort_unstable();
    (seqs, stats)
}

/// Find the single active WAL file in `dir`.
fn active_wal(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    wals.sort();
    assert_eq!(wals.len(), 1, "exactly one active WAL after clean ops");
    wals.pop().unwrap()
}

fn seg_files(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    segs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Torn active-WAL tail at an arbitrary byte offset: recovery yields
    /// exactly a prefix of the appended sequence — everything sealed into
    /// segments plus the intact prefix of the WAL, no loss, no
    /// duplicates, no reordering of the multiset.
    #[test]
    fn torn_wal_tail_recovers_durable_prefix(
        n in 1usize..400,
        rotate in 64u64..512,
        batch in 1usize..17,
        cut_frac in 0.0f64..1.0,
        compact_at_frac in 0.0f64..1.0,
    ) {
        let dir = fresh_dir("tail");
        let all: Vec<Item> = (0..n as u64).map(item).collect();
        let compact_at = ((n as f64) * compact_at_frac) as usize;
        {
            let (mut b, _, _) = SegmentedBackend::<Item>::open(&dir, opts(rotate)).unwrap();
            let mut pushed = 0;
            for chunk in all.chunks(batch) {
                b.append_batch(chunk).unwrap();
                pushed += chunk.len();
                if pushed >= compact_at && pushed - chunk.len() < compact_at {
                    let _ = b.compact_now().map(|_| ());
                }
            }
            b.sync().unwrap();
        }
        // Simulate the kill: tear the active WAL at an arbitrary offset.
        let wal = active_wal(&dir);
        let data = std::fs::read(&wal).unwrap();
        let sealed = n - count_wal_frames(&data);
        let cut = (data.len() as f64 * cut_frac) as usize;
        std::fs::write(&wal, &data[..cut]).unwrap();

        let (seqs, stats) = recovered_seqs(&dir, rotate);
        let m = seqs.len();
        // Exactly the first m records, in multiset terms.
        prop_assert_eq!(seqs, (0..m as u64).collect::<Vec<_>>());
        // Nothing sealed may be lost: only active-WAL tail records can go.
        prop_assert!(m >= sealed, "lost sealed records: {} < {}", m, sealed);
        prop_assert!(m <= n);
        if cut == data.len() {
            prop_assert_eq!(m, n);
            prop_assert_eq!(stats.wal_tail_bytes_discarded, 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Kill mid-rotation: the sealed segment is torn at an arbitrary
    /// offset while its source WAL still exists. Recovery must take the
    /// WAL's copy — nothing lost, nothing duplicated.
    #[test]
    fn torn_rotation_at_fuzzed_offset_is_lossless(
        n in 2usize..200,
        rotate in 64u64..256,
        seg_cut_frac in 0.0f64..1.0,
        resurrect_wal in any::<bool>(),
    ) {
        let dir = fresh_dir("rot");
        let all: Vec<Item> = (0..n as u64).map(item).collect();
        {
            let (mut b, _, _) = SegmentedBackend::<Item>::open(&dir, opts(rotate)).unwrap();
            b.append_batch(&all).unwrap();
            b.sync().unwrap();
        }
        let segs = seg_files(&dir);
        if segs.is_empty() { continue; }
        let victim = segs.last().unwrap();
        let gen: u64 = victim
            .file_stem().unwrap().to_str().unwrap()
            .strip_prefix("seg-").unwrap()
            .parse().unwrap();
        let victim_items = read_segment::<Item>(victim).unwrap().items();

        if resurrect_wal {
            // Mid-rotation state: WAL still present beside the segment.
            let wal = dir.join(format!("wal-{gen:010}.wal"));
            let mut w = siren_store::WalWriter::<Item>::append_to(&wal).unwrap();
            for it in &victim_items {
                w.append(it).unwrap();
            }
            w.sync().unwrap();
            drop(w);
            // And the segment itself may be torn at any offset.
            let seg_data = std::fs::read(victim).unwrap();
            let cut = (seg_data.len() as f64 * seg_cut_frac) as usize;
            std::fs::write(victim, &seg_data[..cut]).unwrap();
        }

        let (seqs, _) = recovered_seqs(&dir, rotate);
        prop_assert_eq!(seqs, (0..n as u64).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Kill mid-compaction: the output run is torn at an arbitrary offset
    /// (inputs intact) or complete (inputs possibly still present).
    /// Either way the recovered multiset is unchanged.
    #[test]
    fn torn_compaction_at_fuzzed_offset_is_lossless(
        n in 4usize..200,
        rotate in 64u64..256,
        run_cut_frac in 0.0f64..1.0,
        complete_run in any::<bool>(),
    ) {
        let dir = fresh_dir("cmp");
        let all: Vec<Item> = (0..n as u64).map(item).collect();
        {
            let (mut b, _, _) = SegmentedBackend::<Item>::open(&dir, opts(rotate)).unwrap();
            b.append_batch(&all).unwrap();
            b.sync().unwrap();
        }
        let segs = seg_files(&dir);
        if segs.len() < 2 { continue; }
        // Merge every segment into a run, as the compactor would…
        let mut merged: Vec<Item> = Vec::new();
        let mut gens: Vec<u64> = Vec::new();
        for seg in &segs {
            merged.extend(read_segment::<Item>(seg).unwrap().items());
            gens.push(
                seg.file_stem().unwrap().to_str().unwrap()
                    .strip_prefix("seg-").unwrap().parse().unwrap(),
            );
        }
        merged.sort();
        let run = dir.join(format!(
            "run-{:010}-{:010}.run",
            gens.first().unwrap(),
            gens.last().unwrap()
        ));
        write_segment(&run, &merged).unwrap();
        if complete_run {
            // Crash after rename, before (some) input deletion: drop an
            // arbitrary prefix of the inputs.
            let keep_from = (segs.len() as f64 * run_cut_frac) as usize;
            for seg in &segs[..keep_from.min(segs.len())] {
                std::fs::remove_file(seg).unwrap();
            }
        } else {
            // Crash mid-write (escaped .tmp): torn run, inputs intact.
            let run_data = std::fs::read(&run).unwrap();
            let cut = (run_data.len() as f64 * run_cut_frac) as usize;
            std::fs::write(&run, &run_data[..cut.min(run_data.len().saturating_sub(1))]).unwrap();
        }

        let (seqs, _) = recovered_seqs(&dir, rotate);
        prop_assert_eq!(seqs, (0..n as u64).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Count intact frames in raw WAL bytes (test-side mirror of replay).
fn count_wal_frames(data: &[u8]) -> usize {
    let mut pos = 0usize;
    let mut count = 0usize;
    while data.len() - pos >= 13 && data[pos] == 0xD8 {
        let len = u32::from_le_bytes(data[pos + 1..pos + 5].try_into().unwrap()) as usize;
        if data.len() - pos < 5 + len + 8 {
            break;
        }
        count += 1;
        pos += 5 + len + 8;
    }
    count
}

/// Clean reopen after a clean shutdown is exact — a sanity anchor for
/// the fuzzed cases above.
#[test]
fn clean_reopen_is_exact() {
    let dir = fresh_dir("clean");
    let all: Vec<Item> = (0..333).map(item).collect();
    {
        let (mut b, _, _) = SegmentedBackend::<Item>::open(&dir, opts(128)).unwrap();
        b.append_batch(&all).unwrap();
        b.sync().unwrap();
    }
    let (seqs, stats) = recovered_seqs(&dir, 128);
    assert_eq!(seqs, (0..333).collect::<Vec<_>>());
    assert_eq!(stats.wal_tail_bytes_discarded, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
