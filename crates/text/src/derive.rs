//! "Derived and filtered" shared-object labels (Figure 2 of the paper).
//!
//! The full list of shared objects loaded by a process is long and mostly
//! uninformative (`libc`, `libdl`, …). The paper therefore extracts only
//! "specific combinations of substrings of libraries": a fixed, ordered
//! list of informative substrings is matched against each library path,
//! and the hits are joined with `-` in list order, producing labels like
//! `hdf5-fortran-parallel-cray` or `rocfft-rocm-fft`.
//!
//! The ordering rule is inferred from the paper's own examples: every
//! multi-part label in Figure 2 lists its parts in the order the
//! substrings appear in the paper's extraction list (e.g. `rocfft` (18th)
//! before `rocm` (20th) before `fft` (23rd)).

/// The paper's exact extraction list (§4.3), in its published order.
pub const PAPER_LIBRARY_SUBSTRINGS: &[&str] = &[
    "libsci",
    "pthread",
    "pmi",
    "netcdf",
    "hdf5",
    "fortran",
    "parallel",
    "python",
    "fabric",
    "numa",
    "boost",
    "openacc",
    "amdgpu",
    "cuda",
    "drm",
    "rocsolver",
    "rocsparse",
    "rocfft",
    "MIOpen",
    "rocm",
    "gromacs",
    "blas",
    "fft",
    "torch",
    "quadmath",
    "craymath",
    "cray",
    "tykky",
    "climatedt",
    "amber",
    "spack",
    "yaml",
    "java",
    "siren",
];

/// Matches an ordered substring list against library paths and produces
/// combination labels.
#[derive(Debug, Clone)]
pub struct SubstringDeriver {
    substrings: Vec<String>,
}

impl Default for SubstringDeriver {
    fn default() -> Self {
        Self::paper()
    }
}

impl SubstringDeriver {
    /// Deriver using the paper's exact extraction list.
    pub fn paper() -> Self {
        Self::new(PAPER_LIBRARY_SUBSTRINGS)
    }

    /// Deriver with a custom ordered substring list.
    pub fn new(substrings: &[&str]) -> Self {
        Self {
            substrings: substrings.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Derive the combination label for one library path. `None` when no
    /// substring matches (the library is "uninformative" and filtered out).
    pub fn derive(&self, library_path: &str) -> Option<String> {
        let hits: Vec<&str> = self
            .substrings
            .iter()
            .filter(|sub| library_path.contains(sub.as_str()))
            .map(|s| s.as_str())
            .collect();
        if hits.is_empty() {
            None
        } else {
            Some(hits.join("-"))
        }
    }

    /// Derive labels for a whole list of loaded libraries, deduplicated,
    /// in first-appearance order (the per-process "derived and filtered
    /// shared objects" set of §4.3).
    pub fn derive_all(&self, library_paths: &[String]) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for path in library_paths {
            if let Some(label) = self.derive(path) {
                if seen.insert(label.clone()) {
                    out.push(label);
                }
            }
        }
        out
    }

    /// The configured substring list.
    pub fn substrings(&self) -> &[String] {
        &self.substrings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_reproduce() {
        let d = SubstringDeriver::paper();
        // The composite labels printed in Figure 2, from plausible paths.
        assert_eq!(
            d.derive("/opt/cray/pe/lib64/libhdf5_fortran_parallel_cray.so"),
            Some("hdf5-fortran-parallel-cray".into())
        );
        assert_eq!(
            d.derive("/opt/rocm/lib/librocfft.so.0"),
            Some("rocfft-rocm-fft".into())
        );
        assert_eq!(
            d.derive("/appl/climatedt/lib/libclimatedt_yaml.so"),
            Some("climatedt-yaml".into())
        );
        assert_eq!(
            d.derive("/usr/lib64/libpthread.so.0"),
            Some("pthread".into())
        );
        assert_eq!(d.derive("/opt/siren/lib/siren.so"), Some("siren".into()));
    }

    #[test]
    fn uninformative_libraries_filtered() {
        let d = SubstringDeriver::paper();
        assert_eq!(d.derive("/lib64/libc.so.6"), None);
        assert_eq!(d.derive("/lib64/libdl.so.2"), None);
        assert_eq!(d.derive("/lib64/ld-linux-x86-64.so.2"), None);
    }

    #[test]
    fn order_follows_extraction_list_not_path() {
        let d = SubstringDeriver::paper();
        // "rocm" appears before "fft" in this path, but the label must use
        // list order (fft is later in the list than rocm).
        assert_eq!(
            d.derive("/opt/rocm-5.2/lib/libfft_helper.so"),
            Some("rocm-fft".into())
        );
    }

    #[test]
    fn derive_all_dedups_and_preserves_order() {
        let d = SubstringDeriver::paper();
        let libs = vec![
            "/lib64/libc.so.6".to_string(),
            "/usr/lib64/libpthread.so.0".to_string(),
            "/opt/cray/lib/libmpi_cray.so".to_string(),
            "/usr/lib64/libpthread.so.0".to_string(), // duplicate
            "/opt/siren/siren.so".to_string(),
        ];
        assert_eq!(d.derive_all(&libs), vec!["pthread", "cray", "siren"]);
    }

    #[test]
    fn custom_list() {
        let d = SubstringDeriver::new(&["alpha", "beta"]);
        assert_eq!(d.derive("x/alpha/libbeta.so"), Some("alpha-beta".into()));
        assert_eq!(d.derive("x/gamma.so"), None);
        assert_eq!(d.substrings().len(), 2);
    }

    #[test]
    fn miopen_case_sensitive_as_in_paper() {
        let d = SubstringDeriver::paper();
        assert_eq!(
            d.derive("/opt/rocm/lib/libMIOpen.so"),
            Some("MIOpen-rocm".into())
        );
        // lowercase "miopen" does not match the paper's "MIOpen" entry.
        assert_eq!(d.derive("/x/libmiopen_other.so"), None);
    }
}
