//! # siren-text — pattern matching and text extraction substrates
//!
//! Three text facilities the SIREN analysis layer depends on:
//!
//! * [`regex`] — a small Thompson-NFA regular-expression engine. The paper
//!   derives software labels for user executables by "using regular
//!   expressions to match with known software names" (§4.3, citing the
//!   ARCHER2 methodology); this engine provides exactly the operator
//!   subset those rules need (literals, classes, `.` `*` `+` `?` `|`,
//!   groups, anchors, case-insensitive mode) with guaranteed-linear
//!   simulation (no backtracking blowup).
//! * [`strings`] — a printable-strings scanner equivalent to the Unix
//!   `strings` command. `siren.so` fuzzy-hashes "the printable strings
//!   found in the file" (`ST_H`/`Strings_H`); this module produces that
//!   byte stream.
//! * [`derive`] — the "derived and filtered" shared-object labeler behind
//!   Figure 2: matches a fixed, ordered list of informative substrings
//!   (`libsci`, `hdf5`, `rocm`, …) against a library path and joins the
//!   hits into a combination label such as `hdf5-fortran-parallel-cray`.

pub mod derive;
pub mod regex;
pub mod strings;

pub use derive::{SubstringDeriver, PAPER_LIBRARY_SUBSTRINGS};
pub use regex::{Regex, RegexError, RuleSet};
pub use strings::{printable_strings, printable_strings_joined, StringsConfig};
