//! A Thompson-NFA regular expression engine.
//!
//! Supported syntax: literals, `.`, escapes (`\.` `\\` `\d` `\w` `\s` and
//! their negations `\D` `\W` `\S`), character classes `[a-z0-9_]` and
//! negated classes `[^...]`, grouping `(...)`, alternation `|`,
//! repetition `*` `+` `?`, and anchors `^` `$`. Matching is byte-oriented
//! (ASCII); case-insensitive mode folds ASCII letters.
//!
//! The engine compiles to an NFA and simulates it with the standard
//! set-of-states algorithm: worst case O(pattern × text), never
//! exponential, which matters because label rules run over millions of
//! process records.

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Unbalanced parenthesis.
    UnbalancedParen,
    /// Unterminated character class.
    UnterminatedClass,
    /// Repetition operator with nothing to repeat.
    DanglingRepeat,
    /// Escape at end of pattern or unknown escape.
    BadEscape,
    /// Empty pattern component where an atom was required.
    UnexpectedToken(char),
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegexError::UnbalancedParen => write!(f, "unbalanced parenthesis"),
            RegexError::UnterminatedClass => write!(f, "unterminated character class"),
            RegexError::DanglingRepeat => write!(f, "repetition with nothing to repeat"),
            RegexError::BadEscape => write!(f, "bad escape sequence"),
            RegexError::UnexpectedToken(c) => write!(f, "unexpected token '{c}'"),
        }
    }
}

impl std::error::Error for RegexError {}

/// A set of byte values, stored as a 256-bit bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    const fn empty() -> Self {
        Self { bits: [0; 4] }
    }

    fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1 << (b & 63);
    }

    fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1 << (b & 63)) != 0
    }

    fn negate(&mut self) {
        for w in &mut self.bits {
            *w = !*w;
        }
    }

    /// Fold ASCII case: whichever case of a letter is present, add the other.
    fn fold_case(&mut self) {
        for c in b'a'..=b'z' {
            let upper = c - 32;
            if self.contains(c) {
                self.insert(upper);
            }
            if self.contains(upper) {
                self.insert(c);
            }
        }
    }
}

// ---------------------------------------------------------------- AST --

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Class(ByteSet),
    Concat(Box<Ast>, Box<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
    AnchorStart,
    AnchorEnd,
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse(&mut self) -> Result<Ast, RegexError> {
        let ast = self.alternation()?;
        if self.pos != self.input.len() {
            // A stray ')' is the only way to stop early.
            return Err(RegexError::UnbalancedParen);
        }
        Ok(ast)
    }

    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut lhs = self.concat()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let rhs = self.concat()?;
            lhs = Ast::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts: Vec<Ast> = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                _ => parts.push(self.repeat()?),
            }
        }
        Ok(parts
            .into_iter()
            .reduce(|a, b| Ast::Concat(Box::new(a), Box::new(b)))
            .unwrap_or(Ast::Empty))
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.atom()?;
        let repeatable = !matches!(atom, Ast::AnchorStart | Ast::AnchorEnd);
        match self.peek() {
            Some(b'*') => {
                self.bump();
                if !repeatable {
                    return Err(RegexError::DanglingRepeat);
                }
                Ok(Ast::Star(Box::new(atom)))
            }
            Some(b'+') => {
                self.bump();
                if !repeatable {
                    return Err(RegexError::DanglingRepeat);
                }
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some(b'?') => {
                self.bump();
                if !repeatable {
                    return Err(RegexError::DanglingRepeat);
                }
                Ok(Ast::Opt(Box::new(atom)))
            }
            _ => Ok(atom),
        }
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Ok(Ast::Empty),
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(RegexError::UnbalancedParen);
                }
                Ok(inner)
            }
            Some(b'[') => self.char_class(),
            Some(b'.') => {
                let mut set = ByteSet::empty();
                set.insert_range(0, 255);
                // '.' traditionally excludes newline.
                let mut nl = ByteSet::empty();
                nl.insert(b'\n');
                for (w, n) in set.bits.iter_mut().zip(nl.bits) {
                    *w &= !n;
                }
                Ok(Ast::Class(set))
            }
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'\\') => {
                let set = self.escape_set()?;
                Ok(Ast::Class(set))
            }
            Some(b'*') | Some(b'+') | Some(b'?') => Err(RegexError::DanglingRepeat),
            Some(b')') => Err(RegexError::UnbalancedParen),
            Some(c) => {
                let mut set = ByteSet::empty();
                set.insert(c);
                Ok(Ast::Class(set))
            }
        }
    }

    fn escape_set(&mut self) -> Result<ByteSet, RegexError> {
        let c = self.bump().ok_or(RegexError::BadEscape)?;
        let mut set = ByteSet::empty();
        match c {
            b'd' => set.insert_range(b'0', b'9'),
            b'D' => {
                set.insert_range(b'0', b'9');
                set.negate();
            }
            b'w' => {
                set.insert_range(b'a', b'z');
                set.insert_range(b'A', b'Z');
                set.insert_range(b'0', b'9');
                set.insert(b'_');
            }
            b'W' => {
                set.insert_range(b'a', b'z');
                set.insert_range(b'A', b'Z');
                set.insert_range(b'0', b'9');
                set.insert(b'_');
                set.negate();
            }
            b's' => {
                for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    set.insert(b);
                }
            }
            b'S' => {
                for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    set.insert(b);
                }
                set.negate();
            }
            b'n' => set.insert(b'\n'),
            b't' => set.insert(b'\t'),
            b'r' => set.insert(b'\r'),
            // Punctuation escapes: \. \\ \[ \( etc.
            c if c.is_ascii_punctuation() => set.insert(c),
            _ => return Err(RegexError::BadEscape),
        }
        Ok(set)
    }

    fn char_class(&mut self) -> Result<Ast, RegexError> {
        let mut set = ByteSet::empty();
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        // A ']' immediately after '[' (or '[^') is a literal.
        let mut first = true;
        loop {
            let c = self.bump().ok_or(RegexError::UnterminatedClass)?;
            if c == b']' && !first {
                break;
            }
            first = false;
            let lo = if c == b'\\' {
                let esc = self.escape_set()?;
                // Multi-byte escapes (\d, \w, \s) are unioned directly and
                // cannot form ranges.
                for b in 0..=255u8 {
                    if esc.contains(b) {
                        set.insert(b);
                    }
                }
                continue;
            } else {
                c
            };
            if self.peek() == Some(b'-') && self.input.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hi = self.bump().ok_or(RegexError::UnterminatedClass)?;
                if hi < lo {
                    return Err(RegexError::UnexpectedToken(hi as char));
                }
                set.insert_range(lo, hi);
            } else {
                set.insert(lo);
            }
        }
        if negated {
            set.negate();
        }
        Ok(Ast::Class(set))
    }
}

// ---------------------------------------------------------------- NFA --

#[derive(Debug, Clone)]
enum State {
    /// Consume one byte in the set, go to `next`.
    Class(ByteSet, usize),
    /// Fork to both targets without consuming.
    Split(usize, usize),
    /// Zero-width: only passable at text position 0.
    AnchorStart(usize),
    /// Zero-width: only passable at end of text.
    AnchorEnd(usize),
    /// Accept.
    Match,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    start: usize,
    pattern: String,
}

impl Regex {
    /// Compile a pattern (case-sensitive).
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        Self::compile(pattern, false)
    }

    /// Compile a pattern with ASCII case folding.
    pub fn new_case_insensitive(pattern: &str) -> Result<Self, RegexError> {
        Self::compile(pattern, true)
    }

    fn compile(pattern: &str, fold: bool) -> Result<Self, RegexError> {
        let ast = Parser::new(pattern).parse()?;
        let mut builder = Builder {
            states: Vec::new(),
            fold,
        };
        let frag_start = builder.build(&ast);
        let match_state = builder.push(State::Match);
        builder.patch(frag_start.out, match_state);
        Ok(Self {
            states: builder.states,
            start: frag_start.start,
            pattern: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Unanchored search: does any substring of `text` match?
    pub fn is_match(&self, text: &str) -> bool {
        let bytes = text.as_bytes();
        let n = bytes.len();
        let mut current: Vec<usize> = Vec::with_capacity(self.states.len());
        let mut on: Vec<bool> = vec![false; self.states.len()];

        #[allow(clippy::needless_range_loop)] // pos is a cursor, not just an index
        for pos in 0..=n {
            // Unanchored: a fresh attempt may start at every position.
            self.add_state(self.start, pos, n, &mut current, &mut on);
            if current
                .iter()
                .any(|&s| matches!(self.states[s], State::Match))
            {
                return true;
            }
            if pos == n {
                break;
            }
            let c = bytes[pos];
            let prev = std::mem::take(&mut current);
            on.iter_mut().for_each(|b| *b = false);
            for s in prev {
                if let State::Class(set, next) = &self.states[s] {
                    if set.contains(c) {
                        self.add_state(*next, pos + 1, n, &mut current, &mut on);
                    }
                }
            }
        }
        false
    }

    /// Epsilon-closure insertion with anchor awareness.
    fn add_state(&self, s: usize, pos: usize, n: usize, out: &mut Vec<usize>, on: &mut [bool]) {
        if on[s] {
            return;
        }
        on[s] = true;
        match &self.states[s] {
            State::Split(a, b) => {
                let (a, b) = (*a, *b);
                self.add_state(a, pos, n, out, on);
                self.add_state(b, pos, n, out, on);
            }
            State::AnchorStart(next) => {
                if pos == 0 {
                    let next = *next;
                    self.add_state(next, pos, n, out, on);
                }
            }
            State::AnchorEnd(next) => {
                if pos == n {
                    let next = *next;
                    self.add_state(next, pos, n, out, on);
                }
            }
            _ => out.push(s),
        }
    }
}

/// An NFA fragment under construction: entry state plus dangling exits.
struct Frag {
    start: usize,
    /// Indices of states whose `next` must be patched to the continuation.
    out: Vec<usize>,
}

struct Builder {
    states: Vec<State>,
    fold: bool,
}

impl Builder {
    fn push(&mut self, s: State) -> usize {
        self.states.push(s);
        self.states.len() - 1
    }

    fn patch(&mut self, outs: Vec<usize>, target: usize) {
        for idx in outs {
            match &mut self.states[idx] {
                State::Class(_, next) | State::AnchorStart(next) | State::AnchorEnd(next) => {
                    *next = target
                }
                State::Split(_, b) => *b = target,
                State::Match => unreachable!("match state is never patched"),
            }
        }
    }

    fn build(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                // A split whose first arm is immediately the continuation.
                let s = self.push(State::Split(usize::MAX, usize::MAX));
                // Both arms dangle to the continuation; use one.
                if let State::Split(a, _) = &mut self.states[s] {
                    *a = s; // placeholder self-loop avoided below
                }
                // Simpler: model empty as an epsilon via Split(next,next).
                Frag {
                    start: s,
                    out: vec![s],
                }
            }
            Ast::Class(set) => {
                let mut set = *set;
                if self.fold {
                    set.fold_case();
                }
                let s = self.push(State::Class(set, usize::MAX));
                Frag {
                    start: s,
                    out: vec![s],
                }
            }
            Ast::Concat(a, b) => {
                let fa = self.build(a);
                let fb = self.build(b);
                self.patch(fa.out, fb.start);
                Frag {
                    start: fa.start,
                    out: fb.out,
                }
            }
            Ast::Alt(a, b) => {
                let fa = self.build(a);
                let fb = self.build(b);
                let s = self.push(State::Split(fa.start, fb.start));
                let mut out = fa.out;
                out.extend(fb.out);
                Frag { start: s, out }
            }
            Ast::Star(inner) => {
                let fi = self.build(inner);
                let s = self.push(State::Split(fi.start, usize::MAX));
                self.patch(fi.out, s);
                Frag {
                    start: s,
                    out: vec![s],
                }
            }
            Ast::Plus(inner) => {
                let fi = self.build(inner);
                let s = self.push(State::Split(fi.start, usize::MAX));
                self.patch(fi.out, s);
                Frag {
                    start: fi.start,
                    out: vec![s],
                }
            }
            Ast::Opt(inner) => {
                let fi = self.build(inner);
                let s = self.push(State::Split(fi.start, usize::MAX));
                let mut out = fi.out;
                out.push(s);
                Frag { start: s, out }
            }
            Ast::AnchorStart => {
                let s = self.push(State::AnchorStart(usize::MAX));
                Frag {
                    start: s,
                    out: vec![s],
                }
            }
            Ast::AnchorEnd => {
                let s = self.push(State::AnchorEnd(usize::MAX));
                Frag {
                    start: s,
                    out: vec![s],
                }
            }
        }
    }
}

// -------------------------------------------------------------- rules --

/// An ordered list of `(label, pattern)` rules: the first matching rule
/// wins. This is the shape of the paper's software-label derivation table
/// (§4.3) — e.g. `("LAMMPS", "lmp|lammps")`.
#[derive(Debug, Clone)]
pub struct RuleSet {
    rules: Vec<(String, Regex)>,
}

impl RuleSet {
    /// Compile rules; each entry is `(label, pattern)`. Patterns are
    /// case-insensitive, matching how operators eyeball path names.
    pub fn new(rules: &[(&str, &str)]) -> Result<Self, RegexError> {
        let compiled = rules
            .iter()
            .map(|(label, pat)| Ok((label.to_string(), Regex::new_case_insensitive(pat)?)))
            .collect::<Result<Vec<_>, RegexError>>()?;
        Ok(Self { rules: compiled })
    }

    /// First label whose pattern matches `text`.
    pub fn first_match(&self, text: &str) -> Option<&str> {
        self.rules
            .iter()
            .find(|(_, re)| re.is_match(text))
            .map(|(label, _)| label.as_str())
    }

    /// All labels whose patterns match `text`, in rule order.
    pub fn all_matches(&self, text: &str) -> Vec<&str> {
        self.rules
            .iter()
            .filter(|(_, re)| re.is_match(text))
            .map(|(label, _)| label.as_str())
            .collect()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are present.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("", "anything")); // empty pattern matches everywhere
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a-c"));
        assert!(!m("a.c", "a\nc")); // dot excludes newline
        assert!(m("[abc]+", "zzbzz"));
        assert!(m("[a-f0-9]+", "deadbeef"));
        assert!(!m("[^a-z]", "abc"));
        assert!(m("[^a-z]", "abc1"));
        assert!(m("[]]", "]")); // literal ']' first in class
        assert!(m("[a-]", "-")); // trailing '-' is literal
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("lmp|lammps", "path/to/lmp_gpu"));
        assert!(m("lmp|lammps", "LAMMPS".to_lowercase().as_str()));
        assert!(m("gro(macs)?", "gromacs-2024"));
        assert!(m("gro(macs)?", "grompp"));
        assert!(m("(ab|cd)+ef", "abcdabef"));
        assert!(!m("(ab|cd)+ef", "ef"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("def$", "abcdef"));
        assert!(!m("def$", "defx"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\.out", "bin/a.out"));
        assert!(!m(r"a\.out", "axout"));
        assert!(m(r"\d+", "version 42"));
        assert!(!m(r"\d", "no digits"));
        assert!(m(r"\w+", "word_1"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"\S+", "x"));
        assert!(m(r"[\d]+", "123"));
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new_case_insensitive("lammps").unwrap();
        assert!(re.is_match("LAMMPS"));
        assert!(re.is_match("LaMmPs"));
        let re = Regex::new_case_insensitive("[a-z]+").unwrap();
        assert!(re.is_match("ABC"));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("abc)").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*abc").is_err());
        assert!(Regex::new("^*").is_err());
        assert!(Regex::new("\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // (a+)+$ against a long non-matching string: a backtracking engine
        // would take exponential time; the NFA simulation stays linear.
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(5000);
        let start = std::time::Instant::now();
        assert!(!re.is_match(&text));
        assert!(start.elapsed().as_secs() < 2, "simulation not linear");
    }

    #[test]
    fn ruleset_first_and_all() {
        let rules = RuleSet::new(&[
            ("LAMMPS", "lmp|lammps"),
            ("GROMACS", "gmx|gromacs"),
            ("icon", "icon"),
        ])
        .unwrap();
        assert_eq!(rules.first_match("/users/x/lmp_mpi"), Some("LAMMPS"));
        assert_eq!(rules.first_match("/appl/gromacs/bin/gmx"), Some("GROMACS"));
        assert_eq!(rules.first_match("/users/x/unknown_binary"), None);
        assert_eq!(rules.all_matches("/x/icon-gmx"), vec!["GROMACS", "icon"]);
        assert_eq!(rules.len(), 3);
        assert!(!rules.is_empty());
    }

    #[test]
    fn realistic_hpc_label_patterns() {
        let rules = RuleSet::new(&[
            ("LAMMPS", r"lmp|lammps"),
            ("GROMACS", r"gmx|gromacs"),
            ("miniconda", r"conda"),
            ("amber", r"amber|pmemd|sander"),
            ("gzip", r"gzip"),
            ("icon", r"icon"),
        ])
        .unwrap();
        assert_eq!(
            rules.first_match("/users/u9/lammps/build/lmp"),
            Some("LAMMPS")
        );
        assert_eq!(
            rules.first_match("/users/u3/miniconda3/bin/python3"),
            Some("miniconda")
        );
        assert_eq!(
            rules.first_match("/projappl/amber22/bin/pmemd.cuda"),
            Some("amber")
        );
        assert_eq!(
            rules.first_match("/users/u1/tools/gzip-1.12/gzip"),
            Some("gzip")
        );
        assert_eq!(rules.first_match("/scratch/a.out"), None);
    }
}
