//! Printable-string extraction, equivalent to the Unix `strings` command.
//!
//! `siren.so` computes `Strings_H`, "an SSDeep fuzzy hash of the printable
//! strings found in the file (similar to the output of the `strings`
//! command)". Extracting strings first and hashing those makes the fuzzy
//! hash robust to code-section churn: recompiling with different flags
//! rewrites machine code but leaves most literals, option names, and
//! format strings intact.

/// Configuration for the scanner.
#[derive(Debug, Clone, Copy)]
pub struct StringsConfig {
    /// Minimum run length to report (the `strings` default is 4).
    pub min_len: usize,
    /// Whether tab (0x09) counts as printable, as GNU strings does.
    pub include_tab: bool,
}

impl Default for StringsConfig {
    fn default() -> Self {
        Self {
            min_len: 4,
            include_tab: true,
        }
    }
}

#[inline]
fn is_printable(b: u8, cfg: &StringsConfig) -> bool {
    (0x20..=0x7E).contains(&b) || (cfg.include_tab && b == b'\t')
}

/// Extract printable strings of at least `cfg.min_len` bytes.
pub fn printable_strings(data: &[u8], cfg: &StringsConfig) -> Vec<String> {
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, &b) in data.iter().enumerate() {
        if is_printable(b, cfg) {
            if run_start.is_none() {
                run_start = Some(i);
            }
        } else if let Some(start) = run_start.take() {
            if i - start >= cfg.min_len {
                out.push(String::from_utf8_lossy(&data[start..i]).into_owned());
            }
        }
    }
    if let Some(start) = run_start {
        if data.len() - start >= cfg.min_len {
            out.push(String::from_utf8_lossy(&data[start..]).into_owned());
        }
    }
    out
}

/// Extract strings and join them with `\n` — the exact byte stream that is
/// fed to the fuzzy hasher for `Strings_H` (mirrors piping `strings` into
/// `ssdeep`).
pub fn printable_strings_joined(data: &[u8], cfg: &StringsConfig) -> String {
    printable_strings(data, cfg).join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_runs_of_min_length() {
        let data = b"\x00\x01hello\x00ab\x02world!\x03";
        let got = printable_strings(data, &StringsConfig::default());
        assert_eq!(got, vec!["hello", "world!"]);
    }

    #[test]
    fn run_at_end_of_buffer() {
        let data = b"\x00trailing";
        let got = printable_strings(data, &StringsConfig::default());
        assert_eq!(got, vec!["trailing"]);
    }

    #[test]
    fn empty_and_all_binary() {
        assert!(printable_strings(b"", &StringsConfig::default()).is_empty());
        assert!(printable_strings(&[0u8; 64], &StringsConfig::default()).is_empty());
    }

    #[test]
    fn min_len_respected() {
        let data = b"ab\x00abcd\x00abcdef";
        let cfg = StringsConfig {
            min_len: 4,
            include_tab: true,
        };
        assert_eq!(printable_strings(data, &cfg), vec!["abcd", "abcdef"]);
        let cfg2 = StringsConfig {
            min_len: 2,
            include_tab: true,
        };
        assert_eq!(printable_strings(data, &cfg2), vec!["ab", "abcd", "abcdef"]);
    }

    #[test]
    fn tab_handling() {
        let data = b"\x00with\ttab\x00";
        let with = StringsConfig {
            min_len: 4,
            include_tab: true,
        };
        let without = StringsConfig {
            min_len: 4,
            include_tab: false,
        };
        assert_eq!(printable_strings(data, &with), vec!["with\ttab"]);
        assert_eq!(printable_strings(data, &without), vec!["with"]);
    }

    #[test]
    fn joined_form() {
        let data = b"\x00one\x00\x00two2\x00";
        let cfg = StringsConfig {
            min_len: 3,
            include_tab: true,
        };
        assert_eq!(printable_strings_joined(data, &cfg), "one\ntwo2");
    }

    #[test]
    fn whole_printable_buffer_is_one_string() {
        let data = b"GCC: (SUSE Linux) 13.2.1";
        let got = printable_strings(data, &StringsConfig::default());
        assert_eq!(got, vec!["GCC: (SUSE Linux) 13.2.1"]);
    }
}
