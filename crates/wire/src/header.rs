//! Message header fields: process identity + information category.

/// LAYER field: distinguishes the Python interpreter process itself from
/// the Python script it runs (§3.1: "LAYER (SELF or SCRIPT to distinguish
/// Python interpreters from Python scripts)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Data about the process's own executable.
    SelfExe,
    /// Data about the Python input script run by this interpreter process.
    Script,
}

impl Layer {
    /// Wire encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::SelfExe => "SELF",
            Layer::Script => "SCRIPT",
        }
    }

    /// Wire decoding.
    #[allow(clippy::should_implement_trait)] // fallible, Option-returning
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "SELF" => Some(Layer::SelfExe),
            "SCRIPT" => Some(Layer::Script),
            _ => None,
        }
    }
}

/// TYPE field: which information category the content carries.
///
/// The list mirrors §3.1's data categories: file metadata, loaded shared
/// objects, loaded modules, compiler identification strings, memory map,
/// and the SSDeep hashes of the raw file / printable strings / global
/// symbols, plus the fuzzy hashes of the list-valued categories that the
/// paper computes "to provide a means of analysis and similarity even in
/// the case of partially missing information".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageType {
    /// Executable file metadata (inode, size, permissions, owner, times).
    Meta,
    /// Loaded modules (`LOADEDMODULES`).
    Modules,
    /// Loaded shared objects (`dl_iterate_phdr`).
    Objects,
    /// Compiler identification strings (`.comment`).
    Compilers,
    /// Memory-mapped regions (`/proc/self/maps`).
    Maps,
    /// SSDeep hash of the raw executable bytes (`FILE_H` / `FI_H`).
    FileHash,
    /// SSDeep hash of the printable strings (`Strings_H` / `ST_H`).
    StringsHash,
    /// SSDeep hash of the global symbol names (`Symbols_H` / `SY_H`).
    SymbolsHash,
    /// SSDeep hash of the module list (`MO_H`).
    ModulesHash,
    /// SSDeep hash of the shared-object list (`OBJECTS_H` / `OB_H`).
    ObjectsHash,
    /// SSDeep hash of the compiler list (`CO_H`).
    CompilersHash,
    /// SSDeep hash of the memory map (`MA_H`).
    MapsHash,
    /// SSDeep hash of the Python input script (`SCRIPT_H`).
    ScriptHash,
    /// Environment snapshot (Slurm variables etc.).
    Env,
    /// End-of-campaign sentinel: a sender's last datagram, letting the
    /// receiver drain deterministically instead of waiting out a quiet
    /// period. Carries `sender=<id>;sent=<n>` in its content; never
    /// stored in the database.
    End,
}

impl MessageType {
    /// All variants, for iteration in tests and reports.
    pub const ALL: [MessageType; 15] = [
        MessageType::Meta,
        MessageType::Modules,
        MessageType::Objects,
        MessageType::Compilers,
        MessageType::Maps,
        MessageType::FileHash,
        MessageType::StringsHash,
        MessageType::SymbolsHash,
        MessageType::ModulesHash,
        MessageType::ObjectsHash,
        MessageType::CompilersHash,
        MessageType::MapsHash,
        MessageType::ScriptHash,
        MessageType::Env,
        MessageType::End,
    ];

    /// Wire encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            MessageType::Meta => "META",
            MessageType::Modules => "MODULES",
            MessageType::Objects => "OBJECTS",
            MessageType::Compilers => "COMPILERS",
            MessageType::Maps => "MAPS",
            MessageType::FileHash => "FILE_H",
            MessageType::StringsHash => "STRINGS_H",
            MessageType::SymbolsHash => "SYMBOLS_H",
            MessageType::ModulesHash => "MODULES_H",
            MessageType::ObjectsHash => "OBJECTS_H",
            MessageType::CompilersHash => "COMPILERS_H",
            MessageType::MapsHash => "MAPS_H",
            MessageType::ScriptHash => "SCRIPT_H",
            MessageType::Env => "ENV",
            MessageType::End => "END",
        }
    }

    /// Wire decoding.
    #[allow(clippy::should_implement_trait)] // fallible, Option-returning
    pub fn from_str(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|t| t.as_str() == s)
    }
}

/// Header shared by every chunk of one logical message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MessageHeader {
    /// `SLURM_JOB_ID`.
    pub job_id: u64,
    /// `SLURM_STEP_ID`.
    pub step_id: u32,
    /// Process id.
    pub pid: u32,
    /// Hash of the executable path (XXH3-128 hex) — disambiguates `exec()`
    /// image replacement and PID reuse within the same 1-second timestamp.
    pub exe_hash: String,
    /// Node hostname.
    pub host: String,
    /// UNIX timestamp of collection (1-second granularity).
    pub time: u64,
    /// SELF or SCRIPT.
    pub layer: Layer,
    /// Information category.
    pub mtype: MessageType,
}

impl MessageHeader {
    /// The process identity part of the header (everything except the
    /// message type): all messages with the same [`ProcessKey`] describe
    /// the same process observation and are merged by consolidation.
    pub fn process_key(&self) -> ProcessKey {
        ProcessKey {
            job_id: self.job_id,
            step_id: self.step_id,
            pid: self.pid,
            exe_hash: self.exe_hash.clone(),
            host: self.host.clone(),
            time: self.time,
            layer: self.layer,
        }
    }
}

/// Identity of one process observation in the database.
///
/// §3.1 discusses why PID alone is insufficient: `exec()` replaces the
/// process image under the same PID within the same 1-second timestamp,
/// so the executable-path hash participates in the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessKey {
    /// `SLURM_JOB_ID`.
    pub job_id: u64,
    /// `SLURM_STEP_ID`.
    pub step_id: u32,
    /// Process id.
    pub pid: u32,
    /// Executable path hash.
    pub exe_hash: String,
    /// Node hostname.
    pub host: String,
    /// Collection timestamp.
    pub time: u64,
    /// SELF or SCRIPT.
    pub layer: Layer,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_round_trip() {
        for l in [Layer::SelfExe, Layer::Script] {
            assert_eq!(Layer::from_str(l.as_str()), Some(l));
        }
        assert_eq!(Layer::from_str("OTHER"), None);
    }

    #[test]
    fn message_type_round_trip_all() {
        for t in MessageType::ALL {
            assert_eq!(MessageType::from_str(t.as_str()), Some(t));
        }
        assert_eq!(MessageType::from_str("NOPE"), None);
    }

    #[test]
    fn type_strings_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in MessageType::ALL {
            assert!(seen.insert(t.as_str()));
        }
    }

    #[test]
    fn process_key_distinguishes_exec_replacement() {
        let mk = |hash: &str| MessageHeader {
            job_id: 1,
            step_id: 0,
            pid: 100,
            exe_hash: hash.into(),
            host: "nid1".into(),
            time: 42,
            layer: Layer::SelfExe,
            mtype: MessageType::Meta,
        };
        // Same PID + timestamp, different executable (bash exec'ing srun):
        // keys must differ.
        assert_ne!(mk("aaaa").process_key(), mk("bbbb").process_key());
        assert_eq!(mk("aaaa").process_key(), mk("aaaa").process_key());
    }
}
