//! # siren-wire — the SIREN UDP message protocol
//!
//! `siren.so` ships every collected data category as one or more UDP
//! datagrams. Each datagram carries a header that identifies the emitting
//! process and the information category, plus a content payload (§3.1,
//! "UDP Message Sender"):
//!
//! > The header fields are as follows: JOBID, STEPID, PID, HASH (a hash of
//! > the path to the executable), HOST, TIME, LAYER (SELF or SCRIPT),
//! > TYPE (e.g. MODULES, OBJECTS, COMPILERS), and CONTENT.
//!
//! Long payloads (module lists, shared-object lists) are split into
//! chunks, each sent as its own datagram; a `CHUNK=i/n` field allows
//! reassembly. Because transport is fire-and-forget UDP, any chunk may be
//! lost, duplicated, or reordered — the [`Reassembler`] tolerates all
//! three, and consolidation reports which records ended up with missing
//! fields (the paper measured ~0.02 % of jobs affected).
//!
//! The wire format is a single ASCII line:
//!
//! ```text
//! SIREN1|JOBID=17|STEPID=0|PID=4242|HASH=<32 hex>|HOST=nid001|TIME=1733900000|LAYER=SELF|TYPE=OBJECTS|CHUNK=0/2|CONTENT=/lib64/libc.so.6;...
//! ```
//!
//! `CONTENT=` is always the final field and consumes the remainder of the
//! datagram verbatim, so payloads may contain any byte except the
//! delimiters inside the *header* region.

pub mod header;
pub mod reassemble;
pub mod shard;

pub use header::{Layer, MessageHeader, MessageType, ProcessKey};
pub use reassemble::{CompleteMessage, Reassembler};
pub use shard::ShardRouter;

/// Protocol magic for v1 datagrams.
pub const MAGIC: &str = "SIREN1";

/// Default maximum datagram payload in bytes. Conservative: fits a single
/// Ethernet frame with IPv6 + UDP headers to avoid IP fragmentation (the
/// failure mode chunking exists to prevent).
pub const DEFAULT_MAX_DATAGRAM: usize = 1200;

/// Errors from datagram decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Datagram does not start with the protocol magic.
    BadMagic,
    /// A required header field is missing.
    MissingField(&'static str),
    /// A header field failed to parse.
    BadField(&'static str),
    /// Datagram is not valid UTF-8 in its header region.
    NotUtf8,
    /// Chunk index ≥ chunk total, or total is zero.
    BadChunking,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "missing SIREN1 magic"),
            WireError::MissingField(name) => write!(f, "missing header field {name}"),
            WireError::BadField(name) => write!(f, "malformed header field {name}"),
            WireError::NotUtf8 => write!(f, "datagram is not UTF-8"),
            WireError::BadChunking => write!(f, "invalid chunk index/total"),
        }
    }
}

impl std::error::Error for WireError {}

/// One datagram: header + chunk coordinates + content fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Identifying header (shared by all chunks of one logical message).
    pub header: MessageHeader,
    /// Zero-based chunk index.
    pub chunk_index: u16,
    /// Total number of chunks for this logical message.
    pub chunk_total: u16,
    /// This chunk's slice of the content.
    pub content: String,
}

impl Message {
    /// Encode to datagram bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::with_capacity(128 + self.content.len());
        out.push_str(MAGIC);
        out.push_str(&format!(
            "|JOBID={}|STEPID={}|PID={}|HASH={}|HOST={}|TIME={}|LAYER={}|TYPE={}|CHUNK={}/{}|CONTENT=",
            self.header.job_id,
            self.header.step_id,
            self.header.pid,
            self.header.exe_hash,
            self.header.host,
            self.header.time,
            self.header.layer.as_str(),
            self.header.mtype.as_str(),
            self.chunk_index,
            self.chunk_total,
        ));
        out.push_str(&self.content);
        out.into_bytes()
    }

    /// Decode datagram bytes.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let text = std::str::from_utf8(data).map_err(|_| WireError::NotUtf8)?;
        let rest = text.strip_prefix(MAGIC).ok_or(WireError::BadMagic)?;
        let rest = rest.strip_prefix('|').ok_or(WireError::BadMagic)?;

        // CONTENT= terminates the header region; everything after is payload.
        let content_marker = "CONTENT=";
        let content_pos = rest
            .find(content_marker)
            .ok_or(WireError::MissingField("CONTENT"))?;
        let (head, payload) = rest.split_at(content_pos);
        let content = &payload[content_marker.len()..];

        let mut job_id = None;
        let mut step_id = None;
        let mut pid = None;
        let mut hash = None;
        let mut host = None;
        let mut time = None;
        let mut layer = None;
        let mut mtype = None;
        let mut chunk = None;

        for field in head.split('|').filter(|f| !f.is_empty()) {
            let (key, value) = field.split_once('=').ok_or(WireError::BadField("header"))?;
            match key {
                "JOBID" => job_id = Some(value.parse().map_err(|_| WireError::BadField("JOBID"))?),
                "STEPID" => {
                    step_id = Some(value.parse().map_err(|_| WireError::BadField("STEPID"))?)
                }
                "PID" => pid = Some(value.parse().map_err(|_| WireError::BadField("PID"))?),
                "HASH" => hash = Some(value.to_string()),
                "HOST" => host = Some(value.to_string()),
                "TIME" => time = Some(value.parse().map_err(|_| WireError::BadField("TIME"))?),
                "LAYER" => {
                    layer = Some(Layer::from_str(value).ok_or(WireError::BadField("LAYER"))?)
                }
                "TYPE" => {
                    mtype = Some(MessageType::from_str(value).ok_or(WireError::BadField("TYPE"))?)
                }
                "CHUNK" => {
                    let (i, n) = value.split_once('/').ok_or(WireError::BadField("CHUNK"))?;
                    let i: u16 = i.parse().map_err(|_| WireError::BadField("CHUNK"))?;
                    let n: u16 = n.parse().map_err(|_| WireError::BadField("CHUNK"))?;
                    chunk = Some((i, n));
                }
                _ => {} // forward compatibility: ignore unknown fields
            }
        }

        let (chunk_index, chunk_total) = chunk.ok_or(WireError::MissingField("CHUNK"))?;
        if chunk_total == 0 || chunk_index >= chunk_total {
            return Err(WireError::BadChunking);
        }

        Ok(Message {
            header: MessageHeader {
                job_id: job_id.ok_or(WireError::MissingField("JOBID"))?,
                step_id: step_id.ok_or(WireError::MissingField("STEPID"))?,
                pid: pid.ok_or(WireError::MissingField("PID"))?,
                exe_hash: hash.ok_or(WireError::MissingField("HASH"))?,
                host: host.ok_or(WireError::MissingField("HOST"))?,
                time: time.ok_or(WireError::MissingField("TIME"))?,
                layer: layer.ok_or(WireError::MissingField("LAYER"))?,
                mtype: mtype.ok_or(WireError::MissingField("TYPE"))?,
            },
            chunk_index,
            chunk_total,
            content: content.to_string(),
        })
    }
}

/// Build the end-of-campaign sentinel a sender emits as its final
/// datagram. The receiver uses it to stop draining deterministically;
/// it is never stored in the database.
pub fn sentinel_message(sender_id: u32, datagrams_sent: u64) -> Message {
    sentinel_message_with_epoch(sender_id, datagrams_sent, None)
}

/// As [`sentinel_message`], optionally tagged with the campaign **epoch**
/// the sender believes it is closing. Long-running service deployments
/// ingest campaigns as consecutive epochs; the tag lets the daemon detect
/// a sender/daemon epoch disagreement instead of silently folding one
/// campaign's close into another.
pub fn sentinel_message_with_epoch(
    sender_id: u32,
    datagrams_sent: u64,
    epoch: Option<u64>,
) -> Message {
    let mut content = format!("sender={sender_id};sent={datagrams_sent}");
    if let Some(epoch) = epoch {
        content.push_str(&format!(";epoch={epoch}"));
    }
    Message {
        header: MessageHeader {
            job_id: 0,
            step_id: 0,
            pid: sender_id,
            exe_hash: String::new(),
            host: "sentinel".to_string(),
            time: 0,
            layer: Layer::SelfExe,
            mtype: MessageType::End,
        },
        chunk_index: 0,
        chunk_total: 1,
        content,
    }
}

/// Parse the epoch tag of a sentinel, if present. `None` for untagged
/// sentinels and non-sentinel messages alike.
pub fn parse_sentinel_epoch(msg: &Message) -> Option<u64> {
    if msg.header.mtype != MessageType::End {
        return None;
    }
    msg.content
        .split(';')
        .find_map(|field| match field.split_once('=') {
            Some(("epoch", v)) => v.parse().ok(),
            _ => None,
        })
}

/// Parse a sentinel produced by [`sentinel_message`], returning
/// `(sender_id, datagrams_sent)`. `None` for non-sentinel messages.
pub fn parse_sentinel(msg: &Message) -> Option<(u32, u64)> {
    if msg.header.mtype != MessageType::End {
        return None;
    }
    let mut sender = None;
    let mut sent = None;
    for field in msg.content.split(';') {
        match field.split_once('=') {
            Some(("sender", v)) => sender = v.parse().ok(),
            Some(("sent", v)) => sent = v.parse().ok(),
            _ => {}
        }
    }
    Some((sender?, sent?))
}

/// Split `content` into as many [`Message`]s as needed so each encoded
/// datagram stays within `max_datagram` bytes. Always produces at least
/// one message (possibly with empty content).
pub fn chunk_message(header: &MessageHeader, content: &str, max_datagram: usize) -> Vec<Message> {
    // Worst-case header length for this message (chunk field at max width).
    let probe = Message {
        header: header.clone(),
        chunk_index: u16::MAX - 1,
        chunk_total: u16::MAX,
        content: String::new(),
    };
    let header_len = probe.encode().len();
    let budget = max_datagram.saturating_sub(header_len).max(16);

    // Split on UTF-8 boundaries.
    let mut pieces: Vec<&str> = Vec::new();
    let mut rest = content;
    while rest.len() > budget {
        let mut cut = budget;
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        let (piece, tail) = rest.split_at(cut);
        pieces.push(piece);
        rest = tail;
    }
    pieces.push(rest);

    let total = pieces.len() as u16;
    pieces
        .into_iter()
        .enumerate()
        .map(|(i, piece)| Message {
            header: header.clone(),
            chunk_index: i as u16,
            chunk_total: total,
            content: piece.to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> MessageHeader {
        MessageHeader {
            job_id: 8_812_345,
            step_id: 0,
            pid: 41_932,
            exe_hash: "0123456789abcdef0123456789abcdef".into(),
            host: "nid001234".into(),
            time: 1_733_900_000,
            layer: Layer::SelfExe,
            mtype: MessageType::Objects,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let msg = Message {
            header: header(),
            chunk_index: 2,
            chunk_total: 5,
            content: "/lib64/libc.so.6;/lib64/libm.so.6".into(),
        };
        let decoded = Message::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn content_may_contain_delimiters() {
        let msg = Message {
            header: header(),
            chunk_index: 0,
            chunk_total: 1,
            content: "weird|content=with|delims".into(),
        };
        let decoded = Message::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.content, "weird|content=with|delims");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            Message::decode(b"nonsense").unwrap_err(),
            WireError::BadMagic
        );
        assert_eq!(
            Message::decode(&[0xFF, 0xFE]).unwrap_err(),
            WireError::NotUtf8
        );
        assert_eq!(
            Message::decode(b"SIREN1|JOBID=1|CONTENT=x").unwrap_err(),
            WireError::MissingField("CHUNK")
        );
        assert_eq!(
            Message::decode(b"SIREN1|JOBID=zz|CHUNK=0/1|CONTENT=").unwrap_err(),
            WireError::BadField("JOBID")
        );
        let full = "SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=OBJECTS|CHUNK=3/2|CONTENT=";
        assert_eq!(
            Message::decode(full.as_bytes()).unwrap_err(),
            WireError::BadChunking
        );
    }

    #[test]
    fn unknown_fields_ignored() {
        let raw = "SIREN1|JOBID=1|STEPID=0|PID=2|HASH=h|HOST=n|TIME=9|FUTURE=stuff|LAYER=SELF|TYPE=MODULES|CHUNK=0/1|CONTENT=m1";
        let msg = Message::decode(raw.as_bytes()).unwrap();
        assert_eq!(msg.header.mtype, MessageType::Modules);
        assert_eq!(msg.content, "m1");
    }

    #[test]
    fn chunking_respects_datagram_limit() {
        let content = "x".repeat(10_000);
        let msgs = chunk_message(&header(), &content, 512);
        assert!(msgs.len() > 1);
        for m in &msgs {
            assert!(
                m.encode().len() <= 512,
                "datagram too large: {}",
                m.encode().len()
            );
        }
        // Reassembly by concatenation reproduces the content.
        let glued: String = msgs.iter().map(|m| m.content.as_str()).collect();
        assert_eq!(glued, content);
        // Indices are sequential and totals consistent.
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.chunk_index as usize, i);
            assert_eq!(m.chunk_total as usize, msgs.len());
        }
    }

    #[test]
    fn epoch_tagged_sentinel_round_trip() {
        let s = sentinel_message_with_epoch(2, 99, Some(41));
        let decoded = Message::decode(&s.encode()).unwrap();
        assert_eq!(parse_sentinel(&decoded), Some((2, 99)));
        assert_eq!(parse_sentinel_epoch(&decoded), Some(41));
        // Untagged sentinels and payload messages have no epoch.
        assert_eq!(parse_sentinel_epoch(&sentinel_message(2, 99)), None);
        let payload = Message {
            header: MessageHeader {
                job_id: 1,
                step_id: 0,
                pid: 1,
                exe_hash: "h".into(),
                host: "n".into(),
                time: 1,
                layer: Layer::SelfExe,
                mtype: MessageType::Meta,
            },
            chunk_index: 0,
            chunk_total: 1,
            content: "epoch=7".into(),
        };
        assert_eq!(parse_sentinel_epoch(&payload), None);
    }

    #[test]
    fn sentinel_round_trip() {
        let s = sentinel_message(3, 12_345);
        let decoded = Message::decode(&s.encode()).unwrap();
        assert_eq!(parse_sentinel(&decoded), Some((3, 12_345)));
        // Ordinary messages are not sentinels.
        let msg = Message {
            header: header(),
            chunk_index: 0,
            chunk_total: 1,
            content: "".into(),
        };
        assert_eq!(parse_sentinel(&msg), None);
        // A malformed END payload parses to None rather than panicking.
        let mut evil = s;
        evil.content = "sender=;sent=zz".into();
        assert_eq!(parse_sentinel(&evil), None);
    }

    #[test]
    fn empty_content_yields_single_chunk() {
        let msgs = chunk_message(&header(), "", 1200);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].chunk_total, 1);
        assert_eq!(msgs[0].content, "");
    }

    #[test]
    fn chunking_never_splits_multibyte_chars() {
        let content = "ü".repeat(2_000); // 2 bytes each
        let msgs = chunk_message(&header(), &content, 300);
        let glued: String = msgs.iter().map(|m| m.content.as_str()).collect();
        assert_eq!(glued, content);
        for m in &msgs {
            // Round-trips cleanly, proving boundaries are valid UTF-8.
            assert_eq!(Message::decode(&m.encode()).unwrap().content, m.content);
        }
    }

    #[test]
    fn tiny_limit_still_makes_progress() {
        let msgs = chunk_message(&header(), &"y".repeat(100), 1);
        let glued: String = msgs.iter().map(|m| m.content.as_str()).collect();
        assert_eq!(glued.len(), 100);
    }
}
