//! Chunk reassembly: datagrams → complete logical messages.
//!
//! Transport is fire-and-forget UDP, so the reassembler must tolerate
//! loss (a message never completes), duplication (a chunk arrives twice),
//! and reordering (chunks arrive in any order). Completed messages are
//! emitted exactly once; incomplete ones can be drained at shutdown with
//! an explicit account of what is missing — this is the data behind the
//! paper's "~0.02 % of jobs have missing fields" observation and our
//! loss-injection experiment.

use crate::header::{MessageHeader, MessageType, ProcessKey};
use crate::Message;
use std::collections::HashMap;

/// A fully reassembled logical message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteMessage {
    /// The shared header.
    pub header: MessageHeader,
    /// Concatenated content of all chunks, in order.
    pub content: String,
}

/// Key identifying one logical message: process identity + message type.
type MessageKey = (ProcessKey, MessageType);

#[derive(Debug)]
struct Partial {
    header: MessageHeader,
    total: u16,
    received: Vec<Option<String>>,
    filled: u16,
}

/// Stateful reassembler.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: HashMap<MessageKey, Partial>,
    /// Count of duplicate chunks observed (telemetry).
    pub duplicates: u64,
    /// Count of chunks whose total disagreed with earlier chunks of the
    /// same message (protocol violation; chunk dropped).
    pub inconsistent: u64,
}

/// Description of a message that never completed, produced by
/// [`Reassembler::drain_incomplete`].
#[derive(Debug, Clone)]
pub struct IncompleteMessage {
    /// The shared header.
    pub header: MessageHeader,
    /// Chunks expected.
    pub expected: u16,
    /// Chunks actually received.
    pub received: u16,
    /// Best-effort content with missing chunks elided (the paper's
    /// post-processing keeps partial lists — the category-level fuzzy
    /// hashes exist precisely to still allow similarity analysis "in the
    /// case of partially missing information").
    pub partial_content: String,
}

impl Reassembler {
    /// Fresh reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one datagram's decoded message. Returns the completed logical
    /// message if this chunk was the last missing piece.
    pub fn push(&mut self, msg: Message) -> Option<CompleteMessage> {
        let key: MessageKey = (msg.header.process_key(), msg.header.mtype);

        let entry = self.partial.entry(key.clone()).or_insert_with(|| Partial {
            header: msg.header.clone(),
            total: msg.chunk_total,
            received: vec![None; msg.chunk_total as usize],
            filled: 0,
        });

        if entry.total != msg.chunk_total {
            self.inconsistent += 1;
            return None;
        }
        let slot = &mut entry.received[msg.chunk_index as usize];
        if slot.is_some() {
            self.duplicates += 1;
            return None;
        }
        *slot = Some(msg.content);
        entry.filled += 1;

        if entry.filled == entry.total {
            let done = self.partial.remove(&key).expect("entry just inserted");
            let content: String = done
                .received
                .into_iter()
                .map(|c| c.expect("all chunks filled"))
                .collect();
            Some(CompleteMessage {
                header: done.header,
                content,
            })
        } else {
            None
        }
    }

    /// Number of messages still waiting for chunks.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Drain all incomplete messages (e.g. at end of a collection run),
    /// reporting what was lost. The reassembler is left empty.
    pub fn drain_incomplete(&mut self) -> Vec<IncompleteMessage> {
        let mut out: Vec<IncompleteMessage> = self
            .partial
            .drain()
            .map(|(_, p)| IncompleteMessage {
                header: p.header,
                expected: p.total,
                received: p.filled,
                partial_content: p
                    .received
                    .into_iter()
                    .flatten()
                    .collect::<Vec<_>>()
                    .join(""),
            })
            .collect();
        // Deterministic order for reports.
        out.sort_by(|a, b| {
            (a.header.job_id, a.header.pid, a.header.mtype.as_str()).cmp(&(
                b.header.job_id,
                b.header.pid,
                b.header.mtype.as_str(),
            ))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk_message;
    use crate::header::Layer;

    fn header(mtype: MessageType) -> MessageHeader {
        MessageHeader {
            job_id: 7,
            step_id: 1,
            pid: 999,
            exe_hash: "ff00".into(),
            host: "nid42".into(),
            time: 1_000_000,
            layer: Layer::SelfExe,
            mtype,
        }
    }

    #[test]
    fn single_chunk_completes_immediately() {
        let mut r = Reassembler::new();
        let msgs = chunk_message(&header(MessageType::Modules), "mod1;mod2", 1200);
        assert_eq!(msgs.len(), 1);
        let done = r.push(msgs[0].clone()).unwrap();
        assert_eq!(done.content, "mod1;mod2");
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut r = Reassembler::new();
        let content = "x".repeat(3000);
        let mut msgs = chunk_message(&header(MessageType::Objects), &content, 600);
        assert!(msgs.len() >= 3);
        msgs.reverse();
        let mut completed = None;
        for m in msgs {
            if let Some(c) = r.push(m) {
                completed = Some(c);
            }
        }
        assert_eq!(completed.unwrap().content, content);
    }

    #[test]
    fn duplicates_counted_and_harmless() {
        let mut r = Reassembler::new();
        let content = "y".repeat(2000);
        let msgs = chunk_message(&header(MessageType::Maps), &content, 600);
        let mut done = None;
        for m in &msgs {
            let _ = r.push(m.clone());
            if let Some(c) = r.push(m.clone()) {
                done = Some(c);
            }
        }
        // Each second push of an already-stored chunk is a duplicate —
        // except pushes after completion, which recreate a partial entry.
        assert!(r.duplicates >= msgs.len() as u64 - 1);
        // Completion happened on a first-push of the last chunk, so `done`
        // stayed None on the duplicate path or was produced on first path.
        let _ = done;
    }

    #[test]
    fn interleaved_messages_do_not_mix() {
        let mut r = Reassembler::new();
        let a = chunk_message(&header(MessageType::Modules), &"a".repeat(2000), 600);
        let b = chunk_message(&header(MessageType::Objects), &"b".repeat(2000), 600);
        let mut results = Vec::new();
        for (x, y) in a.iter().zip(b.iter()) {
            if let Some(c) = r.push(x.clone()) {
                results.push(c);
            }
            if let Some(c) = r.push(y.clone()) {
                results.push(c);
            }
        }
        assert_eq!(results.len(), 2);
        for c in results {
            match c.header.mtype {
                MessageType::Modules => assert!(c.content.bytes().all(|x| x == b'a')),
                MessageType::Objects => assert!(c.content.bytes().all(|x| x == b'b')),
                other => panic!("unexpected type {other:?}"),
            }
        }
    }

    #[test]
    fn lost_chunk_reported_incomplete() {
        let mut r = Reassembler::new();
        let msgs = chunk_message(&header(MessageType::Objects), &"z".repeat(3000), 600);
        assert!(msgs.len() >= 3);
        // Drop the middle chunk.
        for (i, m) in msgs.iter().enumerate() {
            if i != 1 {
                assert!(r.push(m.clone()).is_none());
            }
        }
        assert_eq!(r.pending(), 1);
        let incomplete = r.drain_incomplete();
        assert_eq!(incomplete.len(), 1);
        assert_eq!(incomplete[0].expected as usize, msgs.len());
        assert_eq!(incomplete[0].received as usize, msgs.len() - 1);
        assert!(incomplete[0].partial_content.len() < 3000);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn inconsistent_totals_rejected() {
        let mut r = Reassembler::new();
        let msgs = chunk_message(&header(MessageType::Maps), &"q".repeat(2000), 600);
        r.push(msgs[0].clone());
        let mut evil = msgs[1].clone();
        evil.chunk_total += 1;
        assert!(r.push(evil).is_none());
        assert_eq!(r.inconsistent, 1);
    }
}
