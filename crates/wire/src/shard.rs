//! Job-keyed shard routing.

use crate::{Message, MessageType, MAGIC};
use siren_hash::xxh64;

/// Maps job ids to shard indexes by hashing, so load spreads evenly even
/// when job ids are dense sequential ranges (as Slurm hands them out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Router over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard for a job id.
    ///
    /// Everything consolidation must see together shares a job id: all
    /// chunks of a message, all messages of a process, and the SCRIPT
    /// rows that merge into their interpreter parent. Routing on the job
    /// id alone therefore keeps shard outputs semantically closed.
    pub fn shard_of_job(&self, job_id: u64) -> usize {
        (xxh64(&job_id.to_le_bytes(), 0) % self.shards as u64) as usize
    }

    /// Shard for a decoded message. End-of-campaign sentinels return
    /// `None`: they are control traffic addressed to every shard.
    pub fn shard_of(&self, msg: &Message) -> Option<usize> {
        if msg.header.mtype == MessageType::End {
            return None;
        }
        Some(self.shard_of_job(msg.header.job_id))
    }

    /// Shard for an encoded datagram, without a full decode: scans the
    /// header region for `JOBID=` and parses its digits. `None` when the
    /// datagram is not a well-formed SIREN payload datagram (including
    /// sentinels, which carry `TYPE=END`).
    ///
    /// This is the sender-side fast path: a multi-socket UDP sender must
    /// pick a destination socket per datagram at line rate.
    pub fn shard_of_datagram(&self, datagram: &[u8]) -> Option<usize> {
        let text = std::str::from_utf8(datagram).ok()?;
        let rest = text.strip_prefix(MAGIC)?;
        // Only search the header region; CONTENT may contain anything.
        let header_end = rest.find("CONTENT=").unwrap_or(rest.len());
        let head = &rest[..header_end];
        if head.contains("|TYPE=END") {
            return None;
        }
        let jobid_at = head.find("|JOBID=")? + "|JOBID=".len();
        let digits: &str = &head[jobid_at..];
        let end = digits.find('|').unwrap_or(digits.len());
        let job_id: u64 = digits[..end].parse().ok()?;
        Some(self.shard_of_job(job_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sentinel_message, Layer, MessageHeader};

    fn msg(job_id: u64) -> Message {
        Message {
            header: MessageHeader {
                job_id,
                step_id: 0,
                pid: 7,
                exe_hash: "ab".into(),
                host: "nid1".into(),
                time: 1,
                layer: Layer::SelfExe,
                mtype: MessageType::Objects,
            },
            chunk_index: 0,
            chunk_total: 1,
            content: "JOBID=999|weird".into(),
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(8);
        for job in 0..1000u64 {
            let s = r.shard_of_job(job);
            assert!(s < 8);
            assert_eq!(s, r.shard_of_job(job));
        }
    }

    #[test]
    fn dense_job_ranges_spread_evenly() {
        let r = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for job in 8_000_000..8_004_000u64 {
            counts[r.shard_of_job(job)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced shard: {counts:?}");
        }
    }

    #[test]
    fn datagram_routing_matches_message_routing() {
        let r = ShardRouter::new(8);
        for job in [0u64, 1, 17, 8_812_345, u64::MAX] {
            let m = msg(job);
            // CONTENT containing "JOBID=" must not confuse the router.
            assert_eq!(r.shard_of_datagram(&m.encode()), Some(r.shard_of_job(job)));
            assert_eq!(r.shard_of(&m), Some(r.shard_of_job(job)));
        }
    }

    #[test]
    fn sentinels_and_garbage_route_nowhere() {
        let r = ShardRouter::new(4);
        let s = sentinel_message(1, 10);
        assert_eq!(r.shard_of(&s), None);
        assert_eq!(r.shard_of_datagram(&s.encode()), None);
        assert_eq!(r.shard_of_datagram(b"not siren"), None);
        assert_eq!(r.shard_of_datagram(&[0xFF, 0xFE]), None);
    }

    #[test]
    fn single_shard_router_accepts_everything() {
        let r = ShardRouter::new(0); // clamped to 1
        assert_eq!(r.shards(), 1);
        assert_eq!(r.shard_of_job(123), 0);
    }
}
