//! Fleet forensics: support-team workflows on collected data.
//!
//! Three §4 scenarios a user-support team runs against the SIREN
//! database:
//!
//! 1. **Deviating system tools** (Table 4): a user reports that `bash`
//!    "behaves strangely" — find the library-set variants and the odd one
//!    out.
//! 2. **Toolchain census** (Table 6 / Fig. 4): which compiler toolchains
//!    are actually in use, including novel ones (Rust, conda GCC)?
//! 3. **Python supply-chain watch** (Fig. 3): which Python packages are
//!    imported on the system, by how many users — the input to a
//!    slopsquatting / CVE cross-reference.
//!
//! ```text
//! cargo run --release --example fleet_forensics
//! ```

use siren_repro::analysis;
use siren_repro::cluster::python::PACKAGE_CATALOG;
use siren_repro::{Deployment, DeploymentConfig};

fn main() {
    let mut cfg = DeploymentConfig::default();
    cfg.campaign.scale = 0.01;
    let result = Deployment::new(cfg).run();
    let records = &result.records;

    // --- 1. deviating bash variants --------------------------------
    let variants = analysis::library_variant_table(records, "/usr/bin/bash");
    println!(
        "{}",
        analysis::system_usage::render_library_variants(&variants)
    );
    if let Some(rare) = variants.last() {
        println!(
            "→ rarest bash environment ({} processes) deviates via: {}\n",
            rare.processes,
            rare.deviating.join(", ")
        );
    }

    // --- 2. toolchain census ----------------------------------------
    let compilers = analysis::compiler_table(records);
    println!("{}", analysis::compilers::render_compilers(&compilers));
    let novel: Vec<&str> = compilers
        .iter()
        .flat_map(|r| r.combo.iter())
        .filter(|c| c.contains("rustc") || c.contains("conda"))
        .map(|s| s.as_str())
        .collect();
    println!("→ novel toolchains detected: {:?}\n", novel);

    // --- 3. python package census ------------------------------------
    let pkgs = analysis::package_stats(records, PACKAGE_CATALOG);
    println!("{}", analysis::python_stats::render_packages(&pkgs));
    let widely_used: Vec<&str> = pkgs
        .iter()
        .filter(|p| p.unique_users >= 2)
        .map(|p| p.package.as_str())
        .collect();
    println!(
        "→ packages imported by ≥2 users (audit first): {:?}",
        widely_used
    );
}
