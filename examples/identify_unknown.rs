//! Identify an unknown application — the paper's headline use case
//! (Table 7).
//!
//! A user runs a binary with the nondescript name `a.out` from a scratch
//! directory. Name-based labeling fails; this example shows how SIREN's
//! six fuzzy-hash dimensions (modules, compilers, objects, raw file,
//! strings, symbols) identify it as an `icon` climate-model build, and
//! then verifies the identification independently from the shared
//! libraries it loads (§4.3, "Verifying Functionality of Scientific
//! Software").
//!
//! ```text
//! cargo run --release --example identify_unknown
//! ```

use siren_repro::analysis::{self, Labeler};
use siren_repro::text::SubstringDeriver;
use siren_repro::{find_unknown_baseline, report, Deployment, DeploymentConfig};

fn main() {
    let mut cfg = DeploymentConfig::default();
    cfg.campaign.scale = 0.01;
    let result = Deployment::new(cfg).run();
    let records = &result.records;

    // 1. Name-based labeling leaves an UNKNOWN residue (Table 5).
    let labels = analysis::label_table(records, &Labeler::default());
    println!("{}", analysis::labels::render_labels(&labels));
    let unknown = labels
        .iter()
        .find(|r| r.label == "UNKNOWN")
        .expect("UNKNOWN present");
    println!(
        "→ {} processes across {} binaries could not be labeled by name.\n",
        unknown.process_count, unknown.unique_file_h
    );

    // 2. Similarity search against all known instances (Table 7).
    let baseline = find_unknown_baseline(records).expect("an a.out record exists");
    println!(
        "baseline: {} (job {}, host {})\n",
        baseline.exe_path().unwrap_or("?"),
        baseline.key.job_id,
        baseline.key.host
    );
    println!("{}", report::similarity_report(records));

    let rows = analysis::similarity_search_table(records, baseline, &Labeler::default(), 10);
    let best = rows.first().expect("similarity search found candidates");
    println!(
        "→ best match: {} with average similarity {:.1}\n",
        best.label, best.avg
    );

    // 3. Verify the identification from the loaded libraries: climate
    // indicators (climatedt, hdf5, netcdf, fortran) should be present.
    let matched = &records[best.record_index];
    if let Some(objects) = &matched.objects {
        let derived = SubstringDeriver::paper().derive_all(objects);
        println!(
            "derived libraries of the matched instance: {}",
            derived.join(", ")
        );
        let climate = derived.iter().any(|d| d.contains("climatedt"));
        println!(
            "→ climate-domain libraries {}: the unknown binary is a climate/weather code.",
            if climate { "CONFIRMED" } else { "not found" }
        );
    }
}
