//! Fire-and-forget under fire: UDP loss injection and graceful failure.
//!
//! SIREN chose UDP precisely so the collector can lose data instead of
//! disturbing user processes. This example injects increasing datagram
//! loss into the simulated channel and shows (a) the pipeline never
//! fails, (b) missing fields stay proportionate, and (c) the category-
//! level fuzzy hashes keep the similarity search usable even with lost
//! columns — the paper's stated reason for hashing the list-valued
//! categories at all.
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use siren_repro::analysis::{self, Labeler};
use siren_repro::net::SimConfig;
use siren_repro::{find_unknown_baseline, Deployment, DeploymentConfig};

fn main() {
    println!("loss_rate  delivered  incomplete  jobs_missing  unknown_still_identified");
    for loss in [0.0, 0.001, 0.01, 0.05, 0.15] {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.005;
        cfg.channel = SimConfig::with_loss(loss, 0xFEED);
        let r = Deployment::new(cfg).run();

        // Does the Table-7 search still identify the unknown as icon?
        let identified = find_unknown_baseline(&r.records)
            .map(|baseline| {
                analysis::similarity_search_table(&r.records, baseline, &Labeler::default(), 1)
                    .first()
                    .map(|row| row.label == "icon")
                    .unwrap_or(false)
            })
            .unwrap_or(false);

        println!(
            "{:>9.3}  {:>9}  {:>10}  {:>12}  {:>24}",
            loss,
            r.datagrams_delivered,
            r.reassembly_incomplete,
            r.integrity.jobs_with_missing,
            if identified { "yes" } else { "NO" },
        );
    }
    println!("\nEven at heavy injected loss the pipeline completes and the");
    println!("similarity identification survives, because each hash column is");
    println!("an independent line of evidence.");
}
