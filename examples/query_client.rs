//! Demonstrates the versioned TCP query protocol end to end: a daemon
//! ingests one small campaign as an epoch, serves the query protocol on
//! a loopback port, and a typed [`SirenClient`] asks it for status,
//! per-job records, library usage, and fuzzy nearest neighbors —
//! exactly what an analyst-side tool would do against a production
//! deployment. The second half switches to the protocol-v2 surface:
//! composable [`QueryPlan`]s answered as lazy [`RowStream`]s with
//! server-side pagination, and it closes by stamping a paged plan with
//! a trace id and rendering the span tree the server recorded for it.
//!
//! ```bash
//! cargo run --release --example query_client
//! ```

use siren_repro::cluster::{Campaign, CampaignConfig};
use siren_repro::collector::{Collector, PolicyMode};
use siren_repro::consolidate::{record_order, ProcessRecord};
use siren_repro::federation::{FleetConfig, Router, RouterDaemon};
use siren_repro::net::{SimChannel, SimConfig};
use siren_repro::proto::{
    Order, Projection, QueryPlan, RetryPolicy, Selection, SirenClient, TraceFilter, TraceId,
};
use siren_repro::report::trace_report;
use siren_repro::service::{ServiceConfig, SirenDaemon};
use siren_repro::wire::ShardRouter;
use std::time::Duration;

fn main() {
    let data_dir = std::env::temp_dir().join(format!("siren-query-client-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // A daemon with the TCP query server enabled on an ephemeral port.
    let cfg = ServiceConfig {
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        shards: 2,
        ..ServiceConfig::at(&data_dir)
    };
    let (mut daemon, _) = SirenDaemon::open(cfg).expect("open daemon");
    let addr = daemon.query_addr().expect("query server up");
    println!("daemon serving queries on {addr}");

    // Ingest one small campaign as epoch 0 (collector → messages →
    // daemon; the sentinel burst closes and commits the epoch).
    let (tx, rx) = SimChannel::create(SimConfig::perfect());
    let mut collector = Collector::new(&tx, PolicyMode::Selective).with_epoch(0);
    Campaign::new(CampaignConfig {
        scale: 0.002,
        ..CampaignConfig::default()
    })
    .run(|ctx| collector.observe(&ctx));
    collector.end_campaign();
    for msg in rx.drain_messages().0 {
        daemon.push(msg).expect("ingest");
    }

    // Everything below talks to the daemon over TCP only. Connect
    // under the default retry policy: a daemon still binding its port
    // (or restarting) costs a few jittered backoffs, not a failure.
    let mut client =
        SirenClient::connect_with_retry(addr, &RetryPolicy::default()).expect("connect");
    println!("negotiated protocol v{}", client.negotiated_version());

    let status = client.status().expect("status");
    println!(
        "status: {} records across epochs {:?} (tag mismatches {}, quiet fallbacks {})",
        status.records,
        status.committed_epochs,
        status.epoch_tag_mismatches,
        status.quiet_period_fallbacks,
    );

    // Per-job drill-down on whichever job the first record belongs to.
    let snapshot = daemon.snapshot();
    let probe = &snapshot.get(0).expect("campaign produced records").record;
    let rows = client.by_job(probe.key.job_id).expect("by_job");
    println!(
        "job {}: {} records, first on host {}",
        probe.key.job_id,
        rows.len(),
        rows[0].record.key.host,
    );

    // Library usage restricted to that record's host.
    let usage = client
        .library_usage(Selection::all().host(probe.key.host.clone()))
        .expect("library_usage");
    println!("top libraries on {}:", probe.key.host);
    for row in usage.iter().take(5) {
        println!(
            "  {:<40} {:>5} processes on {:>3} hosts",
            row.library, row.processes, row.hosts
        );
    }

    // Fuzzy nearest neighbors of a real FILE_H from the campaign.
    if let Some(hash) = snapshot.iter().find_map(|er| er.record.file_hash.clone()) {
        let neighbors = client.neighbors(&hash, 5, 50).expect("neighbors");
        println!("nearest neighbors of {hash}:");
        for n in &neighbors {
            println!(
                "  score {:>3}  epoch {}  {}",
                n.score,
                n.epoch,
                n.record.exe_path().unwrap_or("?"),
            );
        }
    }

    // ---- Protocol v2: composable plans, streamed answers. ----

    // A record stream over an epoch slice, newest first, keys only,
    // delivered in bounded batches through a server-side cursor. The
    // RowStream fetches pages lazily as the iterator advances, and the
    // cursor pins the snapshot it opened on, so the answer is immune
    // to epochs committing mid-pagination.
    let plan = QueryPlan::records()
        .filter(Selection::all().job(probe.key.job_id).epochs(0, 0))
        .order_by(Order::TimeDesc)
        .project(Projection::Keys)
        .limit(8)
        .batch_rows(4)
        .page_rows(4);
    let stream = client.query(plan).expect("open plan stream");
    println!("v2 plan stream (job {}, newest first):", probe.key.job_id);
    for row in stream {
        let row = row.expect("stream row").into_record().expect("record row");
        println!(
            "  t={} epoch {} host {}",
            row.record.key.time, row.epoch, row.record.key.host
        );
    }

    // The per-user usage table as a v2 plan — a question v1 could not
    // ask without a wire break.
    let usage_rows = client
        .query(QueryPlan::usage_table().limit(5))
        .expect("usage plan")
        .collect_rows()
        .expect("usage rows");
    println!("top users (v2 usage-table plan):");
    for row in usage_rows {
        let row = row.into_usage().expect("usage row");
        println!(
            "  {:<10} {:>4} jobs, {:>5} system / {:>4} user / {:>4} python processes",
            row.user, row.jobs, row.system_procs, row.user_procs, row.python_procs
        );
    }

    // The daemon's whole metric registry in one v2 request: ingest and
    // commit spans, query latency histograms, cursor-table counters,
    // and the slow-query ring — everything the queries above recorded.
    let metrics = client.metrics().expect("metrics");
    println!(
        "telemetry: {} requests served, commit p50 {}us, exec p50 {}us",
        metrics.counter("query.requests"),
        metrics
            .histogram("service.commit_ns")
            .map(|h| h.p50() / 1_000)
            .unwrap_or(0),
        metrics
            .histogram("query.exec_ns")
            .map(|h| h.p50() / 1_000)
            .unwrap_or(0),
    );
    print!("{}", metrics.render_text());

    // ---- End-to-end tracing. ----
    //
    // Stamp a paged plan with a trace id of our choosing; the server
    // threads it through queue wait, execution, and every batch
    // serialization, and the parked cursor rejoins each later fetch to
    // the same tree. Then pull the reassembled tree back over the wire
    // and render it as an indented span outline.
    let trace = TraceId::generate();
    let traced_plan = QueryPlan::records()
        .filter(Selection::all().job(probe.key.job_id))
        .batch_rows(4)
        .page_rows(4);
    let traced_rows = client
        .query_traced(traced_plan, trace)
        .expect("traced plan")
        .collect_rows()
        .expect("traced rows");
    println!(
        "traced plan returned {} rows under trace {trace}",
        traced_rows.len()
    );

    let trees = client
        .traces(TraceFilter::recent().trace(trace))
        .expect("traces");
    print!("{}", trace_report(&trees));

    // Server-side work leaves its own trees: the epoch ingested above
    // recorded recv → reassembly → wal_insert → commit → publish.
    let ingest_trees = client
        .traces(TraceFilter::recent().stage("epoch.ingest").limit(1))
        .expect("ingest traces");
    print!("{}", trace_report(&ingest_trees));

    // ---- Protocol v3: stream multiplexing on one connection. ----
    //
    // A v3 connection tags every frame with a stream id, so one socket
    // carries any number of interleaved cursor streams. Convert a
    // fresh connection into a MuxClient, open two plans at once, and
    // pull rows from each in turn — both are mid-flight on the same
    // TCP stream, with the server round-robining batches between them.
    // (set_accept_compressed(true) would additionally let the server
    // LZ-compress large reply frames.)
    let mux = SirenClient::connect_with_retry(addr, &RetryPolicy::default())
        .expect("connect v3")
        .into_mux()
        .expect("multiplexed handle");
    let mut records = mux
        .query(
            QueryPlan::records()
                .filter(Selection::all().job(probe.key.job_id))
                .batch_rows(4)
                .page_rows(4),
        )
        .expect("open records stream");
    let mut usage = mux
        .query(QueryPlan::usage_table().limit(5))
        .expect("open usage stream");
    println!(
        "v3 multiplex: records on stream {}, usage on stream {} (one connection)",
        records.stream_id(),
        usage.stream_id()
    );
    let (mut record_rows, mut usage_rows) = (0usize, 0usize);
    loop {
        let next_record = records.next().transpose().expect("records row");
        let next_usage = usage.next().transpose().expect("usage row");
        record_rows += usize::from(next_record.is_some());
        usage_rows += usize::from(next_usage.is_some());
        if records.is_done() && usage.is_done() {
            break;
        }
    }
    println!("  drained {record_rows} record rows and {usage_rows} usage rows interleaved");

    // ---- Federation: one router port over a sharded fleet. ----
    //
    // Split the same corpus into two job-hash shards, each held by its
    // own daemon, and put a federated router in front. The router
    // scatter-gathers every plan across the shards, k-way-merges the
    // ordered streams, and serves the ordinary wire protocol — so the
    // unmodified SirenClient below cannot tell it from a single daemon
    // holding the union.
    let shard_router = ShardRouter::new(2);
    let mut union: Vec<ProcessRecord> = snapshot.iter().map(|er| er.record.clone()).collect();
    union.sort_by(record_order);
    let mut shard_daemons: Vec<SirenDaemon> = (0..2u32)
        .map(|k| {
            let dir = data_dir.join(format!("shard-{k}"));
            let cfg = ServiceConfig {
                query_addr: Some("127.0.0.1:0".parse().unwrap()),
                shards: 2,
                ..ServiceConfig::at(&dir)
            };
            let (mut d, _) = SirenDaemon::open(cfg).expect("open shard daemon");
            let subset: Vec<ProcessRecord> = union
                .iter()
                .filter(|r| shard_router.shard_of_job(r.key.job_id) == k as usize)
                .cloned()
                .collect();
            d.import_epoch(subset).expect("import shard subset");
            d
        })
        .collect();
    let fleet = FleetConfig {
        retry: RetryPolicy {
            max_retries: 1,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter: false,
        },
        ..FleetConfig::sharded(shard_daemons.iter().map(|d| d.query_addr().unwrap()))
    };
    let router = RouterDaemon::spawn(Router::new(fleet).expect("fleet config"), "127.0.0.1:0")
        .expect("spawn router");
    let mut fed_client = SirenClient::connect(router.local_addr()).expect("connect router");
    let fed_status = fed_client.status().expect("fleet status");
    println!(
        "federated fleet on {}: {} records across 2 shards, epochs {:?}",
        router.local_addr(),
        fed_status.records,
        fed_status.committed_epochs,
    );
    let merged = fed_client
        .query(QueryPlan::records().order_by(Order::TimeAsc).limit(6))
        .expect("federated plan")
        .collect_rows()
        .expect("merged rows");
    println!("first {} rows of the time-ordered merge:", merged.len());
    for row in &merged {
        let row = row.clone().into_record().expect("record row");
        println!(
            "  t={} job {} host {}",
            row.record.key.time, row.record.key.job_id, row.record.key.host
        );
    }

    // Kill one shard: the same plan now degrades to a typed partial
    // result — the surviving shard's rows plus a warning naming the
    // missing backend, never a silently wrong answer.
    drop(shard_daemons.pop());
    let (partial, warnings) = fed_client
        .query(QueryPlan::records())
        .expect("degraded plan")
        .collect_rows_warned()
        .expect("partial rows");
    println!(
        "with shard-1 dark: {} rows and warning \"{}\"",
        partial.len(),
        warnings.first().map(|w| w.to_string()).unwrap_or_default(),
    );
    router.shutdown();

    drop(daemon);
    let _ = std::fs::remove_dir_all(&data_dir);
}
