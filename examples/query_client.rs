//! Demonstrates the versioned TCP query protocol end to end: a daemon
//! ingests one small campaign as an epoch, serves the query protocol on
//! a loopback port, and a typed [`SirenClient`] asks it for status,
//! per-job records, library usage, and fuzzy nearest neighbors —
//! exactly what an analyst-side tool would do against a production
//! deployment.
//!
//! ```bash
//! cargo run --release --example query_client
//! ```

use siren_repro::cluster::{Campaign, CampaignConfig};
use siren_repro::collector::{Collector, PolicyMode};
use siren_repro::net::{SimChannel, SimConfig};
use siren_repro::proto::{Selection, SirenClient};
use siren_repro::service::{ServiceConfig, SirenDaemon};

fn main() {
    let data_dir = std::env::temp_dir().join(format!("siren-query-client-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // A daemon with the TCP query server enabled on an ephemeral port.
    let cfg = ServiceConfig {
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        shards: 2,
        ..ServiceConfig::at(&data_dir)
    };
    let (mut daemon, _) = SirenDaemon::open(cfg).expect("open daemon");
    let addr = daemon.query_addr().expect("query server up");
    println!("daemon serving queries on {addr}");

    // Ingest one small campaign as epoch 0 (collector → messages →
    // daemon; the sentinel burst closes and commits the epoch).
    let (tx, rx) = SimChannel::create(SimConfig::perfect());
    let mut collector = Collector::new(&tx, PolicyMode::Selective).with_epoch(0);
    Campaign::new(CampaignConfig {
        scale: 0.002,
        ..CampaignConfig::default()
    })
    .run(|ctx| collector.observe(&ctx));
    collector.end_campaign();
    for msg in rx.drain_messages().0 {
        daemon.push(msg).expect("ingest");
    }

    // Everything below talks to the daemon over TCP only.
    let mut client = SirenClient::connect(addr).expect("connect");
    println!("negotiated protocol v{}", client.negotiated_version());

    let status = client.status().expect("status");
    println!(
        "status: {} records across epochs {:?} (tag mismatches {}, quiet fallbacks {})",
        status.records,
        status.committed_epochs,
        status.epoch_tag_mismatches,
        status.quiet_period_fallbacks,
    );

    // Per-job drill-down on whichever job the first record belongs to.
    let snapshot = daemon.snapshot();
    let probe = &snapshot.get(0).expect("campaign produced records").record;
    let rows = client.by_job(probe.key.job_id).expect("by_job");
    println!(
        "job {}: {} records, first on host {}",
        probe.key.job_id,
        rows.len(),
        rows[0].record.key.host,
    );

    // Library usage restricted to that record's host.
    let usage = client
        .library_usage(Selection::all().host(probe.key.host.clone()))
        .expect("library_usage");
    println!("top libraries on {}:", probe.key.host);
    for row in usage.iter().take(5) {
        println!(
            "  {:<40} {:>5} processes on {:>3} hosts",
            row.library, row.processes, row.hosts
        );
    }

    // Fuzzy nearest neighbors of a real FILE_H from the campaign.
    if let Some(hash) = snapshot.iter().find_map(|er| er.record.file_hash.clone()) {
        let neighbors = client.neighbors(&hash, 5, 50).expect("neighbors");
        println!("nearest neighbors of {hash}:");
        for n in &neighbors {
            println!(
                "  score {:>3}  epoch {}  {}",
                n.score,
                n.epoch,
                n.record.exe_path().unwrap_or("?"),
            );
        }
    }

    drop(daemon);
    let _ = std::fs::remove_dir_all(&data_dir);
}
