//! Quickstart: run a small opt-in campaign end to end and print the
//! paper's analysis tables.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use siren_repro::{report, Deployment, DeploymentConfig};

fn main() {
    // A 1/200-scale campaign: ~12k processes through the full pipeline —
    // simulator → collector → UDP protocol → database → consolidation.
    let mut cfg = DeploymentConfig::default();
    cfg.campaign.scale = 0.005;

    println!("running SIREN deployment (scale {})...", cfg.campaign.scale);
    let result = Deployment::new(cfg).run();

    println!(
        "collected {} processes from {} jobs ({} datagrams, {} db rows)\n",
        result.campaign_stats.processes,
        result.campaign_stats.jobs,
        result.datagrams_sent,
        result.db_rows,
    );

    // The full §4 analysis: Tables 2–8 and Figures 2–5.
    println!("{}", report::full_report(&result.records));

    println!(
        "integrity: {}/{} jobs with missing fields ({:.4} %)",
        result.integrity.jobs_with_missing,
        result.integrity.jobs_total,
        100.0 * result.integrity.job_loss_fraction(),
    );
}
