//! Demonstrates the sharded ingest service and multi-cluster fleets:
//! the same campaign through the serial and sharded receiver tiers
//! (asserting identical output), the live sharded UDP loopback path,
//! and a two-cluster fleet into one ingest service.
//!
//! ```bash
//! cargo run --release --example sharded_ingest
//! ```

use siren_repro::{
    Deployment, DeploymentConfig, FleetDeployment, FleetDeploymentConfig, IngestMode, TransportKind,
};

fn main() {
    let base = || {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.002;
        cfg
    };

    // Serial reference.
    let serial = Deployment::new(base()).run();
    println!(
        "serial:      {:>6} records, {:>6} db rows, {} shards",
        serial.records.len(),
        serial.db_rows,
        serial.shard_stats.len()
    );

    // Sharded, same campaign: output must be identical record for record.
    for shards in [2usize, 4] {
        let mut cfg = base();
        cfg.ingest = IngestMode::Sharded(shards);
        let sharded = Deployment::new(cfg).run();
        assert_eq!(sharded.records, serial.records);
        let per_shard: Vec<u64> = sharded.shard_stats.iter().map(|s| s.received).collect();
        println!(
            "sharded({}):  {:>6} records — identical to serial; per-shard messages {:?}",
            shards,
            sharded.records.len(),
            per_shard
        );
    }

    // Live sharded UDP loopback: receiver pool + sharded sender +
    // streaming drain threads, stopped by the end-of-campaign sentinel.
    let mut cfg = base();
    cfg.transport = TransportKind::UdpLoopback;
    cfg.ingest = IngestMode::Sharded(3);
    let udp = Deployment::new(cfg).run();
    println!(
        "udp sharded: {:>6} records, {}/{} datagrams delivered, backpressure waits {:?}",
        udp.records.len(),
        udp.datagrams_delivered,
        udp.datagrams_sent,
        udp.shard_stats
            .iter()
            .map(|s| s.backpressure_waits)
            .sum::<u64>()
    );

    // Two-cluster fleet into one ingest service.
    let mut fleet_cfg = FleetDeploymentConfig::default();
    fleet_cfg.fleet.clusters = 2;
    fleet_cfg.fleet.base.scale = 0.002;
    let fleet = FleetDeployment::new(fleet_cfg).run();
    println!(
        "fleet(2):    {:>6} records from {} clusters, {} sentinels, first job {}, last job {}",
        fleet.records.len(),
        fleet.clusters.len(),
        fleet.sentinels_seen,
        fleet.records.first().map(|r| r.key.job_id).unwrap_or(0),
        fleet.records.last().map(|r| r.key.job_id).unwrap_or(0),
    );
}
