//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release --bin experiments -- all
//! cargo run --release --bin experiments -- table7
//! cargo run --release --bin experiments -- loss
//! cargo run --release --bin experiments -- ablation
//! cargo run --release --bin experiments -- all --scale 0.05 --seed 7
//! ```
//!
//! Output goes to stdout; `EXPERIMENTS.md` records a reference run and
//! compares shapes against the paper's published values.

use siren_core::analysis::{self, Labeler};
use siren_core::collector::PolicyMode;
use siren_core::net::SimConfig;
use siren_core::{report, Deployment, DeploymentConfig};

fn parse_args() -> (Vec<String>, f64, u64) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets = Vec::new();
    let mut scale = 0.02f64;
    let mut seed = 0x51_4Eu64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(scale);
                i += 1;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(seed);
                i += 1;
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    (targets, scale, seed)
}

fn main() {
    let (targets, scale, seed) = parse_args();
    let want = |t: &str| targets.iter().any(|x| x == t || x == "all");

    // Table 1 is the policy matrix itself — no deployment needed.
    if want("table1") {
        println!("{}", table1());
    }

    let needs_run = [
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "ablation",
        "summary",
        "telemetry",
        "security",
        "clusters",
        "recurrence",
    ]
    .iter()
    .any(|t| want(t));

    if needs_run {
        eprintln!("# running campaign: scale={scale} seed={seed} (paper scale = 1.0)");
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = scale;
        cfg.campaign.seed = seed;
        let result = Deployment::new(cfg).run();
        eprintln!(
            "# jobs={} processes={} datagrams={} db_rows={} records={}",
            result.campaign_stats.jobs,
            result.campaign_stats.processes,
            result.datagrams_sent,
            result.db_rows,
            result.records.len()
        );
        let records = &result.records;

        if want("telemetry") || want("summary") {
            println!("{}", report::telemetry_report(&result.metrics));
        }
        if want("telemetry") {
            // Query-side telemetry: serve the campaign's records from a
            // throwaway daemon and render the registry snapshot a v2
            // `Metrics` request fetches over the wire.
            println!("{}", query_telemetry(records));
        }
        if want("summary") {
            println!("Deployment summary");
            println!("  jobs:               {}", result.campaign_stats.jobs);
            println!("  processes:          {}", result.campaign_stats.processes);
            println!(
                "    system:           {}",
                result.campaign_stats.system_processes
            );
            println!(
                "    user:             {}",
                result.campaign_stats.user_processes
            );
            println!(
                "    python:           {}",
                result.campaign_stats.python_processes
            );
            println!(
                "  skipped MPI ranks:  {}",
                result.collector_stats.skipped_nonzero_rank
            );
            println!(
                "  exec() collisions:  {}",
                result.campaign_stats.exec_replacements
            );
            println!("  datagrams sent:     {}", result.datagrams_sent);
            println!("  consolidated:       {}", result.records.len());
            println!();
        }
        if want("table2") {
            println!("{}", report::usage_report(records));
        }
        if want("table3") {
            println!("{}", report::system_report(records));
        }
        if want("table4") {
            println!("{}", report::bash_variants_report(records));
        }
        if want("table5") {
            println!("{}", report::labels_report(records));
        }
        if want("table6") {
            println!("{}", report::compilers_report(records));
        }
        if want("table7") {
            println!("{}", report::similarity_report(records));
        }
        if want("table8") {
            println!("{}", report::interpreters_report(records));
        }
        if want("fig2") {
            println!("{}", report::derived_libs_report(records));
        }
        if want("fig3") {
            println!("{}", report::packages_report(records));
        }
        if want("fig4") {
            println!("{}", report::compiler_matrix_report(records));
        }
        if want("fig5") {
            println!("{}", report::library_matrix_report(records));
        }
        if want("ablation") {
            let abl = analysis::baseline::recognition_ablation(records, &Labeler::default(), 60);
            println!("{}", abl.render());
        }
        if want("security") {
            let report = analysis::audit_python_imports(
                records,
                siren_core::cluster::python::PACKAGE_CATALOG,
            );
            println!("{}", report.render());
        }
        if want("recurrence") {
            let rows = analysis::recurrence_table(records);
            println!("{}", analysis::recurrence::render_recurrence(&rows, 10));
        }
        if want("clusters") {
            let clustering = analysis::cluster_binaries(records, &Labeler::default(), 60);
            let quality = analysis::clustering_quality(&clustering);
            println!("{}", analysis::clusterize::render_clusters(&quality, 60));
        }
    }

    if want("loss") {
        println!("{}", loss_sweep(scale, seed));
    }
    if want("overhead") {
        println!("{}", overhead_comparison(scale, seed));
    }
}

/// Table 1: the collection-policy matrix (printed from the live policy
/// code so the table can never drift from the implementation).
fn table1() -> String {
    use siren_core::collector::{Category, CollectionPolicy};
    let columns = [
        (
            "System Executable",
            CollectionPolicy::for_category(Category::System, PolicyMode::Selective),
        ),
        (
            "User Executable",
            CollectionPolicy::for_category(Category::User, PolicyMode::Selective),
        ),
        (
            "Python Interpreter",
            CollectionPolicy::for_category(Category::Python, PolicyMode::Selective),
        ),
        ("Python Script", CollectionPolicy::for_python_script()),
    ];
    type PolicyColumn = (&'static str, fn(&CollectionPolicy) -> bool);
    let rows: [PolicyColumn; 8] = [
        ("File Metadata", |p| p.file_metadata),
        ("Libraries", |p| p.libraries),
        ("Modules", |p| p.modules),
        ("Compilers", |p| p.compilers),
        ("Memory Map", |p| p.memory_map),
        ("File_H", |p| p.file_hash),
        ("Strings_H", |p| p.strings_hash),
        ("Symbols_H", |p| p.symbols_hash),
    ];
    let mut out = String::from("Table 1: Data collection for different scopes\n");
    out.push_str(&format!("{:<14}", "Collected"));
    for (name, _) in &columns {
        out.push_str(&format!("  {name:<18}"));
    }
    out.push('\n');
    for (label, getter) in rows {
        out.push_str(&format!("{label:<14}"));
        for (_, policy) in &columns {
            out.push_str(&format!(
                "  {:<18}",
                if getter(policy) { "yes" } else { "-" }
            ));
        }
        out.push('\n');
    }
    out
}

/// §3.1 loss experiment: sweep injected UDP loss rates and report the
/// fraction of jobs with missing fields (the paper observed ~0.02 % at
/// LUMI's natural loss rate).
fn loss_sweep(scale: f64, seed: u64) -> String {
    let mut out = String::from(
        "UDP loss sweep: injected datagram loss vs jobs with missing fields\n\
         loss_rate  datagrams_lost  incomplete_msgs  procs_missing  jobs_missing  job_fraction\n",
    );
    for loss in [0.0, 0.0001, 0.001, 0.01, 0.05] {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = scale.min(0.01); // sweep runs 5 deployments
        cfg.campaign.seed = seed;
        cfg.channel = SimConfig::with_loss(loss, seed ^ 0xABCD);
        let r = Deployment::new(cfg).run();
        out.push_str(&format!(
            "{:>9.4}  {:>14}  {:>15}  {:>13}  {:>12}  {:>11.4}%\n",
            loss,
            r.datagrams_dropped,
            r.reassembly_incomplete,
            r.integrity.processes_with_missing,
            r.integrity.jobs_with_missing,
            100.0 * r.integrity.job_loss_fraction(),
        ));
    }
    out
}

/// Selective-collection ablation: Table 1 policy vs collect-everything.
fn overhead_comparison(scale: f64, seed: u64) -> String {
    let run = |mode: PolicyMode| {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = scale.min(0.01);
        cfg.campaign.seed = seed;
        cfg.policy = mode;
        let start = std::time::Instant::now();
        let r = Deployment::new(cfg).run();
        (
            r.collector_stats.bytes_hashed,
            r.datagrams_sent,
            start.elapsed(),
        )
    };
    let (sel_bytes, sel_dgrams, sel_t) = run(PolicyMode::Selective);
    let (all_bytes, all_dgrams, all_t) = run(PolicyMode::CollectEverything);
    format!(
        "Selective collection ablation (Table 1 rationale)\n\
         mode                bytes_hashed  datagrams  wall_time\n\
         selective        {:>15}  {:>9}  {:>8.2?}\n\
         collect-all      {:>15}  {:>9}  {:>8.2?}\n\
         ratio            {:>14.1}x  {:>8.1}x\n",
        sel_bytes,
        sel_dgrams,
        sel_t,
        all_bytes,
        all_dgrams,
        all_t,
        all_bytes as f64 / sel_bytes.max(1) as f64,
        all_dgrams as f64 / sel_dgrams.max(1) as f64,
    )
}

/// Import `records` into a throwaway daemon serving the TCP query
/// protocol, drive one v2 `Metrics` round-trip, and render the full
/// registry snapshot an operator would read off a live deployment —
/// commit/publish spans, query traffic, cursor table, slow queries.
fn query_telemetry(records: &[siren_core::consolidate::ProcessRecord]) -> String {
    use siren_core::proto::SirenClient;
    use siren_core::service::{ServiceConfig, SirenDaemon};

    let dir = std::env::temp_dir().join(format!("siren-exp-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServiceConfig {
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::at(&dir)
    };
    let out = match SirenDaemon::open(cfg) {
        Ok((mut daemon, _)) => {
            let _ = daemon.import_epoch(records.to_vec());
            match daemon
                .query_addr()
                .ok_or(())
                .and_then(|addr| SirenClient::connect(addr).map_err(|_| ()))
                .and_then(|mut client| {
                    // Exercise one real query so the snapshot carries a
                    // nonzero exec span, then fetch the registry.
                    let _ = client.status();
                    client.metrics().map_err(|_| ())
                }) {
                Ok(snapshot) => report::telemetry_report(&snapshot),
                Err(()) => "Query telemetry unavailable (local TCP refused)\n".into(),
            }
        }
        Err(e) => format!("Query telemetry unavailable: {e}\n"),
    };
    let _ = std::fs::remove_dir_all(&dir);
    out
}
