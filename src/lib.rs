//! # siren-repro — reproduction of "SIREN: Software Identification and
//! Recognition in HPC Systems" (SC 2025)
//!
//! This is the umbrella crate: it re-exports the full [`siren_core`] API
//! and hosts the runnable examples (`examples/`), the cross-crate
//! integration tests (`tests/`), and the `experiments` binary that
//! regenerates every table and figure of the paper.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use siren_core::*;
