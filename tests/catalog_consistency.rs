//! Cross-crate consistency: the simulator's library catalog, software
//! lineages, and label rules must agree with the analysis layer's
//! derivation and labeling logic — otherwise the tables would silently
//! drift from the corpus that generates them.

use siren_repro::analysis::labels::{default_label_rules, Labeler};
use siren_repro::cluster::corpus::{ApplicationCorpus, GROUPS};
use siren_repro::cluster::libcatalog::LIBRARY_CATALOG;
use siren_repro::cluster::python::{PythonEcosystem, PACKAGE_CATALOG, SCRIPT_FAMILIES};
use siren_repro::consolidate::extract_python_imports;
use siren_repro::text::SubstringDeriver;

#[test]
fn every_catalog_path_derives_to_its_label() {
    let deriver = SubstringDeriver::paper();
    for (label, path) in LIBRARY_CATALOG {
        assert_eq!(
            deriver.derive(path).as_deref(),
            Some(*label),
            "catalog path {path} must derive to {label}"
        );
    }
}

#[test]
fn base_libraries_derive_to_nothing() {
    let deriver = SubstringDeriver::paper();
    for path in siren_repro::cluster::libcatalog::BASE_LIBRARIES {
        assert_eq!(deriver.derive(path), None, "{path} must be uninformative");
    }
}

#[test]
fn every_group_exe_path_gets_its_software_label() {
    let corpus = ApplicationCorpus::build();
    let labeler = Labeler::new(default_label_rules());
    for group in corpus.groups() {
        let expected = if group.spec.software == "UNKNOWN" {
            "UNKNOWN"
        } else {
            group.spec.software
        };
        // Check a few variants across the range.
        for v in [0, group.spec.variants / 2, group.spec.variants - 1] {
            let path = group.exe_path("user_4", v);
            assert_eq!(
                labeler.label(&path),
                expected,
                "group {} path {path}",
                group.spec.group_id
            );
        }
    }
}

#[test]
fn group_variant_binaries_have_expected_compiler_comments() {
    let corpus = ApplicationCorpus::build();
    for group in corpus.groups() {
        let parsed = siren_repro::elf::ElfFile::parse(&group.variants[0].content).unwrap();
        let comments = parsed.comment_strings();
        assert_eq!(
            comments.len(),
            group.spec.compilers.len(),
            "group {}",
            group.spec.group_id
        );
        for (got, want) in comments.iter().zip(group.spec.compilers) {
            assert_eq!(got, want, "group {}", group.spec.group_id);
        }
    }
}

#[test]
fn group_objects_resolve_within_catalog() {
    let corpus = ApplicationCorpus::build();
    let deriver = SubstringDeriver::paper();
    let catalog_labels: std::collections::HashSet<&str> =
        LIBRARY_CATALOG.iter().map(|(l, _)| *l).collect();
    for group in corpus.groups() {
        for variant in &group.variants {
            for derived in deriver.derive_all(&variant.objects) {
                assert!(
                    catalog_labels.contains(derived.as_str()),
                    "group {} derives unknown label {derived}",
                    group.spec.group_id
                );
            }
        }
    }
}

#[test]
fn unknown_group_is_copy_of_icon_gcc() {
    let spec = GROUPS.iter().find(|g| g.group_id == "unknown").unwrap();
    assert_eq!(spec.copy_of, Some("icon-gcc"));
    assert_eq!(spec.software, "UNKNOWN");
    assert_eq!(spec.variants, 7); // Table 5's UNKNOWN unique FILE_H
}

#[test]
fn script_family_imports_extractable_from_maps() {
    let eco = PythonEcosystem::build();
    for fam in SCRIPT_FAMILIES {
        let interp = eco.interpreter(fam.interpreter);
        for script in eco.scripts(fam.id) {
            let maps = eco.interpreter_maps(interp, script);
            let extracted = extract_python_imports(&maps, PACKAGE_CATALOG);
            let mut expected: Vec<&str> = script.imports.clone();
            expected.sort_unstable();
            let mut got = extracted.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "family {} script {}", fam.id, script.path);
        }
    }
}

#[test]
fn label_rules_cover_every_software_in_the_corpus() {
    let labeler = Labeler::default();
    let softwares: std::collections::HashSet<&str> = GROUPS
        .iter()
        .map(|g| g.software)
        .filter(|s| *s != "UNKNOWN")
        .collect();
    // Each software must be *producible* by the rules (its own exe paths
    // match), and no rule may be dead (matched by no group).
    let corpus = ApplicationCorpus::build();
    let mut produced: std::collections::HashSet<String> = Default::default();
    for group in corpus.groups() {
        produced.insert(labeler.label(&group.exe_path("user_1", 0)).to_string());
    }
    for sw in softwares {
        assert!(
            produced.contains(sw),
            "software {sw} unreachable by label rules"
        );
    }
}
