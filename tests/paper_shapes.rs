//! Integration tests asserting the *shape* of every paper artifact over a
//! full end-to-end deployment: who wins, orderings, structural counts.
//! Absolute numbers scale with the campaign factor and are not asserted
//! (see EXPERIMENTS.md for the paper-vs-measured record).

use siren_repro::analysis::{self, Labeler};
use siren_repro::cluster::python::PACKAGE_CATALOG;
use siren_repro::text::SubstringDeriver;
use siren_repro::{find_unknown_baseline, Deployment, DeploymentConfig};
use std::sync::OnceLock;

/// One shared deployment for all shape tests (runs once).
fn records() -> &'static [siren_repro::consolidate::ProcessRecord] {
    static CACHE: OnceLock<Vec<siren_repro::consolidate::ProcessRecord>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.01;
        cfg.campaign.seed = 0x51_4E;
        Deployment::new(cfg).run().records
    })
}

#[test]
fn table2_shape_twelve_users_user1_dominates() {
    let rows = analysis::usage_table(records());
    assert_eq!(rows.len(), 12, "all twelve users appear");
    assert_eq!(rows[0].user, "user_1", "user_1 has the most jobs");
    assert!(
        rows[0].user_procs == 0 && rows[0].python_procs == 0,
        "user_1 runs system executables exclusively (paper finding)"
    );
    // user_6 runs no system executables at all (paper's curious case).
    let u6 = rows.iter().find(|r| r.user == "user_6").unwrap();
    assert_eq!(u6.system_procs, 0);
    assert!(u6.user_procs > 0);
    // System >> user-dir process counts overall.
    let sys: u64 = rows.iter().map(|r| r.system_procs).sum();
    let user: u64 = rows.iter().map(|r| r.user_procs).sum();
    assert!(sys > 20 * user);
}

#[test]
fn table3_shape_top_executables_and_variants() {
    let rows = analysis::system_table(records());
    assert!(
        rows.len() > 50,
        "long tail of system executables: {}",
        rows.len()
    );

    let find = |p: &str| {
        rows.iter()
            .find(|r| r.path == p)
            .unwrap_or_else(|| panic!("{p} missing"))
    };
    let srun = find("/usr/bin/srun");
    let bash = find("/usr/bin/bash");
    let lua = find("/usr/bin/lua5.3");

    // srun is used by the most users (10 in the paper; ±1 at small scale
    // because fractional per-user rates may sample to zero).
    assert!(srun.unique_users >= 9, "srun users {}", srun.unique_users);
    assert!(srun.unique_users >= bash.unique_users);
    // Library-set variant counts: bash 3, srun 3, lua 2 (Tables 3–4).
    assert_eq!(bash.unique_objects_h, 3);
    assert!(srun.unique_objects_h >= 2);
    assert_eq!(lua.unique_objects_h, 2);
    // Single-variant executables stay single.
    assert_eq!(find("/usr/bin/rm").unique_objects_h, 1);
    assert_eq!(find("/usr/bin/mkdir").unique_objects_h, 1);
    // rm and mkdir dominate process counts (user_1's file management).
    assert!(find("/usr/bin/rm").process_count > bash.process_count);
    assert!(find("/usr/bin/mkdir").process_count > bash.process_count);
    // The top-10 by the paper's sort starts with srun.
    assert_eq!(rows[0].path, "/usr/bin/srun");
}

#[test]
fn table4_shape_bash_variants_with_libm_deviation() {
    let rows = analysis::library_variant_table(records(), "/usr/bin/bash");
    assert_eq!(rows.len(), 3, "three bash library sets (Table 4)");
    // Dominant variant first; the rare SW variant brings libm.
    assert!(rows[0].processes > rows[1].processes);
    let with_libm: Vec<_> = rows
        .iter()
        .filter(|r| r.deviating.iter().any(|l| l.contains("libm")))
        .collect();
    assert_eq!(with_libm.len(), 1);
    assert!(with_libm[0].deviating.iter().any(|l| l.contains("SW")));
}

#[test]
fn table5_shape_labels_and_variant_counts() {
    let rows = analysis::label_table(records(), &Labeler::default());
    let find = |l: &str| {
        rows.iter()
            .find(|r| r.label == l)
            .unwrap_or_else(|| panic!("{l} missing"))
    };

    // All ten labels of Table 5 appear.
    for l in [
        "LAMMPS",
        "GROMACS",
        "miniconda",
        "janko",
        "icon",
        "amber",
        "gzip",
        "UNKNOWN",
        "alexandria",
        "RadRad",
    ] {
        find(l);
    }
    // LAMMPS and GROMACS are multi-user; the rest single-user.
    assert_eq!(find("LAMMPS").unique_users, 2);
    assert_eq!(find("GROMACS").unique_users, 2);
    assert_eq!(find("icon").unique_users, 1);
    // icon has by far the most distinct binaries; GROMACS exactly one.
    let icon = find("icon");
    assert_eq!(find("GROMACS").unique_file_h, 1);
    for r in &rows {
        if r.label != "icon" {
            assert!(
                icon.unique_file_h >= r.unique_file_h,
                "{} >= {}",
                icon.label,
                r.label
            );
        }
    }
    // UNKNOWN exists with multiple distinct binaries.
    assert!(find("UNKNOWN").unique_file_h >= 2);
    // miniconda has the most user-dir processes (paper: 5,018).
    assert_eq!(
        rows.iter().max_by_key(|r| r.process_count).unwrap().label,
        "miniconda"
    );
}

#[test]
fn table6_shape_compiler_combinations() {
    let rows = analysis::compiler_table(records());
    let combos: Vec<String> = rows.iter().map(|r| r.combo.join(", ")).collect();
    // The paper's eight combinations all appear.
    for expected in [
        "LLD [AMD]",
        "GCC [SUSE]",
        "GCC [SUSE], clang [Cray]",
        "GCC [Red Hat], GCC [conda]",
        "GCC [SUSE], GCC [HPE]",
        "GCC [Red Hat], rustc",
        "GCC [SUSE], clang [AMD]",
        "GCC [SUSE], clang [Cray], clang [AMD]",
    ] {
        assert!(
            combos.iter().any(|c| c == expected),
            "missing combo {expected}: {combos:?}"
        );
    }
    // Multi-compiler rows dominate the table (the §4.3 observation).
    assert!(rows.iter().filter(|r| r.combo.len() > 1).count() >= 5);
}

#[test]
fn table7_shape_unknown_identified_as_icon_with_decay() {
    let recs = records();
    let baseline = find_unknown_baseline(recs).expect("UNKNOWN baseline");
    let rows = analysis::similarity_search_table(recs, baseline, &Labeler::default(), 10);

    assert!(!rows.is_empty());
    // Every hit is icon — the planted ground truth.
    for r in &rows {
        assert_eq!(r.label, "icon", "non-icon hit: {r:?}");
    }
    // A perfect 100-everywhere row leads (the byte-identical variant).
    assert_eq!(rows[0].avg, 100.0);
    assert_eq!(
        (rows[0].mo, rows[0].co, rows[0].ob, rows[0].fi, rows[0].st, rows[0].sy),
        (100, 100, 100, 100, 100, 100)
    );
    // Similarity decays monotonically down the table and spans a range.
    for w in rows.windows(2) {
        assert!(w[0].avg >= w[1].avg);
    }
    assert!(rows.last().unwrap().avg < 100.0);
}

#[test]
fn table8_shape_three_interpreters() {
    let rows = analysis::interpreter_table(records());
    assert_eq!(rows.len(), 3);
    let names: Vec<&str> = rows.iter().map(|r| r.interpreter.as_str()).collect();
    for n in ["python3.6", "python3.10", "python3.11"] {
        assert!(names.contains(&n), "{n} missing from {names:?}");
    }
    // python3.10: two users, one process per job (Table 8's first row).
    let p310 = rows.iter().find(|r| r.interpreter == "python3.10").unwrap();
    assert_eq!(p310.unique_users, 2);
    assert_eq!(p310.job_count, p310.process_count);
    // 3.6 and 3.11 belong to one user each, with many processes per job.
    for n in ["python3.6", "python3.11"] {
        let r = rows.iter().find(|r| r.interpreter == n).unwrap();
        assert_eq!(r.unique_users, 1);
        assert!(r.process_count > r.job_count);
        assert!(r.unique_script_h >= 1);
    }
    // Script diversity per process is highest on 3.10 (27 distinct
    // scripts for 30 processes in the paper; at reduced scale the ratio,
    // not the absolute count, is the invariant).
    let ratio = |r: &analysis::InterpreterRow| r.unique_script_h as f64 / r.process_count as f64;
    for other in rows.iter().filter(|r| r.interpreter != "python3.10") {
        assert!(
            ratio(p310) >= ratio(other),
            "3.10 script/proc ratio must lead"
        );
    }
}

#[test]
fn fig2_shape_derived_libraries() {
    let rows = analysis::derived_library_stats(records(), &SubstringDeriver::paper());
    let find = |l: &str| rows.iter().find(|r| r.library == l);

    // siren.so is loaded by every user-directory process (LD_PRELOAD).
    let siren = find("siren").expect("siren present");
    let max_procs = rows.iter().map(|r| r.process_count).max().unwrap();
    assert_eq!(siren.process_count, max_procs);

    // Climate libraries appear (icon), ROCm stack appears (GPU codes),
    // HDF5 variants appear (amber).
    for l in [
        "climatedt",
        "climatedt-yaml",
        "rocfft-rocm-fft",
        "hdf5-parallel-cray",
        "hdf5-fortran-parallel-cray",
        "gromacs",
        "cuda-amber",
    ] {
        assert!(find(l).is_some(), "{l} missing");
    }
    // climatedt: many unique executables relative to jobs (the paper's
    // highlighted disparity — icon's many variants share these libs).
    let cdt = find("climatedt").unwrap();
    assert!(
        cdt.unique_executables >= cdt.job_count,
        "climatedt exe diversity {} vs jobs {}",
        cdt.unique_executables,
        cdt.job_count
    );
}

#[test]
fn fig3_shape_python_packages() {
    let rows = analysis::package_stats(records(), PACKAGE_CATALOG);
    let find = |p: &str| {
        rows.iter()
            .find(|r| r.package == p)
            .unwrap_or_else(|| panic!("{p} missing"))
    };
    // heapq and struct imported by all three Python users.
    assert_eq!(find("heapq").unique_users, 3);
    assert_eq!(find("struct").unique_users, 3);
    // Specialized packages by a strict subset.
    for p in ["mpi4py", "numpy", "pandas", "scipy"] {
        assert!(find(p).unique_users < 3, "{p} should be a subset");
    }
    // mpi4py only on the 3.6 HPC workflows (one user).
    assert_eq!(find("mpi4py").unique_users, 1);
}

#[test]
fn fig4_shape_compiler_matrix() {
    let m = analysis::compiler_matrix(records(), &Labeler::default());
    // Spot-check the paper's 1-cells…
    for (sw, comp) in [
        ("LAMMPS", "GCC [SUSE]"),
        ("LAMMPS", "LLD [AMD]"),
        ("GROMACS", "LLD [AMD]"),
        ("miniconda", "GCC [Red Hat]"),
        ("miniconda", "GCC [conda]"),
        ("miniconda", "rustc"),
        ("janko", "GCC [HPE]"),
        ("icon", "clang [Cray]"),
        ("icon", "clang [AMD]"),
        ("amber", "clang [AMD]"),
        ("gzip", "LLD [AMD]"),
        ("alexandria", "GCC [SUSE]"),
        ("RadRad", "clang [Cray]"),
    ] {
        assert_eq!(m.get(sw, comp), Some(true), "{sw} × {comp} should be 1");
    }
    // …and its 0-cells.
    for (sw, comp) in [
        ("GROMACS", "GCC [SUSE]"),
        ("miniconda", "GCC [SUSE]"),
        ("gzip", "GCC [SUSE]"),
        ("alexandria", "LLD [AMD]"),
        ("janko", "clang [Cray]"),
    ] {
        assert_eq!(m.get(sw, comp), Some(false), "{sw} × {comp} should be 0");
    }
}

#[test]
fn fig5_shape_library_matrix() {
    let m = analysis::library_matrix(records(), &Labeler::default(), &SubstringDeriver::paper());
    // Every software loads siren (the LD_PRELOAD library) — the paper
    // calls this out explicitly.
    for row in &m.rows {
        assert_eq!(m.get(row, "siren"), Some(true), "{row} must load siren.so");
    }
    for (sw, lib, want) in [
        ("icon", "climatedt", true),
        ("icon", "hdf5-cray", true),
        ("amber", "cuda-amber", true),
        ("amber", "hdf5-fortran-parallel-cray", true),
        ("GROMACS", "gromacs", true),
        ("GROMACS", "boost", true),
        ("janko", "spack", true),
        ("miniconda", "cray", false),
        ("GROMACS", "climatedt", false),
        ("gzip", "pthread", false),
    ] {
        assert_eq!(m.get(sw, lib), Some(want), "{sw} × {lib}");
    }
}

#[test]
fn ablation_fuzzy_beats_exact_and_name() {
    let abl = analysis::baseline::recognition_ablation(records(), &Labeler::default(), 60);
    assert!(
        abl.variant_pairs > 10,
        "enough variant pairs: {}",
        abl.variant_pairs
    );
    assert_eq!(
        abl.exact_hits, 0,
        "exact hashing never links distinct binaries"
    );
    assert!(
        abl.fuzzy_hits > abl.name_hits.max(abl.exact_hits),
        "fuzzy ({}) must beat name ({}) and exact ({})",
        abl.fuzzy_hits,
        abl.name_hits,
        abl.exact_hits
    );
}
