//! Cross-crate property-based tests (proptest): the invariants that hold
//! for *arbitrary* inputs, not just the simulated campaign.

use proptest::prelude::*;
use siren_repro::db::Record;
use siren_repro::elf::{Binding, ElfBuilder, ElfFile, ElfType, SymType};
use siren_repro::fuzzy::{
    compare_parsed, fuzzy_hash, fuzzy_hash_reference, FuzzyHash, FuzzyHasher,
};
use siren_repro::text::Regex;
use siren_repro::wire::{chunk_message, Layer, Message, MessageHeader, MessageType, Reassembler};

fn arb_layer() -> impl Strategy<Value = Layer> {
    prop_oneof![Just(Layer::SelfExe), Just(Layer::Script)]
}

fn arb_mtype() -> impl Strategy<Value = MessageType> {
    (0usize..MessageType::ALL.len()).prop_map(|i| MessageType::ALL[i])
}

fn arb_header() -> impl Strategy<Value = MessageHeader> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        "[0-9a-f]{0,32}",
        "[a-zA-Z0-9._-]{1,24}",
        any::<u64>(),
        arb_layer(),
        arb_mtype(),
    )
        .prop_map(
            |(job_id, step_id, pid, exe_hash, host, time, layer, mtype)| MessageHeader {
                job_id,
                step_id,
                pid,
                exe_hash,
                host,
                time,
                layer,
                mtype,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------------------------------------------------- fuzzy --

    /// The streaming engine agrees byte-for-byte with the published
    /// two-pass reference algorithm on arbitrary inputs.
    #[test]
    fn fuzzy_streaming_equals_reference(data in proptest::collection::vec(any::<u8>(), 0..6000)) {
        prop_assert_eq!(fuzzy_hash(&data), fuzzy_hash_reference(&data));
    }

    /// Streaming digests are split-point independent.
    #[test]
    fn fuzzy_streaming_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..4000),
        split_frac in 0.0f64..1.0,
    ) {
        let split = (data.len() as f64 * split_frac) as usize;
        let mut h = FuzzyHasher::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.digest(), fuzzy_hash(&data));
    }

    /// Self-similarity is 100 for any non-empty input; comparison is
    /// symmetric for arbitrary pairs.
    #[test]
    fn fuzzy_compare_self_and_symmetry(
        a in proptest::collection::vec(any::<u8>(), 1..4000),
        b in proptest::collection::vec(any::<u8>(), 1..4000),
    ) {
        let ha = fuzzy_hash(&a);
        let hb = fuzzy_hash(&b);
        prop_assert_eq!(compare_parsed(&ha, &ha), 100);
        prop_assert_eq!(compare_parsed(&ha, &hb), compare_parsed(&hb, &ha));
    }

    /// Generated hashes always re-parse to themselves.
    #[test]
    fn fuzzy_hash_text_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let h = fuzzy_hash(&data);
        let reparsed = FuzzyHash::parse(&h.to_string_repr()).unwrap();
        prop_assert_eq!(h, reparsed);
    }

    // ----------------------------------------------------------- wire --

    /// Datagram encode/decode round-trips arbitrary headers and content.
    #[test]
    fn wire_round_trip(header in arb_header(), content in "[ -~]{0,500}") {
        let msg = Message { header, chunk_index: 0, chunk_total: 1, content };
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    /// Chunking + reassembly reconstructs content under arbitrary chunk
    /// permutations and duplications.
    #[test]
    fn wire_reassembly_under_permutation(
        header in arb_header(),
        content in "[ -~]{0,4000}",
        limit in 100usize..1500,
        seed in any::<u64>(),
    ) {
        let chunks = chunk_message(&header, &content, limit);
        // Deterministic shuffle + duplicate every third chunk.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        let mut x = seed | 1;
        for i in (1..order.len()).rev() {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            order.swap(i, (x as usize) % (i + 1));
        }
        let mut reasm = Reassembler::new();
        let mut done = None;
        for &i in &order {
            if let Some(d) = reasm.push(chunks[i].clone()) {
                done = Some(d);
            }
            if i % 3 == 0 {
                let _ = reasm.push(chunks[i].clone()); // duplicate
            }
        }
        let done = done.expect("all chunks delivered");
        prop_assert_eq!(done.content, content);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn wire_decode_total(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Message::decode(&data);
    }

    // ------------------------------------------------------------- db --

    /// Database records survive binary encode/decode for arbitrary field
    /// values.
    #[test]
    fn db_record_round_trip(
        header in arb_header(),
        content in "\\PC{0,300}",
    ) {
        let rec = Record {
            job_id: header.job_id,
            step_id: header.step_id,
            pid: header.pid,
            exe_hash: header.exe_hash.clone(),
            host: header.host.clone(),
            time: header.time,
            layer: header.layer,
            mtype: header.mtype,
            content,
        };
        prop_assert_eq!(Record::decode(&rec.encode()), Some(rec));
    }

    /// Record decoding never panics on arbitrary bytes.
    #[test]
    fn db_record_decode_total(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Record::decode(&data);
    }

    // ------------------------------------------------------------ elf --

    /// Builder output always parses, and comments/symbols round-trip for
    /// arbitrary (printable, NUL-free) names.
    #[test]
    fn elf_round_trip(
        comments in proptest::collection::vec("[ -~]{1,60}", 0..4),
        symbols in proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9_]{0,30}", 0..16),
        text in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let mut builder = ElfBuilder::new(ElfType::Dyn).text(&text);
        for c in &comments {
            builder = builder.comment(c);
        }
        for (i, s) in symbols.iter().enumerate() {
            builder = builder.symbol(s, i as u64, 8, Binding::Global, SymType::Func);
        }
        let bin = builder.build();
        let parsed = ElfFile::parse(&bin).unwrap();
        prop_assert_eq!(parsed.comment_strings(), comments);
        let mut names: Vec<String> =
            parsed.global_symbols().into_iter().map(|s| s.name).collect();
        let mut expected = symbols.clone();
        names.sort();
        expected.sort();
        prop_assert_eq!(names, expected);
    }

    // ---------------------------------------------------------- regex --

    /// For escaped literal patterns, the engine agrees with `str::contains`.
    #[test]
    fn regex_literal_equals_contains(needle in "[a-z]{1,8}", hay in "[a-z]{0,40}") {
        let re = Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    /// Anchored exact patterns match only the exact string.
    #[test]
    fn regex_anchored_exact(s in "[a-z]{1,10}", t in "[a-z]{1,10}") {
        let re = Regex::new(&format!("^{s}$")).unwrap();
        prop_assert_eq!(re.is_match(&t), s == t);
    }
}

// Appended invariants: WAL crash tolerance and edit-distance oracle.

/// Naive weighted-DL reference (exponential, memoized via table) used as
/// an oracle for the production edit distance on short strings.
fn oracle_edit_distance(a: &[u8], b: &[u8]) -> u32 {
    const INS: u32 = 1;
    const DEL: u32 = 1;
    const SUB: u32 = 3;
    const SWP: u32 = 5;
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i as u32 * DEL;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j as u32 * INS;
    }
    for i in 1..=n {
        for j in 1..=m {
            let mut best = dp[i - 1][j] + DEL;
            best = best.min(dp[i][j - 1] + INS);
            best = best.min(dp[i - 1][j - 1] + if a[i - 1] == b[j - 1] { 0 } else { SUB });
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(dp[i - 2][j - 2] + SWP);
            }
            dp[i][j] = best;
        }
    }
    dp[n][m]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production edit distance equals the textbook DP oracle.
    #[test]
    fn edit_distance_matches_oracle(a in "[A-Za-z0-9+/]{0,24}", b in "[A-Za-z0-9+/]{0,24}") {
        prop_assert_eq!(
            siren_repro::fuzzy::compare::edit_distance(&a, &b),
            oracle_edit_distance(a.as_bytes(), b.as_bytes())
        );
    }

    /// WAL crash tolerance: truncating the log at ANY byte position
    /// yields a replayable prefix of intact records — never a panic,
    /// never a corrupted record.
    #[test]
    fn wal_any_truncation_point_replays_prefix(
        n_records in 1usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        use siren_repro::db::{Record as DbRecord, WalReader, WalWriter};
        use siren_repro::wire::{Layer as WLayer, MessageType as WType};

        let dir = std::env::temp_dir().join(format!("siren-prop-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{n_records}-{}.wal", (cut_frac * 1e9) as u64));
        let _ = std::fs::remove_file(&path);

        let recs: Vec<DbRecord> = (0..n_records)
            .map(|i| DbRecord {
                job_id: i as u64,
                step_id: 0,
                pid: i as u32,
                exe_hash: format!("{i:x}"),
                host: "n".into(),
                time: i as u64,
                layer: WLayer::SelfExe,
                mtype: WType::Meta,
                content: format!("record-{i}"),
            })
            .collect();
        {
            let mut w = WalWriter::append_to(&path).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
            w.flush().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let (replayed, _stats) = WalReader::open(&path).unwrap().replay().unwrap();
        prop_assert!(replayed.len() <= recs.len());
        for (got, want) in replayed.iter().zip(&recs) {
            prop_assert_eq!(got, want);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Sequence elimination is idempotent and never lengthens a string.
    #[test]
    fn eliminate_sequences_idempotent(s in "[A-Za-z]{0,64}") {
        use siren_repro::fuzzy::compare::eliminate_sequences;
        let once = eliminate_sequences(&s);
        prop_assert!(once.len() <= s.len());
        prop_assert_eq!(eliminate_sequences(&once), once.clone());
        // No run longer than 3 survives.
        let bytes = once.as_bytes();
        for w in bytes.windows(4) {
            prop_assert!(!(w[0] == w[1] && w[1] == w[2] && w[2] == w[3]));
        }
    }
}

// Daemon crash-recovery determinism: a long-running service killed
// mid-stream and restarted must converge, after a full re-send of the
// interrupted campaign, on cross-epoch query results that are
// record-for-record identical to a fresh serial run over the same
// campaigns — with injected datagram loss, a fuzzed crash point, and a
// fuzzed torn-WAL-tail truncation.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn daemon_restart_mid_stream_recovers_cross_epoch_queries(
        campaign_seed in any::<u64>(),
        loss_seed in any::<u64>(),
        split_frac in 0.05f64..0.95,
        tear_frac in 0.0f64..0.5,
        shards in 1usize..4,
    ) {
        use siren_repro::cluster::{Campaign, CampaignConfig, FleetConfig};
        use siren_repro::collector::{Collector, PolicyMode};
        use siren_repro::consolidate::{consolidate, ProcessRecord};
        use siren_repro::db::Database;
        use siren_repro::net::{SimChannel, SimConfig};
        use siren_repro::service::{ServiceConfig, SirenDaemon};
        use siren_repro::wire::{Message, MessageType, Reassembler};

        let fleet = FleetConfig {
            clusters: 2,
            base: CampaignConfig {
                scale: 0.001,
                seed: campaign_seed,
                ..CampaignConfig::default()
            },
            ..FleetConfig::default()
        };

        // Collect both campaigns once, with injected loss, so the crashed
        // daemon and the fresh serial reference see identical streams.
        let collect = |k: usize| -> Vec<Message> {
            let (tx, rx) = SimChannel::create(SimConfig::with_loss(0.05, loss_seed ^ k as u64));
            let mut collector = Collector::new(&tx, PolicyMode::Selective)
                .with_sender_id(k as u32)
                .with_epoch(k as u64);
            Campaign::new(fleet.campaign_config(k)).run(|ctx| collector.observe(&ctx));
            collector.end_campaign();
            rx.drain_messages().0
        };
        let serial_reference = |messages: &[Message]| -> Vec<ProcessRecord> {
            let mut reasm = Reassembler::new();
            let db = Database::in_memory();
            for msg in messages {
                if msg.header.mtype == MessageType::End {
                    continue;
                }
                if let Some(done) = reasm.push(msg.clone()) {
                    db.insert_message(done).unwrap();
                }
            }
            consolidate(&db).records
        };
        let epoch_streams: Vec<Vec<Message>> = (0..2).map(collect).collect();
        let references: Vec<Vec<ProcessRecord>> =
            epoch_streams.iter().map(|m| serial_reference(m)).collect();

        let dir = std::env::temp_dir().join(format!(
            "siren-prop-daemon-{}-{}",
            std::process::id(),
            campaign_seed & 0xFFFF
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || ServiceConfig {
            shards,
            ..ServiceConfig::at(&dir)
        };

        // Epoch 0 runs to completion; epoch 1 dies at a fuzzed point.
        {
            let (mut daemon, _) = SirenDaemon::open(cfg()).unwrap();
            for msg in &epoch_streams[0] {
                daemon.push(msg.clone()).unwrap();
            }
            if daemon.open_epoch().is_some() {
                daemon.close_epoch().unwrap(); // loss ate the sentinels
            }
            let split = ((epoch_streams[1].len() as f64) * split_frac) as usize;
            for msg in &epoch_streams[1][..split] {
                daemon.push(msg.clone()).unwrap();
            }
            daemon.simulate_crash().unwrap();
        }
        // Tear the tails of the interrupted epoch's shard WALs.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if name.contains(".msgs.shard") {
                let data = std::fs::read(&path).unwrap();
                let keep = data.len() - ((data.len() as f64) * tear_frac) as usize;
                std::fs::write(&path, &data[..keep]).unwrap();
            }
        }

        // Restart, re-send the whole interrupted campaign, close.
        let (mut daemon, recovery) = SirenDaemon::open(cfg()).unwrap();
        prop_assert_eq!(&recovery.committed_epochs, &vec![0]);
        if !epoch_streams[1].is_empty() && ((epoch_streams[1].len() as f64) * split_frac) as usize > 0 {
            prop_assert_eq!(recovery.resumed_epoch, Some(1));
        }
        for msg in &epoch_streams[1] {
            daemon.push(msg.clone()).unwrap();
        }
        if daemon.open_epoch().is_some() {
            daemon.close_epoch().unwrap();
        }

        // Cross-epoch queries equal the fresh serial runs, record for
        // record.
        let query = daemon.snapshot();
        prop_assert_eq!(query.epochs(), vec![0, 1]);
        for (epoch, reference) in references.iter().enumerate() {
            let got: Vec<ProcessRecord> = query
                .epoch_records(epoch as u64)
                .into_iter()
                .cloned()
                .collect();
            prop_assert_eq!(&got, reference, "epoch {} after crash+restart", epoch);
        }
        // Per-job queries span both epochs' namespaces.
        for reference in &references {
            if let Some(probe) = reference.first() {
                prop_assert!(query
                    .job_records(probe.key.job_id)
                    .iter()
                    .any(|er| &er.record == probe));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// Shard-merge determinism: the sharded ingest service is a pure
// refactoring of the serial receiver — for any campaign seed, any loss
// pattern, and any shard count, the consolidated output must be equal
// record for record.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// `Sharded(n)` equals `Serial` for n ∈ {1, 2, 8}, with and without
    /// injected datagram loss.
    #[test]
    fn sharded_ingest_equals_serial(
        campaign_seed in any::<u64>(),
        channel_seed in any::<u64>(),
    ) {
        use siren_repro::{Deployment, DeploymentConfig, IngestMode};
        use siren_repro::net::SimConfig;

        for loss in [0.0f64, 0.05] {
            let base = || {
                let mut cfg = DeploymentConfig::default();
                cfg.campaign.scale = 0.001;
                cfg.campaign.seed = campaign_seed;
                cfg.channel = if loss > 0.0 {
                    SimConfig::with_loss(loss, channel_seed)
                } else {
                    SimConfig::perfect()
                };
                cfg
            };
            let serial = Deployment::new(base()).run();
            if loss > 0.0 {
                // The loss pattern must actually bite, or this case
                // degenerates into the lossless one.
                prop_assert!(serial.datagrams_dropped > 0);
            }
            for shards in [1usize, 2, 8] {
                let mut cfg = base();
                cfg.ingest = IngestMode::Sharded(shards);
                let sharded = Deployment::new(cfg).run();
                prop_assert_eq!(&sharded.records, &serial.records,
                    "shards={} loss={}", shards, loss);
                prop_assert_eq!(sharded.db_rows, serial.db_rows);
                prop_assert_eq!(sharded.reassembly_complete, serial.reassembly_complete);
                prop_assert_eq!(sharded.reassembly_incomplete, serial.reassembly_incomplete);
                prop_assert_eq!(sharded.consolidate_stats, serial.consolidate_stats);
            }
        }
    }
}
