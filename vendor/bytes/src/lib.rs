//! Offline stand-in for the `bytes` crate: the [`Buf`] / [`BufMut`] /
//! [`BytesMut`] subset the WAL framing layer needs, over plain `Vec<u8>`
//! and byte slices.

use std::ops::{Deref, DerefMut};

/// Read-side cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side sink for growing byte buffers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Extract the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_frame() {
        let mut frame = BytesMut::with_capacity(32);
        frame.put_u8(0xD8);
        frame.put_u32_le(3);
        frame.put_slice(b"abc");
        frame.put_u64_le(0xDEAD_BEEF);

        let mut buf: &[u8] = &frame;
        assert_eq!(buf.remaining(), 16);
        assert_eq!(buf.get_u8(), 0xD8);
        assert_eq!(buf.get_u32_le(), 3);
        assert_eq!(&buf.chunk()[..3], b"abc");
        buf.advance(3);
        assert_eq!(buf.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(buf.remaining(), 0);
    }
}
