//! Offline stand-in for the `criterion` crate: a compact wall-clock
//! benchmarking harness exposing the API subset the bench suite uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`). Statistics are simpler than real criterion — median
//! over timed samples, no outlier analysis — but results are honest
//! wall-clock measurements and are printed in a criterion-like format.
//!
//! A `--save-json <path>` CLI argument (also honored via the
//! `CRITERION_SAVE_JSON` environment variable) appends every measurement
//! to a JSON file so benches can export machine-readable results.

use std::time::{Duration, Instant};

/// Per-iteration work driver handed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `f`, called in batches, collecting one duration per batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that makes one sample take
        // at least ~2ms, bounded to keep total time sane.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || n >= 1 << 20 {
                self.iters_per_sample = n;
                break;
            }
            n *= 4;
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Hierarchical benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only identifier (group name supplies the function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Throughput annotation active when measured, if any.
    pub throughput: Option<(String, u64)>,
}

/// The harness entry point.
pub struct Criterion {
    filter: Option<String>,
    save_json: Option<String>,
    results: Vec<Measurement>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            save_json: std::env::var("CRITERION_SAVE_JSON").ok(),
            results: Vec::new(),
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Parse the CLI arguments cargo-bench passes through. Unknown flags
    /// are ignored; a bare argument becomes the name filter.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" => {}
                "--save-json" => self.save_json = args.next(),
                s if s.starts_with("--") => {
                    // Flag with a value? Consume it when present.
                    if let Some(next) = args.peek() {
                        if !next.starts_with('-') {
                            args.next();
                        }
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Measure a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.default_samples;
        self.run_one(name.to_string(), None, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        samples: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: samples.max(3),
        };
        f(&mut b);
        if b.samples.is_empty() {
            return;
        }
        let mut per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN durations"));
        let median_ns = per_iter[per_iter.len() / 2];

        let tp = throughput.map(|t| match t {
            Throughput::Bytes(n) => ("bytes".to_string(), n),
            Throughput::Elements(n) => ("elements".to_string(), n),
        });
        let rate = tp.as_ref().map(|(unit, n)| {
            let per_sec = *n as f64 * 1e9 / median_ns;
            match unit.as_str() {
                "bytes" => format!("  {:>10.1} MiB/s", per_sec / (1024.0 * 1024.0)),
                _ => format!("  {per_sec:>12.0} elem/s"),
            }
        });
        println!(
            "{id:<56} time: {:>12}{}",
            format_ns(median_ns),
            rate.unwrap_or_default()
        );
        self.results.push(Measurement {
            id,
            median_ns,
            throughput: tp,
        });
        self.flush_json();
    }

    fn flush_json(&self) {
        let Some(path) = &self.save_json else { return };
        let mut out = String::from("[\n");
        for (i, m) in self.results.iter().enumerate() {
            let tp = match &m.throughput {
                Some((unit, n)) => format!(r#", "throughput_unit": "{unit}", "throughput": {n}"#),
                None => String::new(),
            };
            out.push_str(&format!(
                r#"  {{"id": "{}", "median_ns": {:.1}{}}}"#,
                m.id, m.median_ns, tp
            ));
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n");
        let _ = std::fs::write(path, out);
    }

    /// All measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure a named function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(full, self.throughput, samples, f);
        self
    }

    /// Measure a function with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        self.criterion
            .run_one(full, self.throughput, samples, |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Declare a group-runner function invoking each bench function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_formats() {
        let mut c = Criterion {
            default_samples: 3,
            ..Criterion::default()
        };
        c.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns > 0.0);

        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| (0..x * 100).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements()[1].id.contains("grp/f/1"));
    }
}
