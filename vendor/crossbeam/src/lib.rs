//! Offline stand-in for `crossbeam`: a bounded multi-producer
//! multi-consumer channel built on `Mutex` + `Condvar`, exposing the
//! `crossbeam::channel` API subset the receiver server and the ingest
//! service use: [`channel::bounded`], blocking [`channel::Sender::send`],
//! non-blocking [`channel::Sender::try_send`], and receivers with
//! [`channel::Receiver::recv`] / `recv_timeout` / `try_recv`.
//!
//! Disconnection follows crossbeam semantics: a channel is disconnected
//! when all senders or all receivers have dropped; receivers still drain
//! queued messages after sender disconnect.

/// Scoped threads with the `crossbeam::scope` API, over
/// `std::thread::scope`. The closure handed to [`Scope::spawn`] receives
/// the scope again (crossbeam's nested-spawn affordance).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

/// Handle for spawning threads tied to an enclosing [`scope`].
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; the closure receives this scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(scope)),
        }
    }
}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread, propagating its panic payload as `Err`.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Error from [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; the message is handed back.
        Full(T),
        /// All receivers dropped; the message is handed back.
        Disconnected(T),
    }

    /// Error from [`Sender::send`]: all receivers dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders dropped.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel is empty and all senders dropped.
        Disconnected,
    }

    /// Error from [`Receiver::recv`]: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create a bounded channel of capacity `cap` (clamped to at least 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake receivers so they observe EOF.
                let _guard = self.shared.lock();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.shared.lock();
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Non-blocking send.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut q = self.shared.lock();
            if q.len() >= self.shared.cap {
                return Err(TrySendError::Full(msg));
            }
            q.push_back(msg);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Blocking send; waits for capacity.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.lock();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                if q.len() < self.shared.cap {
                    q.push_back(msg);
                    drop(q);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                // Bounded wait so receiver-disconnect is always observed.
                let (guard, _timeout) = self
                    .shared
                    .not_full
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Queue length snapshot (diagnostic).
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.lock();
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; `Err` only after all senders dropped and the
        /// queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                let (guard, _timeout) = self
                    .shared
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout) = self
                    .shared
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Queue length snapshot (diagnostic).
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_fifo_and_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded(4);
        tx.try_send(7).unwrap();
        drop(tx);
        // Queued messages drain before Disconnected.
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(matches!(rx.recv(), Err(RecvError)));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));

        let (tx2, rx2) = bounded(1);
        drop(rx2);
        assert!(matches!(
            tx2.try_send(1),
            Err(TrySendError::Disconnected(1))
        ));
        assert!(tx2.send(2).is_err());
    }

    #[test]
    fn blocking_send_waits_for_capacity() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).map(|_| ()));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(500)).unwrap(), 2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(8);
        let mut producers = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }
}
