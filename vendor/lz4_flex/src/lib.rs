//! Offline stand-in for the `lz4_flex` crate: a dependency-free
//! byte-oriented LZ77 codec behind the familiar size-prepended API
//! ([`compress_prepend_size`] / [`decompress_size_prepended`]). The
//! wire format is this shim's own (documented below), **not** the LZ4
//! block format — both ends of a connection use this same codec, so
//! interoperability with real LZ4 is neither needed nor claimed.
//!
//! # Format
//!
//! `[raw_len: u32 LE]` followed by sequences. Each sequence is
//!
//! ```text
//! token            1 byte: (literal_len << 4) | (match_len - 4),
//!                  either nibble 15 = "more in extension bytes"
//! lit extension    0+ bytes, 255-chained (add each byte, stop on != 255)
//! literals         literal_len bytes copied verbatim
//! offset           u16 LE back-reference distance (1..=65535); ABSENT
//!                  when the literals completed the output
//! match extension  0+ bytes, 255-chained
//! ```
//!
//! and decoding ends exactly when `raw_len` output bytes exist; any
//! leftover or missing input is a typed error. Overlapping matches
//! (offset < match length) replicate bytes just like LZ4.

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65535;
const HASH_BITS: u32 = 13;

/// Typed decompression failure; every malformed or truncated input
/// draws one of these rather than a panic or wrong bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Input ended mid-header, mid-sequence, or mid-literal-run.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadOffset,
    /// A literal run or match would write past the declared raw length.
    OutputOverflow,
    /// Input bytes remained after the declared raw length was produced.
    TrailingInput,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed input truncated"),
            DecompressError::BadOffset => write!(f, "back-reference offset out of range"),
            DecompressError::OutputOverflow => write!(f, "sequence overruns declared raw length"),
            DecompressError::TrailingInput => write!(f, "trailing bytes after declared raw length"),
        }
    }
}

impl std::error::Error for DecompressError {}

#[inline]
fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn put_varnibble(out: &mut Vec<u8>, mut value: usize) {
    // Caller has already emitted the low nibble (15); chain the rest.
    value -= 15;
    loop {
        if value >= 255 {
            out.push(255);
            value -= 255;
        } else {
            out.push(value as u8);
            return;
        }
    }
}

fn emit(out: &mut Vec<u8>, literals: &[u8], m: Option<(u16, usize)>) {
    let lit_nib = literals.len().min(15);
    let match_nib = m.map_or(0, |(_, len)| (len - MIN_MATCH).min(15));
    out.push(((lit_nib as u8) << 4) | match_nib as u8);
    if lit_nib == 15 {
        put_varnibble(out, literals.len());
    }
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&offset.to_le_bytes());
        if match_nib == 15 {
            put_varnibble(out, len - MIN_MATCH);
        }
    }
}

/// Compress `input`, prepending its raw length as a `u32` LE. Inputs
/// longer than `u32::MAX` are not representable and panic (callers in
/// this workspace cap frames at 8 MiB long before that).
pub fn compress_prepend_size(input: &[u8]) -> Vec<u8> {
    assert!(
        u32::try_from(input.len()).is_ok(),
        "input exceeds u32 length prefix"
    );
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // Single-probe hash table of last-seen positions (stored +1; 0 is
    // empty), greedy parse: good ratio on the repetitive row batches
    // this workspace compresses, single pass, no allocation per byte.
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= input.len() {
        let slot = hash4(&input[i..]);
        let cand = table[slot] as usize;
        table[slot] = (i + 1) as u32;
        if cand > 0 {
            let cand = cand - 1;
            let offset = i - cand;
            if (1..=MAX_OFFSET).contains(&offset)
                && input[cand..cand + MIN_MATCH] == input[i..i + MIN_MATCH]
            {
                let mut len = MIN_MATCH;
                while i + len < input.len() && input[cand + len] == input[i + len] {
                    len += 1;
                }
                emit(&mut out, &input[lit_start..i], Some((offset as u16, len)));
                i += len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    if lit_start < input.len() {
        emit(&mut out, &input[lit_start..], None);
    }
    out
}

fn get_varnibble(data: &[u8], pos: &mut usize, nibble: usize) -> Result<usize, DecompressError> {
    let mut value = nibble;
    if nibble == 15 {
        loop {
            let b = *data.get(*pos).ok_or(DecompressError::Truncated)?;
            *pos += 1;
            value += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(value)
}

/// Decompress a size-prepended buffer produced by
/// [`compress_prepend_size`]. The declared raw length is trusted for
/// the output allocation — callers receiving untrusted input must
/// bound it first (e.g. read the first four bytes and compare against
/// their frame cap).
pub fn decompress_size_prepended(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if data.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    let raw_len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    decompress_into(&data[4..], raw_len)
}

/// Peek the declared raw length of a size-prepended buffer without
/// decompressing, for pre-allocation caps.
pub fn declared_len(data: &[u8]) -> Result<u32, DecompressError> {
    if data.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    Ok(u32::from_le_bytes([data[0], data[1], data[2], data[3]]))
}

fn decompress_into(data: &[u8], raw_len: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while out.len() < raw_len {
        let token = *data.get(pos).ok_or(DecompressError::Truncated)?;
        pos += 1;
        let lit_len = get_varnibble(data, &mut pos, (token >> 4) as usize)?;
        if lit_len > raw_len - out.len() {
            return Err(DecompressError::OutputOverflow);
        }
        let lits = data
            .get(pos..pos + lit_len)
            .ok_or(DecompressError::Truncated)?;
        out.extend_from_slice(lits);
        pos += lit_len;
        if out.len() == raw_len {
            break;
        }
        let off_bytes = data.get(pos..pos + 2).ok_or(DecompressError::Truncated)?;
        let offset = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(DecompressError::BadOffset);
        }
        let match_len = get_varnibble(data, &mut pos, (token & 0x0F) as usize)? + MIN_MATCH;
        if match_len > raw_len - out.len() {
            return Err(DecompressError::OutputOverflow);
        }
        // Overlapping matches replicate: copy byte-wise from `start`.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if pos != data.len() {
        return Err(DecompressError::TrailingInput);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift bytes, no external RNG needed.
    fn noise(len: usize, mut seed: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 32) as u8
            })
            .collect()
    }

    fn roundtrip(input: &[u8]) {
        let packed = compress_prepend_size(input);
        assert_eq!(declared_len(&packed).unwrap() as usize, input.len());
        let back = decompress_size_prepended(&packed).unwrap();
        assert_eq!(back, input, "roundtrip mismatch at len {}", input.len());
    }

    #[test]
    fn roundtrips_across_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
        roundtrip(&[0u8; 100_000]);
        roundtrip(&b"ABCD".repeat(5000));
        roundtrip(&noise(64 * 1024, 0x5DEECE66D));
        // Mixed: repetitive row-ish text with noisy hashes, the shape
        // the query server actually compresses.
        let mut rowish = Vec::new();
        for i in 0..2000 {
            rowish.extend_from_slice(format!("nid{:06}/opt/app/bin{}", i % 7, i % 16).as_bytes());
            rowish.extend_from_slice(&noise(8, i));
        }
        roundtrip(&rowish);
    }

    #[test]
    fn long_matches_and_long_literal_runs_take_the_extension_path() {
        // > 15+255 literals then > 15+255 match bytes.
        let mut input = noise(300, 42);
        let tail = input[..280].to_vec();
        input.extend_from_slice(&tail);
        roundtrip(&input);
    }

    #[test]
    fn repetitive_input_actually_shrinks() {
        let input = b"siren reactor stream ".repeat(1000);
        let packed = compress_prepend_size(&input);
        assert!(
            packed.len() < input.len() / 4,
            "repetitive input should compress well: {} vs {}",
            packed.len(),
            input.len()
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut sample = b"The reactor polls; the poller reacts. ".repeat(40);
        sample.extend_from_slice(&noise(256, 7));
        let packed = compress_prepend_size(&sample);
        for cut in 0..packed.len() {
            match decompress_size_prepended(&packed[..cut]) {
                Err(_) => {}
                Ok(out) => panic!("truncation at {cut} decoded {} bytes", out.len()),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_refused() {
        let mut packed = compress_prepend_size(b"hello hello hello hello");
        packed.push(0x00);
        assert_eq!(
            decompress_size_prepended(&packed),
            Err(DecompressError::TrailingInput)
        );
    }

    #[test]
    fn hostile_offsets_and_lengths_are_refused() {
        // Declared 8 bytes, one sequence: 0 literals then a match with
        // offset 1 before any output exists.
        let bad = [8u32.to_le_bytes().as_slice(), &[0x00, 1, 0]].concat();
        assert_eq!(
            decompress_size_prepended(&bad),
            Err(DecompressError::BadOffset)
        );
        // Literal run longer than the declared raw length.
        let bad = [
            2u32.to_le_bytes().as_slice(),
            &[0x50, b'a', b'b', b'c', b'd', b'e'],
        ]
        .concat();
        assert_eq!(
            decompress_size_prepended(&bad),
            Err(DecompressError::OutputOverflow)
        );
    }
}
