//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. Only the surface this workspace uses is provided:
//! [`Mutex::lock`], [`RwLock::read`], and [`RwLock::write`], all
//! poison-free (a panicked holder does not poison the lock for
//! subsequent users, matching parking_lot semantics).

use std::sync::PoisonError;

/// Mutual-exclusion lock with parking_lot's panic-transparent `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-transparent guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
