//! Offline stand-in for the `polling` crate: a level-triggered
//! readiness poller with a cross-thread wakeup, built directly on the
//! epoll + eventfd symbols of the libc that `std` already links — no
//! external crates. Only the surface this workspace uses is provided:
//! [`Poller::add`], [`Poller::modify`], [`Poller::delete`],
//! [`Poller::wait`], and [`Poller::notify`].
//!
//! On non-Linux targets a degraded portable backend stands in: every
//! registered descriptor is reported ready for its registered interest
//! on a short tick. That is semantically sound for level-triggered
//! callers doing non-blocking I/O (they simply observe `WouldBlock`
//! and re-wait), just less efficient; the Linux backend is the real
//! reactor used in CI and production containers.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness event: the registered `key` plus which directions are
/// (or may be) ready. Error/hangup conditions are folded into both
/// directions so the owner attempts I/O and observes the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

/// Readiness interest for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// Reserved key reporting the internal wakeup eventfd; never surfaced
/// in [`Poller::wait`] results and rejected by [`Poller::add`].
pub const NOTIFY_KEY: usize = usize::MAX;

pub struct Poller {
    backend: backend::Backend,
}

impl Poller {
    /// Create a poller with its wakeup channel armed.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: backend::Backend::new()?,
        })
    }

    /// Register `fd` under `key`. The descriptor must already be in
    /// non-blocking mode; readiness is level-triggered.
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key is reserved for the poller's wakeup channel",
            ));
        }
        self.backend.add(fd, key, interest)
    }

    /// Change the interest set (and/or key) of a registered descriptor.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key is reserved for the poller's wakeup channel",
            ));
        }
        self.backend.modify(fd, key, interest)
    }

    /// Deregister a descriptor.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.backend.delete(fd)
    }

    /// Block until at least one registered descriptor is ready, the
    /// timeout elapses (`None` = forever), or another thread calls
    /// [`Poller::notify`]. Appends events to `events` and returns how
    /// many were added; a wakeup with no ready descriptors returns 0.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.backend.wait(events, timeout)
    }

    /// Wake a concurrent [`Poller::wait`] from any thread. Coalesces:
    /// many notifies before the next wait produce one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        self.backend.notify()
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

#[cfg(target_os = "linux")]
mod backend {
    use super::{Event, Interest, NOTIFY_KEY};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // Bindings to the libc `std` already links; no external crate.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel `struct epoll_event`; packed on x86_64 per the ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_for(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    pub struct Backend {
        epfd: RawFd,
        wake_fd: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wake_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let backend = Backend { epfd, wake_fd };
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY_KEY as u64,
            };
            cvt(unsafe { epoll_ctl(backend.epfd, EPOLL_CTL_ADD, backend.wake_fd, &mut ev) })?;
            Ok(backend)
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_for(interest),
                data: key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_for(interest),
                data: key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms = match timeout {
                None => -1,
                // Round up so a 1ns timeout does not spin at 0ms.
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        // Retry with a zero timeout so interrupted waits
                        // cannot extend past the caller's deadline.
                        if timeout_ms >= 0 {
                            break 0;
                        }
                    }
                    Err(e) => return Err(e),
                }
            };
            let mut added = 0;
            for ev in &buf[..n] {
                let key = { ev.data } as usize;
                let bits = { ev.events };
                if key == NOTIFY_KEY {
                    // Drain the eventfd counter; coalesced wakeup.
                    let mut scratch = [0u8; 8];
                    unsafe { read(self.wake_fd, scratch.as_mut_ptr(), scratch.len()) };
                    continue;
                }
                let fail = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    key,
                    readable: fail || bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: fail || bits & EPOLLOUT != 0,
                });
                added += 1;
            }
            Ok(added)
        }

        pub fn notify(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            let rc = unsafe { write(self.wake_fd, one.as_ptr(), one.len()) };
            // EAGAIN means the counter is already saturated: the next
            // wait is guaranteed to wake, which is all notify promises.
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod backend {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// Degraded portable backend: reports every registered descriptor
    /// as ready for its registered interest on a short tick. Callers
    /// doing non-blocking I/O treat spurious readiness as `WouldBlock`.
    const TICK: Duration = Duration::from_millis(5);

    pub struct Backend {
        registered: Mutex<HashMap<RawFd, (usize, Interest)>>,
        notified: Mutex<bool>,
        wake: Condvar,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                registered: Mutex::new(HashMap::new()),
                notified: Mutex::new(false),
                wake: Condvar::new(),
            })
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, (key, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, (key, interest));
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let nap = timeout.unwrap_or(TICK).min(TICK);
            let mut notified = self.notified.lock().unwrap();
            if !*notified {
                let (guard, _) = self.wake.wait_timeout(notified, nap).unwrap();
                notified = guard;
            }
            *notified = false;
            drop(notified);
            let mut added = 0;
            for (_, &(key, interest)) in self.registered.lock().unwrap().iter() {
                events.push(Event {
                    key,
                    readable: interest.readable,
                    writable: interest.writable,
                });
                added += 1;
            }
            Ok(added)
        }

        pub fn notify(&self) -> io::Result<()> {
            *self.notified.lock().unwrap() = true;
            self.wake.notify_all();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty (the
        // portable fallback may report spuriously, so only the Linux
        // backend asserts emptiness).
        if cfg!(target_os = "linux") {
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "no data, no events");
        }

        a.write_all(b"ping").unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.key == 7 && e.readable));

        let mut buf = [0u8; 8];
        let got = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");
        poller.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn writable_when_buffer_has_room_and_interest_is_modifiable() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(a.as_raw_fd(), 3, Interest::READ).unwrap();
        // Reads only: no writable events even though the socket could
        // accept bytes.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!events.iter().any(|e| e.key == 3 && e.writable));

        poller.modify(a.as_raw_fd(), 3, Interest::BOTH).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.writable));
    }

    #[test]
    fn notify_wakes_a_blocked_wait_immediately() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        // Forever-wait, broken only by the notify.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "notify carries no descriptor events");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "notify must cut the wait short"
        );
        handle.join().unwrap();
    }

    #[test]
    fn notify_before_wait_is_not_lost_and_coalesces() {
        let poller = Poller::new().unwrap();
        poller.notify().unwrap();
        poller.notify().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(2));
        // Both notifies were drained by the single wakeup: the next
        // wait times out instead of waking instantly.
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(40)))
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(35));
    }

    #[test]
    fn reserved_key_is_rejected() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        assert!(poller
            .add(a.as_raw_fd(), NOTIFY_KEY, Interest::READ)
            .is_err());
    }
}
