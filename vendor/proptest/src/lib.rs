//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, [`prelude::any`],
//! [`prelude::Just`], [`prop_oneof!`], [`collection::vec`], integer and
//! float range strategies, and string strategies from a small
//! regex-pattern subset (`[class]{m,n}` sequences plus `\PC`).
//!
//! Differences from real proptest, deliberately accepted: inputs are
//! generated from a per-test deterministic seed (reproducible across
//! runs), there is no shrinking, and `prop_assert!` panics instead of
//! returning `Err` — a failing case fails the test immediately.

pub mod strategy;

pub mod test_runner {
    /// Deterministic per-test RNG (xorshift64*), seeded from the test name
    /// so every `cargo test` run replays the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly.
        pub fn new(seed: u64) -> Self {
            Self { state: seed | 1 }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift; bias is irrelevant for test-input generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// RNG for a named test, FNV-seeded from the name.
    pub fn rng_for(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Per-test configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property body; a failure fails the test with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// The property-test entry macro: each `fn name(arg in strategy, ..)`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)*) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
