//! Strategies: how test inputs are generated.

use crate::test_runner::TestRng;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One option of a [`Union`]: a boxed generator closure.
pub type UnionOption<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among boxed generators (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<UnionOption<V>>,
}

impl<V> Union<V> {
    /// Build from the individual option generators.
    pub fn new(options: Vec<UnionOption<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        (self.options[i])(rng)
    }
}

// ------------------------------------------------------------ any --

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw a value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-range strategy for `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

// --------------------------------------------------------- ranges --

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --------------------------------------------------------- tuples --

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// -------------------------------------------------------- strings --

/// One atom of the supported pattern subset.
#[derive(Debug, Clone)]
enum Atom {
    /// `[...]` — explicit set of candidate chars.
    Class(Vec<char>),
    /// `\PC` — any non-control char (ASCII printable plus a few
    /// multibyte samples to exercise UTF-8 paths).
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Chars a `\PC` atom can produce. Mostly ASCII printable; the tail
/// entries force multibyte UTF-8 through codecs.
const PRINTABLE_EXTRA: [char; 6] = ['é', 'ü', 'ß', 'λ', '中', '🦀'];

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated [class] in pattern");
        match c {
            ']' => {
                if let Some(p) = pending {
                    out.push(p);
                }
                return out;
            }
            '-' => {
                // Range when we have a pending start and a non-']' next.
                match (pending.take(), chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        chars.next();
                        for v in lo as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                out.push(ch);
                            }
                        }
                    }
                    (p, _) => {
                        if let Some(p) = p {
                            out.push(p);
                        }
                        out.push('-');
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.replace(chars.next().expect("escape")) {
                    out.push(p);
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    out.push(p);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("bad {m,n} min"),
            n.trim().parse().expect("bad {m,n} max"),
        ),
        None => {
            let k = spec.trim().parse().expect("bad {n} count");
            (k, k)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => match chars.next() {
                Some('P') => {
                    let class = chars.next().expect("\\P needs a class letter");
                    assert_eq!(class, 'C', "only \\PC is supported by the shim");
                    Atom::Printable
                }
                Some(esc) => Atom::Class(vec![esc]),
                None => panic!("dangling escape in pattern"),
            },
            lit => Atom::Class(vec![lit]),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty char class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Printable => {
                        // ~6% multibyte, rest ASCII printable.
                        if rng.below(16) == 0 {
                            out.push(PRINTABLE_EXTRA[rng.below(6) as usize]);
                        } else {
                            out.push((b' ' + rng.below(95) as u8) as char);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn pattern_shapes() {
        let mut rng = rng_for("pattern_shapes");
        for _ in 0..200 {
            let hex = "[0-9a-f]{0,32}".generate(&mut rng);
            assert!(hex.len() <= 32);
            assert!(hex
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));

            let host = "[a-zA-Z0-9._-]{1,24}".generate(&mut rng);
            assert!((1..=24).contains(&host.len()));
            assert!(host
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));

            let ident = "[a-zA-Z_][a-zA-Z0-9_]{0,30}".generate(&mut rng);
            assert!(!ident.is_empty());
            let first = ident.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');

            let printable = "[ -~]{1,60}".generate(&mut rng);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));

            let free = "\\PC{0,300}".generate(&mut rng);
            assert!(free.chars().count() <= 300);
            assert!(free.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn ranges_and_tuples_and_vec() {
        let mut rng = rng_for("ranges_and_tuples_and_vec");
        for _ in 0..100 {
            let v = (0usize..14).generate(&mut rng);
            assert!(v < 14);
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
            let (a, b) = (any::<u32>(), "[a-z]{1,3}").generate(&mut rng);
            let _ = a;
            assert!((1..=3).contains(&b.len()));
            let xs = crate::collection::vec(any::<u8>(), 0..10).generate(&mut rng);
            assert!(xs.len() < 10);
        }
    }

    #[test]
    fn union_and_map_and_just() {
        let mut rng = rng_for("union_and_map_and_just");
        let u = crate::prop_oneof![Just(1u8), Just(2u8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
        let m = (0usize..3).prop_map(|i| ["a", "b", "c"][i]);
        for _ in 0..10 {
            assert!(["a", "b", "c"].contains(&m.generate(&mut rng)));
        }
    }

    crate::proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(8))]

        /// The macro itself: generated args are in range, bodies run.
        #[test]
        fn macro_smoke(x in 0u32..10, s in "[a-f]{2,4}",) {
            crate::prop_assert!(x < 10);
            crate::prop_assert_eq!(s.len() >= 2, true);
        }
    }
}
