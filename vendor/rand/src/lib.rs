//! Offline stand-in for the `rand` crate. The workload simulator only
//! needs a *deterministic, seedable, well-dispersed* generator — it never
//! requires compatibility with the real `rand`'s stream. The core is
//! xoshiro256++ seeded through SplitMix64 (the reference seeding scheme),
//! exposed through the small trait surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`], and
//! [`RngExt::random_range`].

pub mod rngs {
    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state; the
        // all-zero state is unreachable because SplitMix64 is a bijection
        // and its outputs for distinct counters never collapse to zero
        // simultaneously.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> Self {
        // 53 uniform bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`RngExt::random_range`] bounds.
pub trait RangeInt: Copy + PartialOrd {
    /// Map `self` into u64 for width arithmetic.
    fn to_u64(self) -> u64;
    /// Map back from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

/// The user-facing sampling interface (the `Rng` extension trait of
/// modern `rand`, under its post-0.9 name).
pub trait RngExt {
    /// Uniform draw of a [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T;

    /// Uniform draw from a half-open integer range. Panics when the range
    /// is empty, matching `rand`.
    fn random_range<T: RangeInt>(&mut self, range: std::ops::Range<T>) -> T;
}

impl RngExt for StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T: RangeInt>(&mut self, range: std::ops::Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "random_range called with empty range");
        let width = hi - lo;
        // Debiased multiply-shift rejection sampling (Lemire).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (width as u128);
            let low = m as u64;
            if low >= width.wrapping_neg() % width.max(1) || width.is_power_of_two() {
                return T::from_u64(lo + (m >> 64) as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_dispersed() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.random_range(0..8u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(100..512u64);
            assert!((100..512).contains(&v));
        }
    }
}
